//! File sharing over the overlay — the application the paper's
//! introduction motivates (Napster/Gnutella/Freenet, done right): objects
//! are published into a distributed directory and located from anywhere
//! via surrogate routing, with deterministic location (P1) guaranteed by
//! the consistency the join protocol maintains.
//!
//! Run with: `cargo run --release --example object_sharing`

use hyperring::core::SimNetworkBuilder;
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::object::{roots_from_everywhere, ObjectStore};
use hyperring::sim::UniformDelay;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let space = IdSpace::new(16, 8)?;
    let ids = distinct_ids(space, 48, 21);

    // Build a live network: 32 members + 16 concurrent joiners.
    let mut b = SimNetworkBuilder::new(space);
    for id in &ids[..32] {
        b.add_member(*id);
    }
    for id in &ids[32..] {
        b.add_joiner(*id, ids[0], 0);
    }
    let mut net = b.build(UniformDelay::new(1_000, 60_000), 4);
    net.run();
    assert!(net.all_in_system());
    assert!(net.check_consistency().is_consistent());

    // Stand a directory service directly on the network's tables — the
    // store borrows them, nothing is cloned.
    let mut store = ObjectStore::over(space, net.tables_iter());
    let files = [
        ("thesis-draft.pdf", 3usize),
        ("holiday-photos.tar", 7),
        ("skylark.mp3", 11),
        ("skylark.mp3", 19), // second replica on another node
        ("backup.img", 40),
    ];
    for (name, holder) in files {
        let r = store.publish(ids[holder], name);
        println!(
            "{:<20} published by {}  -> root {}  ({} hops)",
            name, ids[holder], r.root, r.hops
        );
    }

    // Anyone can find everything (P1: deterministic location).
    for name in ["thesis-draft.pdf", "skylark.mp3", "backup.img"] {
        let hit = store.lookup(ids[47], name).expect("object exists");
        let homes: Vec<String> = hit.homes.iter().map(|h| h.to_string()).collect();
        println!(
            "lookup {:<20} from {}: copies at [{}] in {} hops",
            name,
            ids[47],
            homes.join(", "),
            hit.hops
        );
    }
    assert_eq!(
        store.lookup(ids[5], "skylark.mp3").unwrap().homes.len(),
        2,
        "both replicas listed"
    );

    // Every node agrees on every object's root (this is what consistent
    // tables buy the application).
    for name in ["thesis-draft.pdf", "skylark.mp3", "backup.img"] {
        let oid = store.object_id(name);
        let roots = roots_from_everywhere(&store, &oid);
        assert_eq!(roots.len(), 1, "{name} has multiple roots: {roots:?}");
    }
    println!(
        "\nall {} nodes agree on every object's root node",
        ids.len()
    );
    Ok(())
}
