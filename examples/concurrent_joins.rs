//! Large concurrent-join scenario on a transit-stub topology: 512 members,
//! 256 simultaneous joiners, full consistency verification, per-message
//! statistics — a miniature of the paper's Figure 15(b) setup.
//!
//! Run with: `cargo run --release --example concurrent_joins`

use hyperring::analysis::{theorem3_bound, upper_bound_join_noti};
use hyperring::core::{MessageKind, SimNetworkBuilder};
use hyperring::harness::{distinct_ids, TopologyDelay};
use hyperring::id::IdSpace;
use hyperring::sim::stats::Distribution;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let space = IdSpace::new(16, 8)?;
    let (n, m) = (512usize, 256usize);
    let ids = distinct_ids(space, n + m, 99);

    let mut builder = SimNetworkBuilder::new(space);
    for id in &ids[..n] {
        builder.add_member(*id);
    }
    for (i, id) in ids[n..].iter().enumerate() {
        builder.add_joiner(*id, ids[i % n], 0);
    }

    // 72-router transit-stub topology, one host per overlay node.
    let delay = TopologyDelay::test_scale(n + m, 5);
    println!(
        "topology: {} routers, {} hosts",
        delay.topology().router_count(),
        delay.host_count()
    );

    let mut net = builder.build(delay, 1);
    let report = net.run();
    println!(
        "delivered {} messages; quiescent at t = {:.3} s (virtual)",
        report.delivered,
        report.finished_at as f64 / 1e6
    );

    assert!(net.all_in_system());
    let consistency = net.check_consistency();
    assert!(consistency.is_consistent());
    println!("{consistency}");

    // Message-count distribution across joiners, paper-style.
    let dist = Distribution::from_samples(net.joiners().map(|e| e.stats().join_noti()));
    println!(
        "JoinNotiMsg per joiner: mean {:.2}, p50 {}, p95 {}, max {}",
        dist.mean(),
        dist.quantile(0.5),
        dist.quantile(0.95),
        dist.max()
    );
    let bound = upper_bound_join_noti(16, 8, n as u64, m as u64);
    println!("Theorem 5 upper bound on the mean: {bound:.2}");

    let worst = net
        .joiners()
        .map(|e| e.stats().cprst_plus_joinwait())
        .max()
        .unwrap();
    println!(
        "max CpRstMsg+JoinWaitMsg per joiner: {worst} (Theorem 3 bound: {})",
        theorem3_bound(8)
    );

    // Full per-kind traffic breakdown.
    let mut totals = hyperring::core::MessageStats::new();
    for e in net.engines() {
        totals.merge(e.stats());
    }
    println!("\ntraffic by message type (all nodes):");
    print!("{totals}");
    let spe = totals.sent(MessageKind::SpeNoti);
    println!("\nSpeNotiMsg sent: {spe} (footnote 8: rarely sent)");
    Ok(())
}
