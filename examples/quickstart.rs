//! Quickstart: build a consistent network, let nodes join concurrently,
//! check the two theorems, and route some messages.
//!
//! Run with: `cargo run --example quickstart`

use hyperring::core::{route, NeighborTable, SimNetworkBuilder};
use hyperring::id::{IdSpace, NodeId};
use hyperring::sim::UniformDelay;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 32-bit identifiers: 8 hex digits, as in the paper's evaluation.
    let space = IdSpace::new(16, 8)?;

    // Draw 96 distinct identifiers: 64 initial members + 32 joiners.
    let mut rng = StdRng::seed_from_u64(42);
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < 96 {
        ids.insert(space.random_id(&mut rng));
    }
    let ids: Vec<NodeId> = ids.into_iter().collect();
    let (members, joiners) = ids.split_at(64);

    // Build the network: members get consistent tables, joiners all start
    // at t = 0 (maximally concurrent), each through some member.
    let mut builder = SimNetworkBuilder::new(space);
    for id in members {
        builder.add_member(*id);
    }
    for (i, id) in joiners.iter().enumerate() {
        builder.add_joiner(*id, members[i % members.len()], 0);
    }
    let mut net = builder.build(UniformDelay::new(1_000, 80_000), 7);
    let report = net.run();

    println!(
        "simulated {} message deliveries in {:.3} s of virtual time",
        report.delivered,
        report.finished_at as f64 / 1e6
    );

    // Theorem 2: every joiner became an S-node.
    assert!(net.all_in_system());
    println!(
        "all {} joiners reached status in_system (Theorem 2)",
        joiners.len()
    );

    // Theorem 1: the network is consistent.
    let consistency = net.check_consistency();
    assert!(consistency.is_consistent());
    println!("consistency check: {consistency}");

    // Per-joiner cost (the paper's §5.2 metric).
    let total_noti: u64 = net.joiners().map(|e| e.stats().join_noti()).sum();
    println!(
        "JoinNotiMsg per joiner: {:.2} on average",
        total_noti as f64 / joiners.len() as f64
    );

    // Route between arbitrary nodes over the final tables.
    let tables: HashMap<NodeId, NeighborTable> =
        net.tables().into_iter().map(|t| (t.owner(), t)).collect();
    let (src, dst) = (members[0], joiners[joiners.len() - 1]);
    let outcome = route(src, dst, |id| tables.get(id));
    println!("route {src} -> {dst}: {} hops (d = 8 max)", outcome.hops());
    assert!(outcome.is_delivered());
    Ok(())
}
