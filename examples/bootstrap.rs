//! §6.1 network initialization: a network is born as a single node; every
//! other node joins by running the join protocol — here in the most
//! stressful way (everyone at t = 0, all through the seed node).
//!
//! Run with: `cargo run --release --example bootstrap`

use hyperring::core::{
    bootstrap_sequential, check_consistency, ProtocolOptions, SimNetworkBuilder,
};
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::sim::UniformDelay;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let space = IdSpace::new(16, 8)?;
    let n = 128;
    let ids = distinct_ids(space, n, 7);

    // Sequential initialization (each join completes before the next).
    let tables = bootstrap_sequential(space, ProtocolOptions::new(), &ids);
    let report = check_consistency(space, &tables);
    assert!(report.is_consistent());
    println!("sequential bootstrap of {n} nodes: {report}");

    // Concurrent initialization: the seed node's JoinWait queue (Q_j)
    // serializes the first wave safely.
    let mut b = SimNetworkBuilder::new(space);
    b.add_member(ids[0]);
    for id in &ids[1..] {
        b.add_joiner(*id, ids[0], 0);
    }
    let mut net = b.build(UniformDelay::new(500, 50_000), 3);
    let run = net.run();
    assert!(net.all_in_system());
    let report = net.check_consistency();
    assert!(report.is_consistent());
    println!(
        "concurrent bootstrap of {n} nodes: {report} ({} messages, {:.3} s virtual)",
        run.delivered,
        run.finished_at as f64 / 1e6
    );
    Ok(())
}
