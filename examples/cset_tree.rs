//! Reproduces the paper's Figure 2: the C-set tree template for
//! W = {10261, 47051, 00261} joining V = {72430, 10353, 62332, 13141,
//! 31701} (b = 8, d = 5), and one realization produced by actually running
//! the join protocol.
//!
//! Run with: `cargo run --example cset_tree`

use hyperring::core::{NeighborTable, SimNetworkBuilder};
use hyperring::cset::{check_conditions, notify_set, CsetTemplate, RealizedCset};
use hyperring::id::{IdSpace, NodeId};
use hyperring::sim::UniformDelay;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let space = IdSpace::new(8, 5)?;
    let v: Vec<NodeId> = ["72430", "10353", "62332", "13141", "31701"]
        .iter()
        .map(|s| space.parse_id(s))
        .collect::<Result<_, _>>()?;
    let w: Vec<NodeId> = ["10261", "47051", "00261"]
        .iter()
        .map(|s| space.parse_id(s))
        .collect::<Result<_, _>>()?;

    // Notification sets (Definition 3.4): all three joiners notify V_1.
    for x in &w {
        let (suffix, set) = notify_set(&v, x);
        let names: Vec<String> = set.iter().map(|n| n.to_string()).collect();
        println!("V^Notify_{x} = V_{suffix} = {{{}}}", names.join(", "));
    }

    // The tree template C(V, W) — Figure 2(b).
    let root = space.parse_suffix("1")?;
    let template = CsetTemplate::build(space, root, &w);
    println!("\nC-set tree template C(V, W)  [Figure 2(b)]:");
    println!("{}", template.render());

    // Run the joins and read off a realization — Figure 2(c).
    let mut b = SimNetworkBuilder::new(space);
    for id in &v {
        b.add_member(*id);
    }
    for id in &w {
        b.add_joiner(*id, v[0], 0);
    }
    let mut net = b.build(UniformDelay::new(1_000, 60_000), 2003);
    net.run();
    assert!(net.all_in_system());
    assert!(net.check_consistency().is_consistent());

    let tables: HashMap<NodeId, NeighborTable> =
        net.tables().into_iter().map(|t| (t.owner(), t)).collect();
    let realized = RealizedCset::compute(&template, &v, &w, |id| tables.get(id));
    println!("realized C-set tree cset(V, W)  [one possible Figure 2(c)]:");
    println!(
        "  root V_1 = {{{}}}",
        realized
            .root_members()
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (suffix, members) in realized.iter() {
        let names: Vec<String> = members.iter().map(|n| n.to_string()).collect();
        println!("  C_{suffix} = {{{}}}", names.join(", "));
    }

    // The §3.3 conditions (1)–(3) hold at the end of the joins.
    let violations = check_conditions(&template, &realized, &w, |id| tables.get(id));
    assert!(violations.is_empty(), "{violations:?}");
    println!("\nconditions (1)-(3) of §3.3: satisfied");
    Ok(())
}
