//! The same join protocol on real OS threads: no simulator, no seeded
//! schedule — message races are whatever the machine produces, and
//! Theorem 1 must (and does) still hold.
//!
//! Run with: `cargo run --release --example threaded_network`

use hyperring::core::{build_consistent_tables, check_consistency, ProtocolOptions};
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::net::ThreadedNetwork;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let space = IdSpace::new(16, 6)?;
    let (n, m) = (48usize, 24usize);
    let ids = distinct_ids(space, n + m, 1234);

    let members = build_consistent_tables(space, &ids[..n]);
    let joiners: Vec<_> = ids[n..]
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, ids[i % n]))
        .collect();

    println!(
        "spawning {} node threads ({n} members + {m} joiners) …",
        n + m
    );
    let started = std::time::Instant::now();
    let net = ThreadedNetwork::new(space, ProtocolOptions::new(), members);
    let tables = net.run_joins(&joiners)?;
    println!(
        "all joins finished in {:.1} ms of wall-clock time",
        started.elapsed().as_secs_f64() * 1e3
    );

    let report = check_consistency(space, &tables);
    assert!(report.is_consistent());
    println!("{report}");
    println!("Theorem 1 held under real thread interleaving.");
    Ok(())
}
