//! Graceful departure (extension): a member leaves, its reverse neighbors
//! receive suffix-valid replacements, and the survivors' tables are
//! consistent again — then the network keeps absorbing joins.
//!
//! Run with: `cargo run --release --example graceful_leave`

use hyperring::core::{SimNetworkBuilder, Status};
use hyperring::harness::distinct_ids;
use hyperring::id::IdSpace;
use hyperring::sim::UniformDelay;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let space = IdSpace::new(16, 8)?;
    let ids = distinct_ids(space, 64, 33);

    let mut b = SimNetworkBuilder::new(space);
    for id in &ids[..56] {
        b.add_member(*id);
    }
    for id in &ids[56..60] {
        b.add_joiner(*id, ids[0], 0);
    }
    let mut net = b.build(UniformDelay::new(1_000, 50_000), 9);
    net.run();
    assert!(net.all_in_system());
    println!(
        "network up: {} nodes, {}",
        net.tables().len(),
        net.check_consistency()
    );

    // Three members depart gracefully, one after the other.
    for victim in [&ids[3], &ids[17], &ids[42]] {
        let before = net.engine(victim).table().reverse_neighbors().len();
        net.depart(victim);
        assert_eq!(net.engine(victim).status(), Status::Departed);
        let c = net.check_consistency();
        assert!(c.is_consistent());
        println!("{victim} left (had {before} reverse neighbors) -> {c}");
    }

    // The shrunken network still accepts concurrent joins.
    let mut b = SimNetworkBuilder::new(space);
    b.with_member_tables(net.tables());
    for id in &ids[60..] {
        b.add_joiner(*id, ids[0], 0);
    }
    let mut net2 = b.build(UniformDelay::new(1_000, 50_000), 10);
    net2.run();
    assert!(net2.all_in_system());
    let c = net2.check_consistency();
    assert!(c.is_consistent());
    println!("after 4 more concurrent joins: {c}");
    Ok(())
}
