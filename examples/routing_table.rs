//! Reproduces the paper's Figure 1 (the example neighbor table of node
//! 21233, b = 4, d = 5) and the §2.2 routing walk-through
//! (21233 → 03231 via 33121 and 13331).
//!
//! Run with: `cargo run --example routing_table`

use hyperring::core::{build_consistent_tables, route, NeighborTable, RouteOutcome};
use hyperring::id::{IdSpace, NodeId};
use std::collections::HashMap;
use std::error::Error;

/// The node population implied by Figure 1's entries.
const FIGURE1_IDS: [&str; 14] = [
    "21233", "01100", "33121", "12232", "22303", "13113", "00123", "31033", "03133", "10233",
    "03233", "01233", "11233", "31233",
];

fn main() -> Result<(), Box<dyn Error>> {
    let space = IdSpace::new(4, 5)?;

    // --- Figure 1: the neighbor table of 21233 -------------------------
    let ids: Vec<NodeId> = FIGURE1_IDS
        .iter()
        .map(|s| space.parse_id(s))
        .collect::<Result<_, _>>()?;
    let tables = build_consistent_tables(space, &ids);
    let t21233 = tables
        .iter()
        .find(|t| t.owner().to_string() == "21233")
        .expect("node present");
    println!("{}", t21233.render());

    // Spot-check the cells the paper prints.
    for (level, digit, expected) in [
        (0usize, 0u8, "01100"),
        (0, 1, "33121"),
        (0, 2, "12232"),
        (0, 3, "21233"), // self
        (1, 0, "22303"),
        (1, 1, "13113"),
        (1, 2, "00123"),
        (2, 0, "31033"),
        (2, 1, "03133"),
        (3, 0, "10233"),
        (3, 3, "03233"),
        (4, 0, "01233"),
        (4, 1, "11233"),
        (4, 3, "31233"),
    ] {
        let got = t21233.get(level, digit).expect("filled cell").node;
        assert_eq!(got.to_string(), expected, "entry ({level}, {digit})");
    }
    // The (2, 3)-entry is empty: no node has suffix 333.
    assert!(t21233.get(2, 3).is_none());
    println!("Figure 1 cells verified.\n");

    // --- §2.2 routing example: 21233 -> 03231 --------------------------
    // Add the two nodes of the walk-through (a richer population, so the
    // tables differ from Figure 1, but the first hops match the text).
    let mut ids2 = ids.clone();
    ids2.push(space.parse_id("03231")?);
    ids2.push(space.parse_id("13331")?);
    let mut tables2: HashMap<NodeId, NeighborTable> = build_consistent_tables(space, &ids2)
        .into_iter()
        .map(|t| (t.owner(), t))
        .collect();
    // Consistency only requires *a* node with the desired suffix in each
    // entry; pin the choices the paper's prose makes so the walk-through
    // reads identically (21233 -> 33121 -> 13331 -> 03231).
    use hyperring::core::{Entry, NodeState};
    let pin = |tables: &mut HashMap<NodeId, NeighborTable>, at: &str, l: usize, d: u8, to: &str| {
        let at = space.parse_id(at).unwrap();
        let to = space.parse_id(to).unwrap();
        tables.get_mut(&at).unwrap().set(
            l,
            d,
            Entry {
                node: to,
                state: NodeState::S,
            },
        );
    };
    pin(&mut tables2, "21233", 0, 1, "33121");
    pin(&mut tables2, "33121", 1, 3, "13331");
    pin(&mut tables2, "13331", 2, 2, "03231");
    let src = space.parse_id("21233")?;
    let dst = space.parse_id("03231")?;
    match route(src, dst, |id| tables2.get(id)) {
        RouteOutcome::Delivered { path } => {
            let pretty: Vec<String> = path.iter().map(|n| n.to_string()).collect();
            println!("route 21233 -> 03231: {}", pretty.join(" -> "));
            // The suffix match grows by at least one digit per hop (§2.2).
            for pair in path.windows(2) {
                assert!(pair[1].csuf_len(&dst) > pair[0].csuf_len(&dst) || pair[1] == dst);
            }
        }
        dropped => panic!("route failed: {dropped:?}"),
    }
    Ok(())
}
