//! `hyperring-cli` — run the paper's machinery from the command line.
//!
//! ```console
//! $ hyperring-cli analyze  --b 16 --d 8 --n 3096 --m 1000
//! $ hyperring-cli simulate --b 16 --d 8 --n 512 --m 128 --seed 7
//! $ hyperring-cli bootstrap --n 128
//! $ hyperring-cli route    --n 256 --pairs 5 --seed 3
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use hyperring::analysis::{
    expected_filled_entries, expected_join_noti, expected_noti_level, theorem3_bound,
    upper_bound_join_noti,
};
use hyperring::core::{route, NeighborTable, RouteOutcome, SimNetworkBuilder};
use hyperring::harness::distinct_ids;
use hyperring::id::{IdSpace, NodeId};
use hyperring::sim::UniformDelay;

/// Minimal `--key value` flag parser with typed lookups and defaults.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {a:?}"))?;
            let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), val.clone());
        }
        Ok(Flags(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

fn usage() -> &'static str {
    "hyperring-cli — hypercube routing with consistency-preserving joins\n\
     \n\
     USAGE:\n\
       hyperring-cli <command> [--flag value]...\n\
     \n\
     COMMANDS:\n\
       analyze    closed-form cost model (Theorems 3-5, occupancy)\n\
                  flags: --b 16 --d 8 --n 3096 --m 1000\n\
       simulate   run n members + m concurrent joins, report stats\n\
                  flags: --b 16 --d 8 --n 512 --m 128 --seed 7\n\
       bootstrap  initialize a network from one node (§6.1)\n\
                  flags: --b 16 --d 8 --n 128 --seed 7\n\
       route      sample routes over a consistent network\n\
                  flags: --b 16 --d 8 --n 256 --pairs 5 --seed 7\n\
       help       print this text\n"
}

fn cmd_analyze(f: &Flags) -> Result<(), String> {
    let b: u32 = f.get("b", 16)?;
    let d: u32 = f.get("d", 8)?;
    let n: u64 = f.get("n", 3096)?;
    let m: u64 = f.get("m", 1000)?;
    println!(
        "identifier space: base {b}, {d} digits ({} ids)",
        (b as f64).powi(d as i32)
    );
    println!("network size n = {n}, concurrent joiners m = {m}");
    println!();
    println!(
        "Theorem 3:  CpRstMsg + JoinWaitMsg per join <= {}",
        theorem3_bound(d as usize)
    );
    println!(
        "Theorem 4:  E[JoinNotiMsg], single join  = {:.3}",
        expected_join_noti(b, d, n)
    );
    println!(
        "Theorem 5:  E[JoinNotiMsg] upper bound   = {:.3}",
        upper_bound_join_noti(b, d, n, m)
    );
    println!(
        "expected notification level              = {:.3}",
        expected_noti_level(b, d, n)
    );
    println!(
        "expected filled table entries            = {:.1} of {}",
        expected_filled_entries(b, d, n),
        b * d
    );
    Ok(())
}

fn build_network(
    space: IdSpace,
    n: usize,
    m: usize,
    seed: u64,
) -> (Vec<NodeId>, hyperring::core::SimNetwork<UniformDelay>) {
    let ids = distinct_ids(space, n + m, seed);
    let mut builder = SimNetworkBuilder::new(space);
    for id in &ids[..n] {
        builder.add_member(*id);
    }
    for (i, id) in ids[n..].iter().enumerate() {
        builder.add_joiner(*id, ids[i % n], 0);
    }
    let net = builder.build(UniformDelay::new(1_000, 80_000), seed);
    (ids, net)
}

fn cmd_simulate(f: &Flags) -> Result<(), String> {
    let b: u16 = f.get("b", 16)?;
    let d: usize = f.get("d", 8)?;
    let n: usize = f.get("n", 512)?;
    let m: usize = f.get("m", 128)?;
    let seed: u64 = f.get("seed", 7)?;
    let space = IdSpace::new(b, d).map_err(|e| e.to_string())?;
    eprintln!("simulating {n} members + {m} concurrent joins (b={b}, d={d}, seed={seed}) …");
    let (_, mut net) = build_network(space, n, m, seed);
    let report = net.run();
    println!("messages delivered : {}", report.delivered);
    println!(
        "virtual time       : {:.3} s",
        report.finished_at as f64 / 1e6
    );
    println!("all in system      : {}", net.all_in_system());
    let c = net.check_consistency();
    println!("consistency        : {c}");
    let total_noti: u64 = net.joiners().map(|e| e.stats().join_noti()).sum();
    println!(
        "JoinNotiMsg / join : {:.3} (Theorem 5 bound {:.3})",
        total_noti as f64 / m as f64,
        upper_bound_join_noti(b as u32, d as u32, n as u64, m as u64)
    );
    let worst = net
        .joiners()
        .map(|e| e.stats().cprst_plus_joinwait())
        .max()
        .unwrap_or(0);
    println!("max CpRst+JoinWait : {worst} (bound {})", d + 1);
    if !c.is_consistent() || !net.all_in_system() {
        return Err("run violated the paper's theorems — this is a bug".into());
    }
    Ok(())
}

fn cmd_bootstrap(f: &Flags) -> Result<(), String> {
    let b: u16 = f.get("b", 16)?;
    let d: usize = f.get("d", 8)?;
    let n: usize = f.get("n", 128)?;
    let seed: u64 = f.get("seed", 7)?;
    let space = IdSpace::new(b, d).map_err(|e| e.to_string())?;
    let ids = distinct_ids(space, n, seed);
    eprintln!("bootstrapping {n} nodes from a single seed node (concurrently) …");
    let mut builder = SimNetworkBuilder::new(space);
    builder.add_member(ids[0]);
    for id in &ids[1..] {
        builder.add_joiner(*id, ids[0], 0);
    }
    let mut net = builder.build(UniformDelay::new(500, 50_000), seed);
    let report = net.run();
    let c = net.check_consistency();
    println!("nodes        : {n}");
    println!("messages     : {}", report.delivered);
    println!("virtual time : {:.3} s", report.finished_at as f64 / 1e6);
    println!("consistency  : {c}");
    Ok(())
}

fn cmd_route(f: &Flags) -> Result<(), String> {
    let b: u16 = f.get("b", 16)?;
    let d: usize = f.get("d", 8)?;
    let n: usize = f.get("n", 256)?;
    let pairs: usize = f.get("pairs", 5)?;
    let seed: u64 = f.get("seed", 7)?;
    let space = IdSpace::new(b, d).map_err(|e| e.to_string())?;
    let ids = distinct_ids(space, n, seed);
    let tables: HashMap<NodeId, NeighborTable> =
        hyperring::core::build_consistent_tables(space, &ids)
            .into_iter()
            .map(|t| (t.owner(), t))
            .collect();
    for k in 0..pairs {
        let s = ids[(k * 17) % n];
        let t = ids[(k * 101 + 31) % n];
        match route(s, t, |id| tables.get(id)) {
            RouteOutcome::Delivered { path } => {
                let pretty: Vec<String> = path.iter().map(|p| p.to_string()).collect();
                println!("{}", pretty.join(" -> "));
            }
            dropped => return Err(format!("route failed: {dropped:?}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "analyze" => cmd_analyze(&flags),
        "simulate" => cmd_simulate(&flags),
        "bootstrap" => cmd_bootstrap(&flags),
        "route" => cmd_route(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
