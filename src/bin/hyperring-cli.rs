//! `hyperring-cli` — run the paper's machinery from the command line.
//!
//! ```console
//! $ hyperring-cli analyze  --b 16 --d 8 --n 3096 --m 1000
//! $ hyperring-cli simulate --b 16 --d 8 --n 512 --m 128 --seed 7 --lookups 2000
//! $ hyperring-cli bootstrap --n 128
//! $ hyperring-cli route    --n 256 --pairs 5 --seed 3
//! ```
//!
//! `simulate` and `bootstrap` ride the harness's [`Scenario`] and
//! [`TimelineScenario`] runners — the same engines, options, and report
//! types every experiment binary uses — instead of hand-rolled
//! `SimNetworkBuilder` loops.

use std::collections::HashMap;
use std::process::ExitCode;

use hyperring::analysis::{
    expected_filled_entries, expected_join_noti, expected_noti_level, theorem3_bound,
    upper_bound_join_noti,
};
use hyperring::core::{route, NeighborTable, RouteOutcome};
use hyperring::harness::{distinct_ids, Scenario, Timeline, TimelineScenario};
use hyperring::id::{IdSpace, NodeId};

/// Minimal `--key value` flag parser with typed lookups and defaults.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {a:?}"))?;
            let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), val.clone());
        }
        Ok(Flags(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

fn usage() -> &'static str {
    "hyperring-cli — hypercube routing with consistency-preserving joins\n\
     \n\
     USAGE:\n\
       hyperring-cli <command> [--flag value]...\n\
     \n\
     COMMANDS:\n\
       analyze    closed-form cost model (Theorems 3-5, occupancy)\n\
                  flags: --b 16 --d 8 --n 3096 --m 1000\n\
       simulate   run n members + m concurrent joins, report stats\n\
                  flags: --b 16 --d 8 --n 512 --m 128 --seed 7 --lookups 0\n\
       bootstrap  initialize a network from one node (§6.1)\n\
                  flags: --b 16 --d 8 --n 128 --seed 7\n\
       route      sample routes over a consistent network\n\
                  flags: --b 16 --d 8 --n 256 --pairs 5 --seed 7\n\
       help       print this text\n"
}

fn cmd_analyze(f: &Flags) -> Result<(), String> {
    let b: u32 = f.get("b", 16)?;
    let d: u32 = f.get("d", 8)?;
    let n: u64 = f.get("n", 3096)?;
    let m: u64 = f.get("m", 1000)?;
    println!(
        "identifier space: base {b}, {d} digits ({} ids)",
        (b as f64).powi(d as i32)
    );
    println!("network size n = {n}, concurrent joiners m = {m}");
    println!();
    println!(
        "Theorem 3:  CpRstMsg + JoinWaitMsg per join <= {}",
        theorem3_bound(d as usize)
    );
    println!(
        "Theorem 4:  E[JoinNotiMsg], single join  = {:.3}",
        expected_join_noti(b, d, n)
    );
    println!(
        "Theorem 5:  E[JoinNotiMsg] upper bound   = {:.3}",
        upper_bound_join_noti(b, d, n, m)
    );
    println!(
        "expected notification level              = {:.3}",
        expected_noti_level(b, d, n)
    );
    println!(
        "expected filled table entries            = {:.1} of {}",
        expected_filled_entries(b, d, n),
        b * d
    );
    Ok(())
}

fn cmd_simulate(f: &Flags) -> Result<(), String> {
    let b: u16 = f.get("b", 16)?;
    let d: usize = f.get("d", 8)?;
    let n: usize = f.get("n", 512)?;
    let m: usize = f.get("m", 128)?;
    let seed: u64 = f.get("seed", 7)?;
    let lookups: usize = f.get("lookups", 0)?;
    let space = IdSpace::new(b, d).map_err(|e| e.to_string())?;
    eprintln!("simulating {n} members + {m} concurrent joins (b={b}, d={d}, seed={seed}) …");
    let mut sc = Scenario::new(space)
        .nodes(n)
        .joiners(m)
        .seed(seed)
        .delay_bounds(1_000, 80_000);
    if lookups > 0 {
        sc = sc.lookup_storm(lookups, 64.min(n), 0.9);
    }
    let r = sc.run_sim();
    println!("survivors          : {}", r.survivors);
    println!("virtual time       : {:.3} s", r.finished_at as f64 / 1e6);
    println!("consistency        : {}", r.report);
    println!(
        "reachability       : {}/{} pairs unreachable",
        r.unreachable_pairs, r.total_pairs
    );
    println!(
        "Theorem 5 bound    : {:.3} JoinNotiMsg per join",
        upper_bound_join_noti(b as u32, d as u32, n as u64, m as u64)
    );
    if let Some(s) = &r.lookup {
        println!(
            "lookup storm       : {} lookups over {} keys, {:.2} mean hops (max {}), load imbalance {:.2}",
            s.lookups, s.keys, s.mean_hops, s.max_hops, s.load.imbalance
        );
    }
    if !r.consistent() {
        return Err("run violated the paper's theorems — this is a bug".into());
    }
    Ok(())
}

fn cmd_bootstrap(f: &Flags) -> Result<(), String> {
    let b: u16 = f.get("b", 16)?;
    let d: usize = f.get("d", 8)?;
    let n: usize = f.get("n", 128)?;
    let seed: u64 = f.get("seed", 7)?;
    let space = IdSpace::new(b, d).map_err(|e| e.to_string())?;
    eprintln!("bootstrapping {n} nodes from a single seed node (concurrently) …");
    // One member, n-1 concurrent joins at t=0; a late keyed storm probes
    // the settled network and the horizon lets everything quiesce first.
    let tl = Timeline::new()
        .at(0)
        .join(n - 1)
        .at(600_000_000)
        .keyed_storm(256, 32.min(n), 0.9)
        .horizon(u64::MAX);
    let r = TimelineScenario::new(space)
        .members(1)
        .seed(seed)
        .delay_bounds(500, 50_000)
        .run(tl);
    println!("nodes        : {}", r.survivors);
    println!("virtual time : {:.3} s", r.finished_at as f64 / 1e6);
    println!("consistency  : {}", r.final_report);
    let s = &r.keyed_storms[0].stats;
    println!(
        "lookups      : {} over {} keys, {:.2} mean hops (max {})",
        s.lookups, s.keys, s.mean_hops, s.max_hops
    );
    if !r.consistent {
        return Err("bootstrap ended inconsistent — this is a bug".into());
    }
    Ok(())
}

fn cmd_route(f: &Flags) -> Result<(), String> {
    let b: u16 = f.get("b", 16)?;
    let d: usize = f.get("d", 8)?;
    let n: usize = f.get("n", 256)?;
    let pairs: usize = f.get("pairs", 5)?;
    let seed: u64 = f.get("seed", 7)?;
    let space = IdSpace::new(b, d).map_err(|e| e.to_string())?;
    let ids = distinct_ids(space, n, seed);
    let tables = hyperring::core::build_consistent_tables(space, &ids);
    // Borrowed view — routing never needs to own the tables.
    let by_id: HashMap<NodeId, &NeighborTable> = tables.iter().map(|t| (t.owner(), t)).collect();
    for k in 0..pairs {
        let s = ids[(k * 17) % n];
        let t = ids[(k * 101 + 31) % n];
        match route(s, t, |id| by_id.get(id).copied()) {
            RouteOutcome::Delivered { path } => {
                let pretty: Vec<String> = path.iter().map(|p| p.to_string()).collect();
                println!("{}", pretty.join(" -> "));
            }
            dropped => return Err(format!("route failed: {dropped:?}")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "analyze" => cmd_analyze(&flags),
        "simulate" => cmd_simulate(&flags),
        "bootstrap" => cmd_bootstrap(&flags),
        "route" => cmd_route(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
