//! # hyperring
//!
//! A from-scratch Rust implementation of Liu & Lam, *Neighbor Table
//! Construction and Update in a Dynamic Peer-to-Peer Network* (IEEE ICDCS
//! 2003): the PRR-style hypercube (suffix) routing scheme, the paper's
//! join protocol that keeps neighbor tables **consistent under an
//! arbitrary number of concurrent joins**, the C-set-tree machinery of its
//! correctness argument, its analytic cost model (Theorems 3–5), and the
//! full simulation substrate (deterministic event-driven simulator plus a
//! GT-ITM-style transit-stub topology generator) used to regenerate the
//! paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`id`] | `hyperring-id` | base-`b` digit identifiers, suffix arithmetic, SHA-1 |
//! | [`core`] | `hyperring-core` | neighbor tables, the join protocol, routing, consistency |
//! | [`cset`] | `hyperring-cset` | C-set tree templates and realizations (§3, §5.1) |
//! | [`analysis`] | `hyperring-analysis` | Theorems 3–5 in closed form |
//! | [`sim`] | `hyperring-sim` | deterministic discrete-event simulator |
//! | [`topology`] | `hyperring-topology` | transit-stub router topologies, latency models |
//! | [`net`] | `hyperring-net` | threaded runtime (real concurrency) |
//! | [`object`] | `hyperring-object` | object location (publish/lookup, surrogate routing) |
//! | [`harness`] | `hyperring-harness` | experiment drivers for every table/figure |
//!
//! # Quick start
//!
//! ```
//! use hyperring::core::SimNetworkBuilder;
//! use hyperring::id::IdSpace;
//! use hyperring::sim::UniformDelay;
//! use rand::SeedableRng;
//!
//! // A consistent 24-node network, then 8 nodes join at the same instant.
//! let space = IdSpace::new(16, 8)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut ids = std::collections::BTreeSet::new();
//! while ids.len() < 32 {
//!     ids.insert(space.random_id(&mut rng));
//! }
//! let ids: Vec<_> = ids.into_iter().collect();
//!
//! let mut b = SimNetworkBuilder::new(space);
//! for id in &ids[..24] {
//!     b.add_member(*id);
//! }
//! for id in &ids[24..] {
//!     b.add_joiner(*id, ids[0], 0);
//! }
//! let mut net = b.build(UniformDelay::new(1_000, 50_000), 7);
//! net.run();
//! assert!(net.all_in_system());                       // Theorem 2
//! assert!(net.check_consistency().is_consistent());   // Theorem 1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hyperring_analysis as analysis;
pub use hyperring_core as core;
pub use hyperring_cset as cset;
pub use hyperring_harness as harness;
pub use hyperring_id as id;
pub use hyperring_net as net;
pub use hyperring_object as object;
pub use hyperring_sim as sim;
pub use hyperring_topology as topology;
