use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex};

use hyperring_id::{IdSpace, NodeId, Suffix};

/// The paper's per-neighbor state: `T` while the neighbor is still joining,
/// `S` once it is known to be an S-node (status *in_system*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// The neighbor has not (yet) been observed to be in the system.
    T,
    /// The neighbor is in the system.
    S,
}

/// One neighbor-table entry: a node and the state recorded for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The primary neighbor stored in this entry.
    pub node: NodeId,
    /// The recorded state of that neighbor.
    pub state: NodeState,
}

/// A node's neighbor table: `d` levels × `b` entries.
///
/// Entry `(i, j)` holds a node sharing the rightmost `i` digits with the
/// owner and whose `i`-th digit is `j` (the paper's §2.1). The table also
/// tracks reverse neighbors — `R_x(i, j)` in the paper — which the join
/// protocol needs when a node switches to *in_system*.
///
/// # Examples
///
/// ```
/// use hyperring_core::{Entry, NeighborTable, NodeState};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 5)?;
/// let me = space.parse_id("21233")?;
/// let mut t = NeighborTable::new(space, me);
/// t.set_self_entries(NodeState::S);
/// assert_eq!(t.get(2, 2).unwrap().node, me);
/// let y = space.parse_id("31033")?;
/// // y shares suffix "33" (2 digits) and y[2] = 0:
/// t.set(2, 0, Entry { node: y, state: NodeState::S });
/// assert_eq!(t.get(2, 0).unwrap().node, y);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct NeighborTable {
    space: IdSpace,
    owner: NodeId,
    entries: Vec<Option<Entry>>,
    reverse: Vec<BTreeSet<NodeId>>,
    /// Memoized full-table snapshot; rebuilt lazily after any entry
    /// mutation so repeated big-message sends between mutations share one
    /// row allocation instead of re-collecting `d×b` slots each time.
    snap: Mutex<Option<TableSnapshot>>,
}

impl Clone for NeighborTable {
    fn clone(&self) -> Self {
        NeighborTable {
            space: self.space,
            owner: self.owner,
            entries: self.entries.clone(),
            reverse: self.reverse.clone(),
            snap: Mutex::new(self.snap.lock().unwrap().clone()),
        }
    }
}

impl NeighborTable {
    /// Creates an empty table for `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` does not belong to `space`.
    pub fn new(space: IdSpace, owner: NodeId) -> Self {
        assert!(space.contains(&owner), "owner id not in space");
        let slots = space.digit_count() * space.base() as usize;
        NeighborTable {
            space,
            owner,
            entries: vec![None; slots],
            reverse: vec![BTreeSet::new(); slots],
            snap: Mutex::new(None),
        }
    }

    /// Drops the memoized snapshot after an entry mutation.
    #[inline]
    fn invalidate_snapshot(&mut self) {
        *self.snap.get_mut().unwrap() = None;
    }

    /// The identifier space of the table.
    #[inline]
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// The owning node.
    #[inline]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    #[inline]
    fn slot(&self, level: usize, digit: u8) -> usize {
        debug_assert!(level < self.space.digit_count(), "level {level} too big");
        debug_assert!((digit as u16) < self.space.base(), "digit {digit} too big");
        level * self.space.base() as usize + digit as usize
    }

    /// The `(level, digit)` entry, i.e. the paper's `N_x(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `level` or `digit` are out of range.
    #[inline]
    pub fn get(&self, level: usize, digit: u8) -> Option<Entry> {
        self.entries[self.slot(level, digit)]
    }

    /// Sets the `(level, digit)` entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the entry's node does not have the desired
    /// suffix for the slot (a protocol-invariant violation).
    pub fn set(&mut self, level: usize, digit: u8, entry: Entry) {
        debug_assert!(
            self.fits(level, digit, &entry.node),
            "node {} does not fit entry ({level}, {digit}) of {}",
            entry.node,
            self.owner
        );
        let s = self.slot(level, digit);
        self.entries[s] = Some(entry);
        self.invalidate_snapshot();
    }

    /// Clears the `(level, digit)` entry. The join protocol never removes
    /// neighbors; the callers are the leave handlers, the failure
    /// detector's eviction pass, tests, and tooling.
    pub fn clear(&mut self, level: usize, digit: u8) {
        let s = self.slot(level, digit);
        self.entries[s] = None;
        self.invalidate_snapshot();
    }

    /// Updates the recorded state of the `(level, digit)` entry if it
    /// currently stores `node`. Returns whether an update happened.
    pub fn set_state_if(
        &mut self,
        level: usize,
        digit: u8,
        node: &NodeId,
        state: NodeState,
    ) -> bool {
        let s = self.slot(level, digit);
        match &mut self.entries[s] {
            Some(e) if e.node == *node => {
                e.state = state;
                self.invalidate_snapshot();
                true
            }
            _ => false,
        }
    }

    /// Whether `node` may legally occupy entry `(level, digit)`: it shares
    /// the rightmost `level` digits with the owner and its `level`-th digit
    /// is `digit`.
    pub fn fits(&self, level: usize, digit: u8, node: &NodeId) -> bool {
        node.csuf_len(&self.owner) >= level && node.digit(level) == digit
    }

    /// The desired suffix of entry `(level, digit)`: `digit ∘ owner[level-1..0]`.
    pub fn desired_suffix(&self, level: usize, digit: u8) -> Suffix {
        self.owner.suffix(level).extend_left(digit)
    }

    /// Sets every self entry `N_x(i, x[i]) = x` with the given state
    /// (the paper chooses the primary `(i, x[i])`-neighbor of `x` to be `x`).
    pub fn set_self_entries(&mut self, state: NodeState) {
        let owner = self.owner;
        for i in 0..self.space.digit_count() {
            self.set(i, owner.digit(i), Entry { node: owner, state });
        }
    }

    /// Iterates all non-empty entries as `(level, digit, entry)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u8, Entry)> + '_ {
        let b = self.space.base() as usize;
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(s, e)| e.map(|e| (s / b, (s % b) as u8, e)))
    }

    /// Number of non-empty entries.
    pub fn filled(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Adds `node` to the reverse-neighbor set `R_x(level, digit)`.
    pub fn add_reverse(&mut self, level: usize, digit: u8, node: NodeId) {
        let s = self.slot(level, digit);
        self.reverse[s].insert(node);
    }

    /// Removes `node` from every reverse-neighbor set (the node is
    /// leaving). Returns how many sets contained it.
    pub fn remove_reverse(&mut self, node: &NodeId) -> usize {
        self.reverse
            .iter_mut()
            .map(|set| usize::from(set.remove(node)))
            .sum()
    }

    /// A replacement candidate sharing at least `min_csuf` digits with the
    /// owner: the first non-self entry at level `min_csuf` or deeper. Used
    /// by the leave extension — every node at level `i ≥ min_csuf` shares
    /// `≥ min_csuf` rightmost digits with the owner by the table invariant.
    pub fn find_sharer(&self, min_csuf: usize) -> Option<Entry> {
        for level in min_csuf..self.space.digit_count() {
            for digit in 0..self.space.base() as u8 {
                if let Some(e) = self.get(level, digit) {
                    if e.node != self.owner {
                        return Some(e);
                    }
                }
            }
        }
        None
    }

    /// All reverse neighbors across all entries, deduplicated.
    pub fn reverse_neighbors(&self) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for set in &self.reverse {
            out.extend(set.iter().copied());
        }
        out
    }

    /// Reverse neighbors of one entry.
    pub fn reverse_of(&self, level: usize, digit: u8) -> &BTreeSet<NodeId> {
        &self.reverse[self.slot(level, digit)]
    }

    /// Takes an immutable snapshot of all non-empty entries, for inclusion
    /// in a protocol message.
    ///
    /// The snapshot is memoized: until the next entry mutation, further
    /// calls return the same shared row allocation (an `Arc` clone), so
    /// attaching the table to many messages costs O(1) per message.
    pub fn snapshot(&self) -> TableSnapshot {
        let mut cache = self.snap.lock().unwrap();
        if let Some(s) = &*cache {
            return s.clone();
        }
        let s = self.snapshot_levels(0, self.space.digit_count());
        *cache = Some(s.clone());
        s
    }

    /// Snapshot restricted to levels `lo..hi` (the §6.2 "levels only"
    /// message-size reduction).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi` exceeds the level count.
    pub fn snapshot_levels(&self, lo: usize, hi: usize) -> TableSnapshot {
        assert!(lo <= hi && hi <= self.space.digit_count());
        // `filter` hides the length from `collect`; pre-size to the slot
        // count so building a snapshot never reallocates.
        let mut rows: Vec<SnapshotRow> = Vec::with_capacity((hi - lo) * self.space.base() as usize);
        rows.extend(
            self.iter()
                .filter(|&(i, _, _)| i >= lo && i < hi)
                .map(|(i, j, e)| SnapshotRow {
                    level: i as u8,
                    digit: j,
                    entry: e,
                }),
        );
        TableSnapshot {
            owner: self.owner,
            rows: Arc::new(rows),
        }
    }

    /// Snapshot filtered by the §6.2 bit-vector rule: for levels below
    /// `noti_level`, include only entries whose slot is *not* marked filled
    /// in `filled_bits`; from `noti_level` up, include everything.
    pub fn snapshot_bitvec(&self, noti_level: usize, filled_bits: &[u64]) -> TableSnapshot {
        let b = self.space.base() as usize;
        let mut rows: Vec<SnapshotRow> = Vec::with_capacity(self.entries.len());
        rows.extend(
            self.iter()
                .filter(|&(i, j, _)| {
                    if i >= noti_level {
                        return true;
                    }
                    let slot = i * b + j as usize;
                    filled_bits
                        .get(slot / 64)
                        .is_none_or(|w| w & (1u64 << (slot % 64)) == 0)
                })
                .map(|(i, j, e)| SnapshotRow {
                    level: i as u8,
                    digit: j,
                    entry: e,
                }),
        );
        TableSnapshot {
            owner: self.owner,
            rows: Arc::new(rows),
        }
    }

    /// The bit vector of filled entries (one bit per slot, level-major),
    /// as attached to a `JoinNotiMsg` in bit-vector mode.
    pub fn filled_bitvec(&self) -> Vec<u64> {
        let slots = self.entries.len();
        let mut bits = vec![0u64; slots.div_ceil(64)];
        for (s, e) in self.entries.iter().enumerate() {
            if e.is_some() {
                bits[s / 64] |= 1u64 << (s % 64);
            }
        }
        bits
    }

    /// Renders the table like the paper's Figure 1: one column per level
    /// (highest first), one row per digit, empty entries blank.
    pub fn render(&self) -> String {
        let d = self.space.digit_count();
        let b = self.space.base() as usize;
        let width = d + 2;
        let mut out = String::new();
        out.push_str(&format!(
            "Neighbor table of node {}  (b={}, d={})\n",
            self.owner,
            self.space.base(),
            d
        ));
        for line in [true, false] {
            if line {
                let mut header = String::new();
                for i in (0..d).rev() {
                    header.push_str(&format!("{:>width$}", format!("lv{i}"), width = width + 1));
                }
                out.push_str(&header);
                out.push('\n');
            }
        }
        for j in 0..b {
            for i in (0..d).rev() {
                let cell = match self.get(i, j as u8) {
                    Some(e) => format!(
                        "{}{}",
                        e.node,
                        if e.state == NodeState::S { "" } else { "*" }
                    ),
                    None => String::new(),
                };
                out.push_str(&format!("{cell:>width$} ", width = width));
            }
            out.push('\n');
        }
        out
    }
}

/// A compact row of a [`TableSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotRow {
    /// Level `i` of the entry.
    pub level: u8,
    /// Digit `j` of the entry.
    pub digit: u8,
    /// The entry itself.
    pub entry: Entry,
}

/// An immutable, cheaply clonable copy of (part of) a neighbor table, as
/// carried inside protocol messages.
///
/// Snapshots are reference-counted: attaching one to several messages,
/// cloning a [`Message`](crate::Message), or draining an
/// [`Effects`](crate::Effects) buffer never copies the rows, mirroring how a real
/// implementation would serialize a table once. (The rows sit behind
/// `Arc<Vec<_>>` rather than `Arc<[_]>` deliberately: constructing an
/// `Arc<[T]>` from an unknown-length iterator copies the collected buffer
/// a second time, which showed up as a measurable per-snapshot cost.)
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    owner: NodeId,
    rows: Arc<Vec<SnapshotRow>>,
}

impl TableSnapshot {
    /// The node whose table was photographed.
    #[inline]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Rows (non-empty entries) in the snapshot.
    #[inline]
    pub fn rows(&self) -> &[SnapshotRow] {
        &self.rows
    }

    /// Looks up entry `(level, digit)` in the snapshot.
    pub fn get(&self, level: usize, digit: u8) -> Option<Entry> {
        self.rows
            .iter()
            .find(|r| r.level as usize == level && r.digit == digit)
            .map(|r| r.entry)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the snapshot has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TableSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot of {} ({} rows)", self.owner, self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> IdSpace {
        IdSpace::new(4, 5).unwrap()
    }

    fn id(s: &str) -> NodeId {
        space().parse_id(s).unwrap()
    }

    #[test]
    fn fits_enforces_desired_suffix() {
        let t = NeighborTable::new(space(), id("21233"));
        // Entry (2, 0): desired suffix 0 ∘ "33" = "033".
        assert!(t.fits(2, 0, &id("31033")));
        assert!(!t.fits(2, 0, &id("31133")));
        assert!(!t.fits(2, 0, &id("31030")));
        assert_eq!(t.desired_suffix(2, 0).to_string(), "033");
        // Level 0 entries only constrain the last digit.
        assert!(t.fits(0, 1, &id("33121")));
        assert!(!t.fits(0, 1, &id("33123")));
    }

    #[test]
    fn self_entries_cover_all_levels() {
        let me = id("21233");
        let mut t = NeighborTable::new(space(), me);
        t.set_self_entries(NodeState::T);
        for i in 0..5 {
            let e = t.get(i, me.digit(i)).unwrap();
            assert_eq!(e.node, me);
            assert_eq!(e.state, NodeState::T);
        }
        assert_eq!(t.filled(), 5);
    }

    #[test]
    fn set_state_if_only_matches_same_node() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set(
            2,
            0,
            Entry {
                node: id("31033"),
                state: NodeState::T,
            },
        );
        assert!(!t.set_state_if(2, 0, &id("21033"), NodeState::S));
        assert_eq!(t.get(2, 0).unwrap().state, NodeState::T);
        assert!(t.set_state_if(2, 0, &id("31033"), NodeState::S));
        assert_eq!(t.get(2, 0).unwrap().state, NodeState::S);
    }

    #[test]
    fn snapshot_reflects_entries_and_is_shared() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.owner(), id("21233"));
        assert_eq!(snap.get(0, 3).unwrap().node, id("21233"));
        assert!(snap.get(0, 0).is_none());
        let c = snap.clone();
        assert_eq!(c.rows().as_ptr(), snap.rows().as_ptr());
    }

    #[test]
    fn snapshot_is_memoized_until_mutation() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        let a = t.snapshot();
        let b = t.snapshot();
        // Same shared allocation until the table changes…
        assert_eq!(a.rows().as_ptr(), b.rows().as_ptr());
        t.set(
            0,
            1,
            Entry {
                node: id("33121"),
                state: NodeState::T,
            },
        );
        // …and a fresh one after any mutation.
        let c = t.snapshot();
        assert_ne!(a.rows().as_ptr(), c.rows().as_ptr());
        assert_eq!(c.len(), 6);
        assert_eq!(a.len(), 5);
        // A recorded-state change invalidates too.
        assert!(t.set_state_if(0, 1, &id("33121"), NodeState::S));
        assert_eq!(t.snapshot().get(0, 1).unwrap().state, NodeState::S);
        // Cloned tables keep working (and share the memo at clone time).
        let u = t.clone();
        assert_eq!(u.snapshot().rows().as_ptr(), t.snapshot().rows().as_ptr());
    }

    #[test]
    fn snapshot_levels_restricts_range() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        let snap = t.snapshot_levels(2, 4);
        assert_eq!(snap.len(), 2);
        assert!(snap
            .rows()
            .iter()
            .all(|r| (2..4).contains(&(r.level as usize))));
    }

    #[test]
    fn bitvec_snapshot_hides_filled_low_levels() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        // Receiver claims everything filled: low levels drop out, levels
        // >= noti_level stay.
        let all_ones = vec![u64::MAX; 4];
        let snap = t.snapshot_bitvec(3, &all_ones);
        assert_eq!(snap.len(), 2); // levels 3 and 4 self entries
                                   // Receiver claims nothing filled: everything included.
        let zeros = vec![0u64; 4];
        let snap = t.snapshot_bitvec(3, &zeros);
        assert_eq!(snap.len(), 5);
    }

    #[test]
    fn filled_bitvec_matches_entries() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set(
            0,
            1,
            Entry {
                node: id("33121"),
                state: NodeState::S,
            },
        );
        let bits = t.filled_bitvec();
        let slot = 1; // level 0, digit 1
        assert_ne!(bits[slot / 64] & (1 << (slot % 64)), 0);
        assert_eq!(bits.iter().map(|w| w.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn reverse_neighbor_bookkeeping() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.add_reverse(1, 3, id("31033"));
        t.add_reverse(1, 3, id("31033")); // dedup
        t.add_reverse(0, 3, id("13113"));
        assert_eq!(t.reverse_of(1, 3).len(), 1);
        let all = t.reverse_neighbors();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&id("31033")));
    }

    #[test]
    fn render_contains_owner_and_neighbors() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        let s = t.render();
        assert!(s.contains("21233"));
        assert!(s.contains("b=4, d=5"));
    }

    #[test]
    #[should_panic(expected = "owner id not in space")]
    fn rejects_owner_from_other_space() {
        let other = IdSpace::new(8, 3).unwrap();
        let id8 = other.parse_id("777").unwrap();
        NeighborTable::new(space(), id8);
    }
}
