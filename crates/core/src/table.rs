use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use hyperring_id::{IdSpace, NodeId, Suffix};

/// The paper's per-neighbor state: `T` while the neighbor is still joining,
/// `S` once it is known to be an S-node (status *in_system*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// The neighbor has not (yet) been observed to be in the system.
    T,
    /// The neighbor is in the system.
    S,
}

/// One neighbor-table entry: a node and the state recorded for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The primary neighbor stored in this entry.
    pub node: NodeId,
    /// The recorded state of that neighbor.
    pub state: NodeState,
}

/// Per-table interner for node identifiers.
///
/// Every distinct id a table ever references (entries and reverse
/// neighbors) is stored exactly once as packed digits — nibble-packed when
/// the base fits four bits, one byte per digit otherwise — and addressed
/// by a dense `u32` index. A `NodeId` is 65 bytes and repeats across many
/// slots of the same table (the owner alone occupies `d` self entries), so
/// interning plus packing is what collapses the per-node footprint by an
/// order of magnitude.
///
/// Digits are packed **most-significant first** (high nibble first), so
/// comparing packed bytes lexicographically equals comparing ids
/// numerically — the same order as `NodeId::Ord` for the equal-length ids
/// of one space. Both the dedup index and the reverse-neighbor arena lean
/// on that equivalence.
#[derive(Debug, Clone)]
struct IdArena {
    /// Packed digit storage, `stride` bytes per interned id.
    bytes: Vec<u8>,
    /// Interned indices sorted by packed-byte (= numeric) order.
    sorted: Vec<u32>,
    stride: usize,
    nibble: bool,
    digits: usize,
}

impl IdArena {
    fn new(space: IdSpace) -> Self {
        let digits = space.digit_count();
        let nibble = space.base() <= 16;
        IdArena {
            bytes: Vec::new(),
            sorted: Vec::new(),
            stride: if nibble { digits.div_ceil(2) } else { digits },
            nibble,
            digits,
        }
    }

    /// Packs `id` into `buf`; returns the packed length (`stride`).
    fn pack(&self, id: &NodeId, buf: &mut [u8; 64]) -> usize {
        debug_assert_eq!(id.digit_count(), self.digits, "id from a foreign space");
        if self.nibble {
            let mut j = 0;
            let mut pos = self.digits;
            while pos > 0 {
                let hi = id.digit(pos - 1);
                let lo = if pos >= 2 { id.digit(pos - 2) } else { 0 };
                buf[j] = (hi << 4) | lo;
                j += 1;
                pos = pos.saturating_sub(2);
            }
        } else {
            for (j, byte) in buf.iter_mut().enumerate().take(self.digits) {
                *byte = id.digit(self.digits - 1 - j);
            }
        }
        self.stride
    }

    #[inline]
    fn packed(&self, idx: u32) -> &[u8] {
        let start = idx as usize * self.stride;
        &self.bytes[start..start + self.stride]
    }

    fn resolve(&self, idx: u32) -> NodeId {
        let b = self.packed(idx);
        let mut lsd = [0u8; 64];
        if self.nibble {
            let mut j = 0;
            let mut pos = self.digits;
            while pos > 0 {
                lsd[pos - 1] = b[j] >> 4;
                if pos >= 2 {
                    lsd[pos - 2] = b[j] & 0x0f;
                }
                j += 1;
                pos = pos.saturating_sub(2);
            }
        } else {
            for j in 0..self.digits {
                lsd[self.digits - 1 - j] = b[j];
            }
        }
        NodeId::from_digits_lsd(&lsd[..self.digits])
    }

    /// Interns `id`, returning its stable dense index.
    fn intern(&mut self, id: &NodeId) -> u32 {
        let mut buf = [0u8; 64];
        let n = self.pack(id, &mut buf);
        let key = &buf[..n];
        match self.sorted.binary_search_by(|&i| self.packed(i).cmp(key)) {
            Ok(pos) => self.sorted[pos],
            Err(pos) => {
                let idx = (self.bytes.len() / self.stride) as u32;
                debug_assert!(idx < IDX_MASK, "id arena full");
                self.bytes.extend_from_slice(key);
                self.sorted.insert(pos, idx);
                idx
            }
        }
    }

    /// Index of `id` if it was ever interned.
    fn lookup(&self, id: &NodeId) -> Option<u32> {
        let mut buf = [0u8; 64];
        let n = self.pack(id, &mut buf);
        let key = &buf[..n];
        self.sorted
            .binary_search_by(|&i| self.packed(i).cmp(key))
            .ok()
            .map(|pos| self.sorted[pos])
    }

    /// Numeric order of two interned ids.
    #[inline]
    fn cmp_ids(&self, a: u32, b: u32) -> Ordering {
        self.packed(a).cmp(self.packed(b))
    }
}

/// Process-wide entry-version clock. Every table mutation draws a fresh
/// value, so two `NeighborTable`s share a version **iff** one is an
/// unmutated clone of the other — which guarantees identical entries. The
/// incremental checker leans on exactly that implication to skip clean
/// tables; version values themselves are not deterministic across runs
/// and must never feed a digest.
static VERSION_CLOCK: AtomicU64 = AtomicU64::new(1);

/// A fresh, process-unique version stamp.
fn next_version() -> u64 {
    VERSION_CLOCK.fetch_add(1, AtomicOrdering::Relaxed)
}

/// Empty-slot marker (also has [`S_BIT`] set, so it can never collide with
/// a real encoded entry).
const EMPTY: u32 = u32::MAX;
/// Entry-state flag: set when the recorded state is `S`.
const S_BIT: u32 = 1 << 31;
/// Low bits of an encoded entry: the arena index of its node.
const IDX_MASK: u32 = S_BIT - 1;

/// One reverse-neighbor membership: `node ∈ R_x(slot)`. The full reverse
/// structure is a single flat arena sorted by `(slot, numeric id)` —
/// per-slot sets are contiguous runs found by binary search, replacing the
/// per-slot `BTreeSet<NodeId>` allocations of the old layout.
#[derive(Debug, Clone, Copy)]
struct RevEntry {
    slot: u16,
    idx: u32,
}

/// A node's neighbor table: `d` levels × `b` entries.
///
/// Entry `(i, j)` holds a node sharing the rightmost `i` digits with the
/// owner and whose `i`-th digit is `j` (the paper's §2.1). The table also
/// tracks reverse neighbors — `R_x(i, j)` in the paper — which the join
/// protocol needs when a node switches to *in_system*.
///
/// Internally the table is a struct-of-arrays over an id-interning arena:
/// a dense `u32` slab holds one `arena index | state bit` word per
/// `(level, digit)` slot, and reverse neighbors live in one flat sorted
/// arena of `(slot, id)` pairs instead of a `BTreeSet` per slot. At `d = 8`,
/// `b = 16` this is roughly 1 KiB per table where the boxed layout took
/// over 10 KiB — the difference between 4k-node and 100k-node simulations.
///
/// # Examples
///
/// ```
/// use hyperring_core::{Entry, NeighborTable, NodeState};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 5)?;
/// let me = space.parse_id("21233")?;
/// let mut t = NeighborTable::new(space, me);
/// t.set_self_entries(NodeState::S);
/// assert_eq!(t.get(2, 2).unwrap().node, me);
/// let y = space.parse_id("31033")?;
/// // y shares suffix "33" (2 digits) and y[2] = 0:
/// t.set(2, 0, Entry { node: y, state: NodeState::S });
/// assert_eq!(t.get(2, 0).unwrap().node, y);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct NeighborTable {
    space: IdSpace,
    owner: NodeId,
    /// The owner's arena index (interned at construction), letting
    /// self-entry checks compare indices instead of ids.
    owner_idx: u32,
    arena: IdArena,
    /// One encoded entry per `(level, digit)` slot: [`EMPTY`], or
    /// `arena index | S_BIT`.
    slots: Box<[u32]>,
    /// Reverse-neighbor memberships, sorted by `(slot, numeric id)`.
    rev: Vec<RevEntry>,
    /// Entry-version stamp from [`VERSION_CLOCK`]: refreshed on every
    /// entry mutation, copied verbatim by `clone`. Reverse-neighbor edits
    /// do not touch it — they are invisible to Definition 3.8.
    version: u64,
    /// Memoized full-table snapshot; rebuilt lazily after any entry
    /// mutation so repeated big-message sends between mutations share one
    /// row allocation instead of re-collecting `d×b` slots each time.
    snap: Mutex<Option<TableSnapshot>>,
}

impl Clone for NeighborTable {
    fn clone(&self) -> Self {
        NeighborTable {
            space: self.space,
            owner: self.owner,
            owner_idx: self.owner_idx,
            arena: self.arena.clone(),
            slots: self.slots.clone(),
            rev: self.rev.clone(),
            version: self.version,
            snap: Mutex::new(self.snap.lock().unwrap().clone()),
        }
    }
}

impl NeighborTable {
    /// Creates an empty table for `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` does not belong to `space`.
    pub fn new(space: IdSpace, owner: NodeId) -> Self {
        assert!(space.contains(&owner), "owner id not in space");
        let slots = space.digit_count() * space.base() as usize;
        let mut arena = IdArena::new(space);
        let owner_idx = arena.intern(&owner);
        NeighborTable {
            space,
            owner,
            owner_idx,
            arena,
            slots: vec![EMPTY; slots].into_boxed_slice(),
            rev: Vec::new(),
            version: next_version(),
            snap: Mutex::new(None),
        }
    }

    /// Decodes one slot word back into an [`Entry`].
    #[inline]
    fn decode(&self, raw: u32) -> Option<Entry> {
        if raw == EMPTY {
            return None;
        }
        Some(Entry {
            node: self.arena.resolve(raw & IDX_MASK),
            state: if raw & S_BIT != 0 {
                NodeState::S
            } else {
                NodeState::T
            },
        })
    }

    /// The contiguous run of `rev` belonging to `slot`.
    #[inline]
    fn rev_range(&self, s: u16) -> std::ops::Range<usize> {
        let lo = self.rev.partition_point(|r| r.slot < s);
        let hi = lo + self.rev[lo..].partition_point(|r| r.slot <= s);
        lo..hi
    }

    /// Drops the memoized snapshot and refreshes the version stamp after
    /// an entry mutation.
    #[inline]
    fn invalidate_snapshot(&mut self) {
        self.version = next_version();
        *self.snap.get_mut().unwrap() = None;
    }

    /// The identifier space of the table.
    #[inline]
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// The owning node.
    #[inline]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    #[inline]
    fn slot(&self, level: usize, digit: u8) -> usize {
        debug_assert!(level < self.space.digit_count(), "level {level} too big");
        debug_assert!((digit as u16) < self.space.base(), "digit {digit} too big");
        level * self.space.base() as usize + digit as usize
    }

    /// The `(level, digit)` entry, i.e. the paper's `N_x(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `level` or `digit` are out of range.
    #[inline]
    pub fn get(&self, level: usize, digit: u8) -> Option<Entry> {
        self.decode(self.slots[self.slot(level, digit)])
    }

    /// Sets the `(level, digit)` entry.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the entry's node does not have the desired
    /// suffix for the slot (a protocol-invariant violation).
    pub fn set(&mut self, level: usize, digit: u8, entry: Entry) {
        debug_assert!(
            self.fits(level, digit, &entry.node),
            "node {} does not fit entry ({level}, {digit}) of {}",
            entry.node,
            self.owner
        );
        let s = self.slot(level, digit);
        let idx = self.arena.intern(&entry.node);
        self.slots[s] = idx
            | if entry.state == NodeState::S {
                S_BIT
            } else {
                0
            };
        self.invalidate_snapshot();
    }

    /// Clears the `(level, digit)` entry. The join protocol never removes
    /// neighbors; the callers are the leave handlers, the failure
    /// detector's eviction pass, tests, and tooling.
    pub fn clear(&mut self, level: usize, digit: u8) {
        let s = self.slot(level, digit);
        self.slots[s] = EMPTY;
        self.invalidate_snapshot();
    }

    /// Updates the recorded state of the `(level, digit)` entry if it
    /// currently stores `node`. Returns whether an update happened.
    pub fn set_state_if(
        &mut self,
        level: usize,
        digit: u8,
        node: &NodeId,
        state: NodeState,
    ) -> bool {
        let s = self.slot(level, digit);
        let raw = self.slots[s];
        if raw != EMPTY && self.arena.lookup(node) == Some(raw & IDX_MASK) {
            self.slots[s] = (raw & IDX_MASK) | if state == NodeState::S { S_BIT } else { 0 };
            self.invalidate_snapshot();
            true
        } else {
            false
        }
    }

    /// Whether `node` may legally occupy entry `(level, digit)`: it shares
    /// the rightmost `level` digits with the owner and its `level`-th digit
    /// is `digit`.
    pub fn fits(&self, level: usize, digit: u8, node: &NodeId) -> bool {
        node.csuf_len(&self.owner) >= level && node.digit(level) == digit
    }

    /// The desired suffix of entry `(level, digit)`: `digit ∘ owner[level-1..0]`.
    pub fn desired_suffix(&self, level: usize, digit: u8) -> Suffix {
        self.owner.suffix(level).extend_left(digit)
    }

    /// Sets every self entry `N_x(i, x[i]) = x` with the given state
    /// (the paper chooses the primary `(i, x[i])`-neighbor of `x` to be `x`).
    pub fn set_self_entries(&mut self, state: NodeState) {
        let owner = self.owner;
        for i in 0..self.space.digit_count() {
            self.set(i, owner.digit(i), Entry { node: owner, state });
        }
    }

    /// The table's entry-version stamp: refreshed (to a process-unique
    /// value) by every entry mutation — `set`, `clear`, and a state change
    /// through `set_state_if` — and copied verbatim by `clone`. Equal
    /// versions therefore imply identical entries, which is what the
    /// incremental consistency checker uses to skip unchanged tables.
    /// Reverse-neighbor edits do not refresh it (Definition 3.8 never
    /// reads reverse sets). Not deterministic across runs.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether any entry of this table stores `node`. One interner lookup
    /// (binary search over the ids this table ever referenced) prunes the
    /// common miss; a hit costs a `d · b` word scan. The incremental
    /// checker uses this to find the storers of a joined/departed node
    /// without resolving any `NodeId`s.
    pub fn stores(&self, node: &NodeId) -> bool {
        match self.arena.lookup(node) {
            None => false,
            Some(idx) => self
                .slots
                .iter()
                .any(|&raw| raw != EMPTY && raw & IDX_MASK == idx),
        }
    }

    /// Iterates all non-empty entries as `(level, digit, entry)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u8, Entry)> + '_ {
        let b = self.space.base() as usize;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(s, &raw)| self.decode(raw).map(|e| (s / b, (s % b) as u8, e)))
    }

    /// Number of non-empty entries.
    pub fn filled(&self) -> usize {
        self.slots.iter().filter(|&&raw| raw != EMPTY).count()
    }

    /// Adds `node` to the reverse-neighbor set `R_x(level, digit)`.
    pub fn add_reverse(&mut self, level: usize, digit: u8, node: NodeId) {
        let s = self.slot(level, digit) as u16;
        let idx = self.arena.intern(&node);
        let arena = &self.arena;
        if let Err(pos) = self
            .rev
            .binary_search_by(|r| r.slot.cmp(&s).then_with(|| arena.cmp_ids(r.idx, idx)))
        {
            self.rev.insert(pos, RevEntry { slot: s, idx });
        }
    }

    /// Removes `node` from every reverse-neighbor set (the node is
    /// leaving). Returns how many sets contained it.
    pub fn remove_reverse(&mut self, node: &NodeId) -> usize {
        let Some(idx) = self.arena.lookup(node) else {
            return 0;
        };
        let before = self.rev.len();
        self.rev.retain(|r| r.idx != idx);
        before - self.rev.len()
    }

    /// A replacement candidate sharing at least `min_csuf` digits with the
    /// owner: the first non-self entry at level `min_csuf` or deeper. Used
    /// by the leave extension — every node at level `i ≥ min_csuf` shares
    /// `≥ min_csuf` rightmost digits with the owner by the table invariant.
    pub fn find_sharer(&self, min_csuf: usize) -> Option<Entry> {
        let start = min_csuf * self.space.base() as usize;
        self.slots[start..]
            .iter()
            .find(|&&raw| raw != EMPTY && raw & IDX_MASK != self.owner_idx)
            .and_then(|&raw| self.decode(raw))
    }

    /// All reverse neighbors across all entries, deduplicated.
    pub fn reverse_neighbors(&self) -> BTreeSet<NodeId> {
        self.rev.iter().map(|r| self.arena.resolve(r.idx)).collect()
    }

    /// Reverse neighbors of one entry, in ascending id order.
    pub fn reverse_of(&self, level: usize, digit: u8) -> impl Iterator<Item = NodeId> + '_ {
        let range = self.rev_range(self.slot(level, digit) as u16);
        self.rev[range].iter().map(|r| self.arena.resolve(r.idx))
    }

    /// Takes an immutable snapshot of all non-empty entries, for inclusion
    /// in a protocol message.
    ///
    /// The snapshot is memoized: until the next entry mutation, further
    /// calls return the same shared row allocation (an `Arc` clone), so
    /// attaching the table to many messages costs O(1) per message.
    pub fn snapshot(&self) -> TableSnapshot {
        let mut cache = self.snap.lock().unwrap();
        if let Some(s) = &*cache {
            return s.clone();
        }
        let s = self.snapshot_levels(0, self.space.digit_count());
        *cache = Some(s.clone());
        s
    }

    /// Snapshot restricted to levels `lo..hi` (the §6.2 "levels only"
    /// message-size reduction).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi` exceeds the level count.
    pub fn snapshot_levels(&self, lo: usize, hi: usize) -> TableSnapshot {
        assert!(lo <= hi && hi <= self.space.digit_count());
        // `filter` hides the length from `collect`; pre-size to the slot
        // count so building a snapshot never reallocates.
        let mut rows: Vec<SnapshotRow> = Vec::with_capacity((hi - lo) * self.space.base() as usize);
        rows.extend(
            self.iter()
                .filter(|&(i, _, _)| i >= lo && i < hi)
                .map(|(i, j, e)| SnapshotRow {
                    level: i as u8,
                    digit: j,
                    entry: e,
                }),
        );
        TableSnapshot {
            owner: self.owner,
            rows: Arc::new(rows),
        }
    }

    /// Snapshot filtered by the §6.2 bit-vector rule: for levels below
    /// `noti_level`, include only entries whose slot is *not* marked filled
    /// in `filled_bits`; from `noti_level` up, include everything.
    pub fn snapshot_bitvec(&self, noti_level: usize, filled_bits: &[u64]) -> TableSnapshot {
        let b = self.space.base() as usize;
        let mut rows: Vec<SnapshotRow> = Vec::with_capacity(self.slots.len());
        rows.extend(
            self.iter()
                .filter(|&(i, j, _)| {
                    if i >= noti_level {
                        return true;
                    }
                    let slot = i * b + j as usize;
                    filled_bits
                        .get(slot / 64)
                        .is_none_or(|w| w & (1u64 << (slot % 64)) == 0)
                })
                .map(|(i, j, e)| SnapshotRow {
                    level: i as u8,
                    digit: j,
                    entry: e,
                }),
        );
        TableSnapshot {
            owner: self.owner,
            rows: Arc::new(rows),
        }
    }

    /// The bit vector of filled entries (one bit per slot, level-major),
    /// as attached to a `JoinNotiMsg` in bit-vector mode.
    pub fn filled_bitvec(&self) -> Vec<u64> {
        let slots = self.slots.len();
        let mut bits = vec![0u64; slots.div_ceil(64)];
        for (s, &raw) in self.slots.iter().enumerate() {
            if raw != EMPTY {
                bits[s / 64] |= 1u64 << (s % 64);
            }
        }
        bits
    }

    /// Renders the table like the paper's Figure 1: one column per level
    /// (highest first), one row per digit, empty entries blank.
    pub fn render(&self) -> String {
        let d = self.space.digit_count();
        let b = self.space.base() as usize;
        let width = d + 2;
        let mut out = String::new();
        out.push_str(&format!(
            "Neighbor table of node {}  (b={}, d={})\n",
            self.owner,
            self.space.base(),
            d
        ));
        for line in [true, false] {
            if line {
                let mut header = String::new();
                for i in (0..d).rev() {
                    header.push_str(&format!("{:>width$}", format!("lv{i}"), width = width + 1));
                }
                out.push_str(&header);
                out.push('\n');
            }
        }
        for j in 0..b {
            for i in (0..d).rev() {
                let cell = match self.get(i, j as u8) {
                    Some(e) => format!(
                        "{}{}",
                        e.node,
                        if e.state == NodeState::S { "" } else { "*" }
                    ),
                    None => String::new(),
                };
                out.push_str(&format!("{cell:>width$} ", width = width));
            }
            out.push('\n');
        }
        out
    }
}

/// A compact row of a [`TableSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotRow {
    /// Level `i` of the entry.
    pub level: u8,
    /// Digit `j` of the entry.
    pub digit: u8,
    /// The entry itself.
    pub entry: Entry,
}

/// An immutable, cheaply clonable copy of (part of) a neighbor table, as
/// carried inside protocol messages.
///
/// Snapshots are reference-counted: attaching one to several messages,
/// cloning a [`Message`](crate::Message), or draining an
/// [`Effects`](crate::Effects) buffer never copies the rows, mirroring how a real
/// implementation would serialize a table once. (The rows sit behind
/// `Arc<Vec<_>>` rather than `Arc<[_]>` deliberately: constructing an
/// `Arc<[T]>` from an unknown-length iterator copies the collected buffer
/// a second time, which showed up as a measurable per-snapshot cost.)
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    owner: NodeId,
    rows: Arc<Vec<SnapshotRow>>,
}

impl TableSnapshot {
    /// Reassembles a snapshot from decoded rows (the wire codec's inverse
    /// of [`rows`](Self::rows)). Row validity — levels within `d`, digits
    /// within `b` — is the decoder's responsibility.
    pub fn from_rows(owner: NodeId, rows: Vec<SnapshotRow>) -> Self {
        TableSnapshot {
            owner,
            rows: Arc::new(rows),
        }
    }

    /// The node whose table was photographed.
    #[inline]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Rows (non-empty entries) in the snapshot.
    #[inline]
    pub fn rows(&self) -> &[SnapshotRow] {
        &self.rows
    }

    /// Looks up entry `(level, digit)` in the snapshot.
    pub fn get(&self, level: usize, digit: u8) -> Option<Entry> {
        self.rows
            .iter()
            .find(|r| r.level as usize == level && r.digit == digit)
            .map(|r| r.entry)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the snapshot has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TableSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot of {} ({} rows)", self.owner, self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> IdSpace {
        IdSpace::new(4, 5).unwrap()
    }

    fn id(s: &str) -> NodeId {
        space().parse_id(s).unwrap()
    }

    #[test]
    fn fits_enforces_desired_suffix() {
        let t = NeighborTable::new(space(), id("21233"));
        // Entry (2, 0): desired suffix 0 ∘ "33" = "033".
        assert!(t.fits(2, 0, &id("31033")));
        assert!(!t.fits(2, 0, &id("31133")));
        assert!(!t.fits(2, 0, &id("31030")));
        assert_eq!(t.desired_suffix(2, 0).to_string(), "033");
        // Level 0 entries only constrain the last digit.
        assert!(t.fits(0, 1, &id("33121")));
        assert!(!t.fits(0, 1, &id("33123")));
    }

    #[test]
    fn self_entries_cover_all_levels() {
        let me = id("21233");
        let mut t = NeighborTable::new(space(), me);
        t.set_self_entries(NodeState::T);
        for i in 0..5 {
            let e = t.get(i, me.digit(i)).unwrap();
            assert_eq!(e.node, me);
            assert_eq!(e.state, NodeState::T);
        }
        assert_eq!(t.filled(), 5);
    }

    #[test]
    fn set_state_if_only_matches_same_node() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set(
            2,
            0,
            Entry {
                node: id("31033"),
                state: NodeState::T,
            },
        );
        assert!(!t.set_state_if(2, 0, &id("21033"), NodeState::S));
        assert_eq!(t.get(2, 0).unwrap().state, NodeState::T);
        assert!(t.set_state_if(2, 0, &id("31033"), NodeState::S));
        assert_eq!(t.get(2, 0).unwrap().state, NodeState::S);
    }

    #[test]
    fn snapshot_reflects_entries_and_is_shared() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.owner(), id("21233"));
        assert_eq!(snap.get(0, 3).unwrap().node, id("21233"));
        assert!(snap.get(0, 0).is_none());
        let c = snap.clone();
        assert_eq!(c.rows().as_ptr(), snap.rows().as_ptr());
    }

    #[test]
    fn snapshot_is_memoized_until_mutation() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        let a = t.snapshot();
        let b = t.snapshot();
        // Same shared allocation until the table changes…
        assert_eq!(a.rows().as_ptr(), b.rows().as_ptr());
        t.set(
            0,
            1,
            Entry {
                node: id("33121"),
                state: NodeState::T,
            },
        );
        // …and a fresh one after any mutation.
        let c = t.snapshot();
        assert_ne!(a.rows().as_ptr(), c.rows().as_ptr());
        assert_eq!(c.len(), 6);
        assert_eq!(a.len(), 5);
        // A recorded-state change invalidates too.
        assert!(t.set_state_if(0, 1, &id("33121"), NodeState::S));
        assert_eq!(t.snapshot().get(0, 1).unwrap().state, NodeState::S);
        // Cloned tables keep working (and share the memo at clone time).
        let u = t.clone();
        assert_eq!(u.snapshot().rows().as_ptr(), t.snapshot().rows().as_ptr());
    }

    #[test]
    fn snapshot_levels_restricts_range() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        let snap = t.snapshot_levels(2, 4);
        assert_eq!(snap.len(), 2);
        assert!(snap
            .rows()
            .iter()
            .all(|r| (2..4).contains(&(r.level as usize))));
    }

    #[test]
    fn bitvec_snapshot_hides_filled_low_levels() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        // Receiver claims everything filled: low levels drop out, levels
        // >= noti_level stay.
        let all_ones = vec![u64::MAX; 4];
        let snap = t.snapshot_bitvec(3, &all_ones);
        assert_eq!(snap.len(), 2); // levels 3 and 4 self entries
                                   // Receiver claims nothing filled: everything included.
        let zeros = vec![0u64; 4];
        let snap = t.snapshot_bitvec(3, &zeros);
        assert_eq!(snap.len(), 5);
    }

    #[test]
    fn filled_bitvec_matches_entries() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set(
            0,
            1,
            Entry {
                node: id("33121"),
                state: NodeState::S,
            },
        );
        let bits = t.filled_bitvec();
        let slot = 1; // level 0, digit 1
        assert_ne!(bits[slot / 64] & (1 << (slot % 64)), 0);
        assert_eq!(bits.iter().map(|w| w.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn reverse_neighbor_bookkeeping() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.add_reverse(1, 3, id("31033"));
        t.add_reverse(1, 3, id("31033")); // dedup
        t.add_reverse(0, 3, id("13113"));
        assert_eq!(t.reverse_of(1, 3).count(), 1);
        let all = t.reverse_neighbors();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&id("31033")));
        assert_eq!(t.remove_reverse(&id("31033")), 1);
        assert_eq!(t.remove_reverse(&id("31033")), 0);
        assert_eq!(t.reverse_of(1, 3).count(), 0);
    }

    #[test]
    fn reverse_of_iterates_in_ascending_id_order() {
        let mut t = NeighborTable::new(space(), id("21233"));
        // Insert out of numeric order; iteration must come back sorted
        // (the golden digests hash reverse neighbors in this order).
        for s in ["31033", "01033", "21033", "11033"] {
            t.add_reverse(2, 0, id(s));
        }
        let got: Vec<NodeId> = t.reverse_of(2, 0).collect();
        let mut want = got.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], id("01033"));
        assert_eq!(got[3], id("31033"));
    }

    #[test]
    fn interning_dedups_repeated_ids() {
        let me = id("21233");
        let mut t = NeighborTable::new(space(), me);
        // b=4, d=5 → nibble packed, stride = 3 bytes; the owner is interned
        // at construction.
        assert_eq!(t.arena.bytes.len(), 3);
        t.set_self_entries(NodeState::S);
        // Five self entries, one interned id.
        assert_eq!(t.arena.bytes.len(), 3);
        t.set(
            2,
            0,
            Entry {
                node: id("31033"),
                state: NodeState::T,
            },
        );
        t.add_reverse(2, 0, id("31033"));
        assert_eq!(t.arena.bytes.len(), 6);
    }

    #[test]
    fn byte_packed_base_over_16_roundtrips() {
        let wide = IdSpace::new(32, 3).unwrap();
        let me = wide.parse_id("v0a").unwrap();
        let mut t = NeighborTable::new(wide, me);
        t.set_self_entries(NodeState::S);
        for i in 0..3 {
            assert_eq!(t.get(i, me.digit(i)).unwrap().node, me);
        }
        // Entry (1, 5): desired suffix 5 ∘ "a".
        let y = wide.parse_id("75a").unwrap();
        t.set(
            1,
            5,
            Entry {
                node: y,
                state: NodeState::T,
            },
        );
        assert_eq!(t.get(1, 5).unwrap().node, y);
        t.add_reverse(1, 5, y);
        let z = wide.parse_id("05a").unwrap();
        t.add_reverse(1, 5, z);
        assert_eq!(t.reverse_of(1, 5).collect::<Vec<_>>(), vec![z, y]);
    }

    #[test]
    fn render_contains_owner_and_neighbors() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        let s = t.render();
        assert!(s.contains("21233"));
        assert!(s.contains("b=4, d=5"));
    }

    #[test]
    fn version_changes_on_entry_mutation_only() {
        let mut t = NeighborTable::new(space(), id("21233"));
        let v0 = t.version();
        let c = t.clone();
        assert_eq!(c.version(), v0, "clone shares the version");
        t.set_self_entries(NodeState::S);
        let v1 = t.version();
        assert_ne!(v1, v0);
        assert_eq!(c.version(), v0, "clone unaffected by the original");
        // Reverse edits are invisible to Definition 3.8: no refresh.
        t.add_reverse(1, 3, id("31033"));
        assert_eq!(t.version(), v1);
        t.clear(0, 3);
        assert_ne!(t.version(), v1);
        let v2 = t.version();
        // A no-op set_state_if does not refresh; a real change does.
        assert!(!t.set_state_if(1, 3, &id("21033"), NodeState::T));
        assert_eq!(t.version(), v2);
        assert!(t.set_state_if(1, 3, &id("21233"), NodeState::T));
        assert_ne!(t.version(), v2);
    }

    #[test]
    fn stores_matches_entry_scan() {
        let mut t = NeighborTable::new(space(), id("21233"));
        t.set_self_entries(NodeState::S);
        assert!(t.stores(&id("21233")));
        let y = id("31033");
        assert!(!t.stores(&y));
        // Interned via a reverse set but not stored in any entry.
        t.add_reverse(2, 0, y);
        assert!(!t.stores(&y));
        t.set(
            2,
            0,
            Entry {
                node: y,
                state: NodeState::S,
            },
        );
        assert!(t.stores(&y));
        t.clear(2, 0);
        assert!(!t.stores(&y));
    }

    #[test]
    #[should_panic(expected = "owner id not in space")]
    fn rejects_owner_from_other_space() {
        let other = IdSpace::new(8, 3).unwrap();
        let id8 = other.parse_id("777").unwrap();
        NeighborTable::new(space(), id8);
    }
}
