//! Dirty-set incremental Definition-3.8 checking for churn loops.
//!
//! A churn wave touches a small fraction of the network, but
//! [`check_consistency_streaming`](crate::check_consistency_streaming)
//! re-verifies every entry of every table each time it runs. The
//! [`IncrementalChecker`] caches per-table results between calls and
//! re-verifies only the tables whose result *could* have changed:
//!
//! 1. **own mutation** — the table's [version](crate::NeighborTable::version)
//!    advanced since it was last checked (the version clock draws a fresh
//!    process-unique value on every entry mutation, so equal versions
//!    guarantee identical entries);
//! 2. **witness delta** — for every node `y` that joined or departed, each
//!    suffix `y[k-1..0]` whose canonical witness changed invalidates the
//!    tables of all carriers of `y[k-2..0]` (exactly the owners with an
//!    entry whose desired suffix is `y[k-1..0]`);
//! 3. **membership reference** — tables [storing](crate::NeighborTable::stores)
//!    a joined/departed node, whose `UnknownNeighbor` verdict may flip.
//!
//! Everything else keeps its cached violation list. The union is a sound
//! over-approximation — a table outside it has identical entries and sees
//! identical witness/membership answers for all of its `d · b` desired
//! suffixes, so re-checking it would reproduce the cached result — and
//! [`with_full_every`](IncrementalChecker::with_full_every) schedules a
//! periodic full pass as a belt-and-braces cross-check. Reports are
//! bit-identical to a from-scratch streaming check (the equivalence is
//! pinned by the `streaming` integration tests across crash/repair waves).

use std::collections::{HashMap, HashSet};

use hyperring_id::IdSpace;
use rayon::prelude::*;

use crate::consistency::{check_table_compact, ConsistencyReport, Violation};
use crate::suffix_compact::CompactSuffixIndex;
use crate::table::NeighborTable;

/// Incrementally re-verifies Definition 3.8 across check calls, caching
/// per-table results and re-checking only the dirty set.
///
/// Feed every call the *complete* current table set (typically
/// [`SimNetwork::tables_iter`](crate::SimNetwork::tables_iter)); the
/// checker diffs membership itself — joins and departures are inferred
/// from the owner set, no explicit notifications needed.
///
/// # Examples
///
/// ```
/// use hyperring_core::{build_consistent_tables, IncrementalChecker};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 3)?;
/// let ids: Vec<_> = ["012", "230", "111", "321"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let mut checker = IncrementalChecker::new(space);
/// let tables = build_consistent_tables(space, &ids);
/// assert!(checker.check(tables.iter()).is_consistent());
/// // Nothing changed: the second call re-verifies zero tables.
/// assert!(checker.check(tables.iter()).is_consistent());
/// assert_eq!(checker.last_reverified(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct IncrementalChecker {
    space: IdSpace,
    /// Live membership, kept in sync with the owners of the checked tables.
    index: CompactSuffixIndex,
    /// Sealed snapshot of `index` at the end of the previous check; the
    /// "before" side of the witness-delta comparison. `None` until the
    /// first check (which is always a full pass).
    prev: Option<CompactSuffixIndex>,
    /// Table version (arena id → version clock value) at last verification.
    last_version: HashMap<u32, u64>,
    /// Cached violations per table (arena id); absent means "clean".
    cached: HashMap<u32, Vec<Violation>>,
    checks: u64,
    full_every: u64,
    last_reverified: usize,
}

impl IncrementalChecker {
    /// Creates a checker with no periodic full pass (purely incremental
    /// after the first call).
    pub fn new(space: IdSpace) -> Self {
        IncrementalChecker {
            space,
            index: CompactSuffixIndex::new(space),
            prev: None,
            last_version: HashMap::new(),
            cached: HashMap::new(),
            checks: 0,
            full_every: 0,
            last_reverified: 0,
        }
    }

    /// Schedules a full (non-incremental) pass every `k`-th call to
    /// [`check`](Self::check) as a cross-check of the dirty-set logic;
    /// `k = 0` disables the periodic pass.
    pub fn with_full_every(mut self, k: u64) -> Self {
        self.full_every = k;
        self
    }

    /// Number of tables actually re-verified by the most recent
    /// [`check`](Self::check) (the dirty-set size; equals the node count
    /// on a full pass).
    pub fn last_reverified(&self) -> usize {
        self.last_reverified
    }

    /// The membership index the checker maintains (live owners of the last
    /// checked table set).
    pub fn index(&self) -> &CompactSuffixIndex {
        &self.index
    }

    /// Checks the current table set, re-verifying only tables whose result
    /// could have changed since the previous call. The report is identical
    /// to [`check_consistency_streaming`](crate::check_consistency_streaming)
    /// over the same tables.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty or contains duplicate owners.
    pub fn check<'a, I>(&mut self, tables: I) -> ConsistencyReport
    where
        I: IntoIterator<Item = &'a NeighborTable>,
    {
        let force_full = self.prev.is_none()
            || (self.full_every > 0 && self.checks.is_multiple_of(self.full_every));
        self.check_inner(tables, force_full)
    }

    /// [`check`](Self::check), but unconditionally re-verifies every table
    /// (still updating the cache, so subsequent incremental calls resume
    /// from a known-good baseline).
    pub fn check_full<'a, I>(&mut self, tables: I) -> ConsistencyReport
    where
        I: IntoIterator<Item = &'a NeighborTable>,
    {
        self.check_inner(tables, true)
    }

    fn check_inner<'a, I>(&mut self, tables: I, force_full: bool) -> ConsistencyReport
    where
        I: IntoIterator<Item = &'a NeighborTable>,
    {
        let refs: Vec<&NeighborTable> = tables.into_iter().collect();
        assert!(!refs.is_empty(), "no tables to check");
        let d = self.space.digit_count();

        // Membership sync: joins are owners the index lacks, departures
        // are index members no table owns any more. Both invalidate the
        // witnesses of every suffix the changed id carries.
        let mut changed: Vec<hyperring_id::NodeId> = Vec::new();
        let mut current: HashSet<u32> = HashSet::with_capacity(refs.len());
        for t in &refs {
            let owner = t.owner();
            if self.index.insert(owner) {
                changed.push(owner);
            }
            current.insert(self.index.index_of(&owner).expect("just ensured live"));
        }
        let departed: Vec<u32> = self
            .index
            .order()
            .iter()
            .copied()
            .filter(|idx| !current.contains(idx))
            .collect();
        for idx in departed {
            let id = self.index.resolve(idx);
            self.index.remove(&id);
            self.last_version.remove(&idx);
            self.cached.remove(&idx);
            changed.push(id);
        }
        assert_eq!(self.index.len(), refs.len(), "duplicate table owners");
        self.index.seal();

        // Dirty set: arena ids of tables to re-verify.
        let dirty: HashSet<u32> = if force_full {
            current.iter().copied().collect()
        } else {
            let prev = self.prev.as_ref().expect("incremental pass has a baseline");
            let mut dirty = HashSet::new();
            // 1. Own mutation, detected by the version clock.
            for t in &refs {
                let idx = self.index.index_of(&t.owner()).expect("live owner");
                if self.last_version.get(&idx) != Some(&t.version()) {
                    dirty.insert(idx);
                }
            }
            for y in &changed {
                let yd = y.digits_lsd();
                for k in 1..=d {
                    // 2. Witness delta at suffix length k invalidates the
                    // carriers of the length-(k-1) parent suffix: exactly
                    // the owners holding an entry desiring y[k-1..0].
                    let before = prev.witness_idx(&yd[..k]).map(|i| prev.resolve(i));
                    let after = self
                        .index
                        .witness_idx(&yd[..k])
                        .map(|i| self.index.resolve(i));
                    if before != after {
                        for pos in self.index.suffix_range(&yd[..k - 1]) {
                            dirty.insert(self.index.order()[pos]);
                        }
                    }
                }
            }
            // 3. Tables referencing a joined/departed node: their
            // UnknownNeighbor verdict may flip without a witness moving.
            if !changed.is_empty() {
                for t in &refs {
                    let idx = self.index.index_of(&t.owner()).expect("live owner");
                    if !dirty.contains(&idx) && changed.iter().any(|y| t.stores(y)) {
                        dirty.insert(idx);
                    }
                }
            }
            dirty
        };

        // Re-verify the dirty tables in parallel (contiguous chunks keep
        // the per-table results in input order; the cache is keyed by
        // arena id so order within the dirty set does not matter).
        let todo: Vec<(u32, &NeighborTable)> = refs
            .iter()
            .filter_map(|t| {
                let idx = self.index.index_of(&t.owner()).expect("live owner");
                dirty.contains(&idx).then_some((idx, *t))
            })
            .collect();
        let index = &self.index;
        let space = self.space;
        let fresh: Vec<(u32, u64, Vec<Violation>)> = todo
            .par_iter()
            .map(|&(idx, t)| {
                (
                    idx,
                    t.version(),
                    check_table_compact(space, t, index, |_, _, _| {}),
                )
            })
            .collect();
        for (idx, version, violations) in fresh {
            self.last_version.insert(idx, version);
            if violations.is_empty() {
                self.cached.remove(&idx);
            } else {
                self.cached.insert(idx, violations);
            }
        }

        // Assemble in current table order, mixing cached and fresh results.
        let mut violations = Vec::new();
        for t in &refs {
            let idx = self.index.index_of(&t.owner()).expect("live owner");
            if let Some(v) = self.cached.get(&idx) {
                violations.extend(v.iter().cloned());
            }
        }
        self.last_reverified = todo.len();
        self.checks += 1;
        self.prev = Some(self.index.clone());
        ConsistencyReport::assemble(
            violations,
            refs.len(),
            refs.len() * d * self.space.base() as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency_streaming;
    use crate::oracle::build_consistent_tables;
    use crate::table::{Entry, NodeState};
    use hyperring_id::NodeId;

    fn ids(space: IdSpace, ss: &[&str]) -> Vec<NodeId> {
        ss.iter().map(|s| space.parse_id(s).unwrap()).collect()
    }

    #[test]
    fn unchanged_tables_reverify_nothing() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, &["0123", "3210", "1111", "2222", "0001", "1001"]);
        let tables = build_consistent_tables(space, &v);
        let mut checker = IncrementalChecker::new(space);
        assert!(checker.check(tables.iter()).is_consistent());
        assert_eq!(
            checker.last_reverified(),
            tables.len(),
            "first pass is full"
        );
        assert!(checker.check(tables.iter()).is_consistent());
        assert_eq!(checker.last_reverified(), 0);
    }

    #[test]
    fn mutation_is_recheck_detected_and_repair_clears_it() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "111"]);
        let mut tables = build_consistent_tables(space, &v);
        let mut checker = IncrementalChecker::new(space);
        assert!(checker.check(tables.iter()).is_consistent());

        let removed = tables[0].get(0, 1).unwrap();
        tables[0].clear(0, 1);
        let report = checker.check(tables.iter());
        assert!(!report.is_consistent());
        let fresh = check_consistency_streaming(space, tables.iter());
        assert_eq!(report.violations(), fresh.violations());
        assert_eq!(checker.last_reverified(), 1, "only the mutated table");

        tables[0].set(0, 1, removed);
        assert!(checker.check(tables.iter()).is_consistent());
    }

    #[test]
    fn departure_dirties_witness_carriers_and_storers() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, &["0123", "3210", "1111", "2222", "0001", "1001"]);
        let tables = build_consistent_tables(space, &v);
        let mut checker = IncrementalChecker::new(space);
        assert!(checker.check(tables.iter()).is_consistent());

        // 1001 vanishes without anyone cleaning up: survivors still store
        // it (UnknownNeighbor) and its suffix classes lost a witness.
        let survivors: Vec<NeighborTable> = tables
            .iter()
            .filter(|t| t.owner() != v[5])
            .cloned()
            .collect();
        let report = checker.check(survivors.iter());
        let fresh = check_consistency_streaming(space, survivors.iter());
        assert_eq!(report.violations(), fresh.violations());
        assert!(!report.is_consistent(), "dangling references must surface");

        // Rebuilt tables over the survivors come back clean.
        let rebuilt = build_consistent_tables(
            space,
            &survivors.iter().map(|t| t.owner()).collect::<Vec<_>>(),
        );
        let report = checker.check(rebuilt.iter());
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    fn join_is_detected_without_notification() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "111"]);
        let tables = build_consistent_tables(space, &v);
        let mut checker = IncrementalChecker::new(space);
        assert!(checker.check(tables.iter()).is_consistent());

        // 321 joins; the old tables now have false negatives toward it.
        let mut grown = v.clone();
        grown.push(space.parse_id("321").unwrap());
        let new_tables = build_consistent_tables(space, &grown);
        let report = checker.check(new_tables.iter());
        assert!(report.is_consistent(), "{report}");

        // A joiner nobody integrated: stale old tables plus a fresh table.
        let joiner = space.parse_id("133").unwrap();
        let mut lonely = NeighborTable::new(space, joiner);
        lonely.set_self_entries(NodeState::S);
        let mut mixed: Vec<NeighborTable> = tables.clone();
        mixed.push(lonely);
        let report = checker.check(mixed.iter());
        let fresh = check_consistency_streaming(space, mixed.iter());
        assert_eq!(report.violations(), fresh.violations());
        assert!(!report.is_consistent());
    }

    #[test]
    fn periodic_full_pass_runs_on_schedule() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "111"]);
        let tables = build_consistent_tables(space, &v);
        let mut checker = IncrementalChecker::new(space).with_full_every(2);
        checker.check(tables.iter()); // call 0: first pass, full
        checker.check(tables.iter()); // call 1: incremental
        assert_eq!(checker.last_reverified(), 0);
        checker.check(tables.iter()); // call 2: scheduled full pass
        assert_eq!(checker.last_reverified(), tables.len());
    }

    #[test]
    fn corrupt_entry_matches_streaming_verdict() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "111"]);
        let mut tables = build_consistent_tables(space, &v);
        let mut checker = IncrementalChecker::new(space);
        checker.check(tables.iter());
        // Stale-T plus an unknown neighbor in one wave.
        let other = space.parse_id("230").unwrap();
        tables[0].set(
            0,
            0,
            Entry {
                node: other,
                state: NodeState::T,
            },
        );
        // Fits (1,1) of owner 230 (desired suffix "10") but is no member.
        let dead = space.parse_id("310").unwrap();
        tables[1].set(
            1,
            1,
            Entry {
                node: dead,
                state: NodeState::S,
            },
        );
        let report = checker.check(tables.iter());
        let fresh = check_consistency_streaming(space, tables.iter());
        assert_eq!(report.violations(), fresh.violations());
        assert_eq!(report.violations().len(), 2);
    }
}
