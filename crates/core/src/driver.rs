//! The shared runtime driver: one code path from runtime inputs to engine
//! effects, used identically by every runtime.
//!
//! Before this module each runtime (the zero-copy simulator nodes, the
//! threaded channel network, the socket runtime) carried its own copy of
//! the input-matching + effect-draining glue around
//! [`dispatch_effects`](crate::dispatch_effects). Those copies are now one:
//! a runtime wraps each engine in an [`EngineDriver`], implements
//! [`RuntimeDriver`] (that is, [`EffectHandler`] plus a clock) for its
//! transport, and feeds [`NodeInput`]s through
//! [`EngineDriver::drive`]. Since the drive path is shared, engine behavior
//! is provably identical across simulated and socket transports — the same
//! inputs in the same order produce the same effect stream and the same
//! [`DigestTrace`](crate::DigestTrace), which the lossless-socket parity
//! test pins.

use hyperring_id::NodeId;

use crate::dispatch::{dispatch_effects, EffectHandler};
use crate::effect::{Effects, Event, TimerId};
use crate::engine::{JoinEngine, Status};
use crate::messages::Message;
use crate::trace::TraceStream;

/// One input a runtime feeds a node: a protocol delivery, a timer expiry,
/// or a control action (start a join, leave, arm the failure detector).
#[derive(Debug, Clone)]
pub enum NodeInput {
    /// A protocol message arrived from `from`.
    Deliver {
        /// The overlay sender.
        from: NodeId,
        /// The message.
        msg: Message,
    },
    /// A previously armed timer fired.
    TimerFired(TimerId),
    /// Begin joining through `gateway`.
    StartJoin {
        /// The join gateway.
        gateway: NodeId,
    },
    /// Begin a graceful leave (extension).
    BeginLeave,
    /// Arm the failure detector's probe tick (a no-op unless a detector is
    /// configured). Runtimes send this to initial members, which never pass
    /// through the joiner's S-node switch.
    StartFailureDetector,
}

/// What one [`EngineDriver::drive`] call observed, for the runtime's
/// bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepReport {
    /// The node crossed into `in_system` during this step (exactly once
    /// per joiner lifetime) — runtimes use this for quiescence counting.
    pub entered_system: bool,
}

/// A runtime hosting engines behind the shared driver.
///
/// Implementations are the runtime's [`EffectHandler`] (the transport and
/// timer adapter) plus a clock; the driver dispatches every effect into
/// the handler and stamps trace records with [`now_us`](Self::now_us). No
/// runtime re-implements the effect-draining glue.
pub trait RuntimeDriver: EffectHandler {
    /// The runtime clock in microseconds (virtual or wall, per runtime).
    fn now_us(&self) -> u64;
}

/// One protocol engine plus its effect buffer and in-system bookkeeping —
/// the per-node state every runtime carries, drained exclusively through
/// [`drive`](Self::drive).
#[derive(Debug)]
pub struct EngineDriver {
    engine: JoinEngine,
    effects: Effects,
    was_in_system: bool,
}

impl EngineDriver {
    /// Wraps `engine` (member or joiner).
    pub fn new(engine: JoinEngine) -> Self {
        let was_in_system = engine.is_in_system();
        EngineDriver {
            engine,
            effects: Effects::new(),
            was_in_system,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &JoinEngine {
        &self.engine
    }

    /// Consumes the driver, returning the engine (for table hand-off at
    /// the end of a run).
    pub fn into_engine(self) -> JoinEngine {
        self.engine
    }

    /// Crash-fails the node in place: no goodbye traffic, no effects. The
    /// runtime stops delivering to it afterwards.
    pub fn crash(&mut self) {
        self.engine.crash();
    }

    /// Applies one input and drains the resulting effects into `rt` (trace
    /// effects into `trace`, stamped with `rt.now_us()`). This is the one
    /// shared dispatch path of every runtime.
    pub fn drive<R: RuntimeDriver + ?Sized>(
        &mut self,
        input: NodeInput,
        rt: &mut R,
        trace: Option<&mut TraceStream>,
    ) -> StepReport {
        match input {
            NodeInput::Deliver { from, msg } => self.engine.handle(from, msg, &mut self.effects),
            NodeInput::TimerFired(id) => self
                .engine
                .on_event(Event::TimerFired { id }, &mut self.effects),
            NodeInput::StartJoin { gateway } => self.engine.start_join(gateway, &mut self.effects),
            NodeInput::BeginLeave => self.engine.begin_leave(&mut self.effects),
            NodeInput::StartFailureDetector => {
                self.engine.start_failure_detector(&mut self.effects)
            }
        }
        if !self.effects.is_empty() {
            let me = self.engine.id();
            dispatch_effects(me, rt.now_us(), &mut self.effects, rt, trace);
        }
        let entered_system = !self.was_in_system && self.engine.status() == Status::InSystem;
        if entered_system {
            self.was_in_system = true;
        }
        StepReport { entered_system }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ProtocolOptions;
    use crate::oracle::build_consistent_tables;
    use hyperring_id::IdSpace;

    #[derive(Default)]
    struct Recorder {
        now: u64,
        sends: Vec<(NodeId, Message)>,
        timers: Vec<TimerId>,
    }

    impl EffectHandler for Recorder {
        fn send(&mut self, to: NodeId, msg: Message) {
            self.sends.push((to, msg));
        }
        fn set_timer(&mut self, id: TimerId, _delay_hint: u64) {
            self.timers.push(id);
        }
        fn cancel_timer(&mut self, _id: TimerId) {}
    }

    impl RuntimeDriver for Recorder {
        fn now_us(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn start_join_emits_the_first_copy_request() {
        let space = IdSpace::new(4, 3).unwrap();
        let gw = space.parse_id("001").unwrap();
        let joiner = space.parse_id("310").unwrap();
        let mut node = EngineDriver::new(JoinEngine::new_joiner(
            space,
            ProtocolOptions::new(),
            joiner,
        ));
        assert_eq!(node.engine().status(), Status::Copying);
        let mut rt = Recorder::default();
        let report = node.drive(NodeInput::StartJoin { gateway: gw }, &mut rt, None);
        assert!(!report.entered_system);
        assert_eq!(rt.sends.len(), 1, "one CpRstMsg to the gateway");
        assert_eq!(rt.sends[0].0, gw);
    }

    #[test]
    fn members_never_report_entering_the_system() {
        let space = IdSpace::new(4, 3).unwrap();
        let ids = [
            space.parse_id("001").unwrap(),
            space.parse_id("310").unwrap(),
        ];
        let tables = build_consistent_tables(space, &ids);
        for t in tables {
            let mut node =
                EngineDriver::new(JoinEngine::new_member(space, ProtocolOptions::new(), t));
            let mut rt = Recorder::default();
            let report = node.drive(NodeInput::StartFailureDetector, &mut rt, None);
            assert!(!report.entered_system, "members start in_system");
        }
    }
}
