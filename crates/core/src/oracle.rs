//! Direct (omniscient) construction of consistent neighbor tables.
//!
//! Experiments need an initial consistent network `V` — in the paper, `V`
//! exists before the evaluation begins (3096 or 7192 nodes). Rather than
//! paying a full bootstrap for every run, this module constructs the tables
//! directly from global knowledge, exactly satisfying Definition 3.8; the
//! consistency checker validates the result in tests. (Bootstrapping through
//! the join protocol itself is also supported — see `SimNetwork` — and is
//! how §6.1 network initialization is exercised.)

use std::collections::HashMap;

use hyperring_id::{IdSpace, NodeId, Suffix};

use crate::table::{Entry, NeighborTable, NodeState};

/// Builds a consistent table (per Definition 3.8, all states `S`) for every
/// node in `ids`.
///
/// Entry `(i, j)` of node `x` is filled with the smallest node carrying the
/// desired suffix (the choice is arbitrary for consistency; smallest makes
/// runs deterministic), or left empty when no such node exists.
///
/// # Examples
///
/// ```
/// use hyperring_core::build_consistent_tables;
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(8, 5)?;
/// let v: Vec<_> = ["72430", "10353", "62332", "13141", "31701"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let tables = build_consistent_tables(space, &v);
/// // 13141's (1, 0)-entry wants suffix "01": 31701 is the only candidate.
/// let t = tables.iter().find(|t| t.owner() == v[3]).unwrap();
/// assert_eq!(t.get(1, 0).unwrap().node.to_string(), "31701");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `ids` is empty, contains duplicates, or contains an identifier
/// outside `space`.
pub fn build_consistent_tables(space: IdSpace, ids: &[NodeId]) -> Vec<NeighborTable> {
    assert!(!ids.is_empty(), "cannot build an empty network");
    for id in ids {
        assert!(space.contains(id), "id {id} not in space");
    }

    // Bucket representatives by (parent suffix, extending digit): the row
    // stored under a length-`i` suffix `s` holds, at position `j`, the
    // smallest node whose suffix is `j ∘ s`. Filling node `x`'s level-`i`
    // entries then needs ONE hash lookup (of `x.suffix(i)`) for the whole
    // `b`-wide row, instead of `b` lookups of `b` freshly built length-
    // `(i+1)` suffix keys — `b×` less hashing over the n·d·b fill loop.
    let b = space.base() as usize;
    let mut repr: HashMap<Suffix, Vec<Option<NodeId>>> = HashMap::new();
    for &id in ids {
        for k in 0..space.digit_count() {
            let row = repr.entry(id.suffix(k)).or_insert_with(|| vec![None; b]);
            match &mut row[id.digit(k) as usize] {
                Some(cur) => {
                    if id < *cur {
                        *cur = id;
                    }
                }
                slot => *slot = Some(id),
            }
        }
    }
    // Duplicate detection: two equal ids collapse in the suffix map, so
    // check explicitly.
    {
        let mut sorted: Vec<&NodeId> = ids.iter().collect();
        sorted.sort();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate node identifier"
        );
    }

    let mut tables: Vec<NeighborTable> = ids
        .iter()
        .map(|&x| {
            let mut t = NeighborTable::new(space, x);
            for i in 0..space.digit_count() {
                let row = repr.get(&x.suffix(i));
                for j in 0..space.base() as u8 {
                    let node = if x.digit(i) == j {
                        // The primary (i, x[i])-neighbor of x is x itself.
                        Some(x)
                    } else {
                        row.and_then(|r| r[j as usize])
                    };
                    if let Some(node) = node {
                        t.set(
                            i,
                            j,
                            Entry {
                                node,
                                state: NodeState::S,
                            },
                        );
                    }
                }
            }
            t
        })
        .collect();

    // Second pass: register reverse neighbors, as the protocol's
    // RvNghNotiMsg bookkeeping would have. `y` records `x` as a reverse
    // neighbor at `(k, y[k])`, `k = |csuf(x, y)|`, whenever `x` stores `y`.
    // The id → table-index map is a sorted vec probed by binary search:
    // hashing a 65-byte `NodeId` per neighbor lost to Θ(log n) digit
    // compares over this n·d·b-lookup loop at bootstrap scale.
    let mut index: Vec<(NodeId, usize)> = ids.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    index.sort_unstable_by_key(|p| p.0);
    let mut neighbors: Vec<NodeId> = Vec::new();
    for xi in 0..tables.len() {
        let x = tables[xi].owner();
        neighbors.clear();
        neighbors.extend(
            tables[xi]
                .iter()
                .map(|(_, _, e)| e.node)
                .filter(|&y| y != x),
        );
        for &y in &neighbors {
            let k = x.csuf_len(&y);
            let yi = index[index
                .binary_search_by(|p| p.0.cmp(&y))
                .expect("every neighbor is a member")]
            .1;
            tables[yi].add_reverse(k, y.digit(k), x);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_tables_pass_the_checker() {
        let space = IdSpace::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        // HashSet-guarded draw (same accepted sequence as the old O(n²)
        // `Vec::contains` scan, without the quadratic rescans).
        let mut seen = std::collections::HashSet::new();
        let mut ids: Vec<NodeId> = Vec::new();
        while ids.len() < 60 {
            let id = space.random_id(&mut rng);
            if seen.insert(id) {
                ids.push(id);
            }
        }
        let tables = build_consistent_tables(space, &ids);
        let report = check_consistency(space, &tables);
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    fn oracle_handles_single_node() {
        let space = IdSpace::new(16, 8).unwrap();
        let id = space.parse_id("0012abcd").unwrap();
        let tables = build_consistent_tables(space, &[id]);
        assert_eq!(tables.len(), 1);
        let report = check_consistency(space, &tables);
        assert!(report.is_consistent(), "{report}");
        // Only self entries are filled.
        assert_eq!(tables[0].filled(), 8);
    }

    #[test]
    fn entries_hold_desired_suffixes() {
        let space = IdSpace::new(8, 5).unwrap();
        let ids: Vec<NodeId> = ["72430", "10353", "62332", "13141", "31701"]
            .iter()
            .map(|s| space.parse_id(s).unwrap())
            .collect();
        let tables = build_consistent_tables(space, &ids);
        for t in &tables {
            for (i, j, e) in t.iter() {
                assert!(
                    t.fits(i, j, &e.node),
                    "{}: ({i},{j}) = {}",
                    t.owner(),
                    e.node
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate node identifier")]
    fn duplicates_rejected() {
        let space = IdSpace::new(4, 3).unwrap();
        let id = space.parse_id("012").unwrap();
        build_consistent_tables(space, &[id, id]);
    }

    #[test]
    #[should_panic(expected = "cannot build an empty network")]
    fn empty_rejected() {
        let space = IdSpace::new(4, 3).unwrap();
        build_consistent_tables(space, &[]);
    }
}
