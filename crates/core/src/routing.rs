//! The hypercube (suffix) routing scheme of §2.2.

use hyperring_id::NodeId;

use crate::table::NeighborTable;

/// Outcome of routing a message toward `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The target was reached; `path` lists every node visited, starting
    /// with the source and ending with the target.
    Delivered {
        /// Nodes visited, source first.
        path: Vec<NodeId>,
    },
    /// Some node on the way had an empty entry for the next hop — with
    /// consistent tables this means the target does not exist (§3.1's
    /// false-positive freedom), with inconsistent tables it may be a lost
    /// message.
    Dropped {
        /// Nodes visited before the drop.
        path: Vec<NodeId>,
        /// Level of the missing entry.
        level: usize,
        /// Digit of the missing entry.
        digit: u8,
    },
}

impl RouteOutcome {
    /// Whether the message reached the target.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RouteOutcome::Delivered { .. })
    }

    /// Number of overlay hops taken (path length minus one).
    pub fn hops(&self) -> usize {
        match self {
            RouteOutcome::Delivered { path } | RouteOutcome::Dropped { path, .. } => {
                path.len().saturating_sub(1)
            }
        }
    }
}

/// The next hop from `table`'s owner toward `target` (§2.2): the primary
/// neighbor at level `k = |csuf(owner, target)|` whose digit matches
/// `target[k]`. Returns `None` for the owner itself or when the entry is
/// empty.
pub fn next_hop(table: &NeighborTable, target: &NodeId) -> Option<NodeId> {
    let owner = table.owner();
    if owner == *target {
        return None;
    }
    let k = owner.csuf_len(target);
    table.get(k, target.digit(k)).map(|e| e.node)
}

/// Routes from `source` to `target` by following primary neighbors,
/// resolving each node's table through `lookup`.
///
/// Since the primary `(i, x[i])`-neighbor of `x` is `x` itself, routing
/// starts at level `|csuf(source, target)|` and needs at most `d` hops
/// (Definition 3.7).
///
/// # Examples
///
/// ```
/// use hyperring_core::{build_consistent_tables, route};
/// use hyperring_id::IdSpace;
/// use std::collections::HashMap;
///
/// let space = IdSpace::new(4, 3)?;
/// let ids: Vec<_> = ["012", "230", "111"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let tables: HashMap<_, _> = build_consistent_tables(space, &ids)
///     .into_iter().map(|t| (t.owner(), t)).collect();
/// let out = route(ids[0], ids[2], |id| tables.get(id));
/// assert!(out.is_delivered());
/// assert!(out.hops() <= 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `lookup` returns `None` for a node that another table points
/// at (the caller promised a closed set of tables), or if the path exceeds
/// `d + 1` hops, which consistent tables make impossible.
pub fn route<'a, F>(source: NodeId, target: NodeId, mut lookup: F) -> RouteOutcome
where
    F: FnMut(&NodeId) -> Option<&'a NeighborTable>,
{
    let mut path = vec![source];
    let mut at = source;
    let d = lookup(&source)
        .expect("source table must exist")
        .space()
        .digit_count();
    while at != target {
        assert!(
            path.len() <= d + 1,
            "path {path:?} exceeded d+1 hops — tables are inconsistent"
        );
        let table = lookup(&at).unwrap_or_else(|| panic!("no table for {at}"));
        let k = at.csuf_len(&target);
        match table.get(k, target.digit(k)) {
            Some(e) => {
                // Each hop must strictly increase the matched suffix.
                debug_assert!(e.node.csuf_len(&target) > k || e.node == target);
                path.push(e.node);
                at = e.node;
            }
            None => {
                return RouteOutcome::Dropped {
                    path,
                    level: k,
                    digit: target.digit(k),
                }
            }
        }
    }
    RouteOutcome::Delivered { path }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::build_consistent_tables;
    use hyperring_id::IdSpace;
    use std::collections::HashMap;

    fn network(ids: &[&str], b: u16, d: usize) -> (IdSpace, HashMap<NodeId, NeighborTable>) {
        let space = IdSpace::new(b, d).unwrap();
        let ids: Vec<NodeId> = ids.iter().map(|s| space.parse_id(s).unwrap()).collect();
        let tables = build_consistent_tables(space, &ids);
        (space, tables.into_iter().map(|t| (t.owner(), t)).collect())
    }

    #[test]
    fn route_to_self_is_trivial() {
        let (space, tables) = network(&["012", "230"], 4, 3);
        let a = space.parse_id("012").unwrap();
        let r = route(a, a, |id| tables.get(id));
        assert!(r.is_delivered());
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn route_reaches_every_node_within_d_hops() {
        let ids = [
            "0123", "3210", "1111", "2222", "0001", "1001", "2001", "3321",
        ];
        let (space, tables) = network(&ids, 4, 4);
        for s in ids {
            for t in ids {
                let (s, t) = (space.parse_id(s).unwrap(), space.parse_id(t).unwrap());
                let r = route(s, t, |id| tables.get(id));
                assert!(r.is_delivered(), "{s} -> {t}: {r:?}");
                assert!(r.hops() <= 4);
            }
        }
    }

    #[test]
    fn route_suffix_match_grows_along_path() {
        let ids = ["0123", "3210", "1111", "2223", "0003", "1003", "2003"];
        let (space, tables) = network(&ids, 4, 4);
        let s = space.parse_id("0123").unwrap();
        let t = space.parse_id("2003").unwrap();
        if let RouteOutcome::Delivered { path } = route(s, t, |id| tables.get(id)) {
            for w in path.windows(2) {
                assert!(w[1].csuf_len(&t) > w[0].csuf_len(&t) || w[1] == t);
            }
        } else {
            panic!("undelivered");
        }
    }

    #[test]
    fn missing_target_is_dropped_not_misrouted() {
        let (space, tables) = network(&["012", "230", "111"], 4, 3);
        let s = space.parse_id("012").unwrap();
        let ghost = space.parse_id("333").unwrap();
        let r = route(s, ghost, |id| tables.get(id));
        assert!(!r.is_delivered());
    }

    #[test]
    fn next_hop_matches_route_first_step() {
        let ids = ["0123", "3210", "1111", "2223"];
        let (space, tables) = network(&ids, 4, 4);
        let s = space.parse_id("0123").unwrap();
        let t = space.parse_id("1111").unwrap();
        let hop = next_hop(&tables[&s], &t).unwrap();
        if let RouteOutcome::Delivered { path } = route(s, t, |id| tables.get(id)) {
            assert_eq!(path[1], hop);
        } else {
            panic!("undelivered");
        }
    }
}
