//! The memory-lean successor of [`SuffixIndex`](crate::SuffixIndex):
//! members interned as dense `u32` arena ids over byte-packed digits,
//! witness lookups answered by integer compares over a suffix-sorted
//! order array.
//!
//! [`SuffixIndex`](crate::SuffixIndex) keys a `HashMap<Suffix, BTreeSet<NodeId>>`
//! on 65-byte suffixes and stores every carrier set as a tree of 65-byte
//! ids — `O(n · d)` hash entries and BTree nodes, the dominant share of the
//! ~1.4 GiB the checker used to peak at for n = 65536. This index stores
//! each member once (`d` bytes of digits, least-significant first) plus one
//! `u32` per live member in **suffix order**: the lexicographic order of
//! the LSD-first digit strings, under which the carriers of *any* suffix
//! form one contiguous range, and within the carriers of a length-`i`
//! suffix the digit at position `i` ascends. Everything the Definition-3.8
//! checker asks is then a binary search:
//!
//! * *does any live node carry suffix `s`?* — is the range of `s`
//!   non-empty;
//! * *which one is the canonical witness?* — the numeric minimum of the
//!   range, answered in `O(log n)` by a segment tree of arena ids
//!   ([`seal`](CompactSuffixIndex::seal) builds it, queries compare packed
//!   digit bytes instead of 65-byte `NodeId`s).
//!
//! The witness is the *smallest* carrier, matching
//! [`SuffixIndex::witness`](crate::SuffixIndex::witness) and
//! [`build_consistent_tables`](crate::build_consistent_tables) exactly, so
//! compact-index checks report identical violations.

use std::cmp::Ordering;
use std::ops::Range;

use hyperring_id::{IdSpace, NodeId, Suffix};

/// Sentinel arena id inside the segment tree: "no member in this span".
const NONE: u32 = u32::MAX;

/// A suffix index interned on dense `u32` ids, with incremental
/// membership and `O(log n)` witness queries after [`seal`](Self::seal).
///
/// # Examples
///
/// ```
/// use hyperring_core::CompactSuffixIndex;
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 3)?;
/// let ids: Vec<_> = ["012", "230", "112"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let mut index = CompactSuffixIndex::build(space, ids.iter().copied());
/// index.seal();
/// // Suffix "12" is carried by 012 and 112; the witness is the smaller.
/// let witness = index.witness(&ids[0].suffix(2)).unwrap();
/// assert_eq!(witness.to_string(), "012");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompactSuffixIndex {
    space: IdSpace,
    /// Digits of every id ever interned, LSD-first, `d` bytes per id.
    /// Append-only: removed members keep their bytes (and their arena id
    /// stays resolvable), bounded by the total members ever inserted.
    bytes: Vec<u8>,
    /// Arena ids of the *live* members, sorted in suffix order.
    order: Vec<u32>,
    /// Segment tree over `order` positions holding the numeric-minimum
    /// arena id of each span; valid only while `sealed`.
    seg: Vec<u32>,
    /// Leaf count of `seg` (a power of two covering `order.len()`).
    seg_base: usize,
    sealed: bool,
}

impl CompactSuffixIndex {
    /// Creates an empty index over `space`.
    pub fn new(space: IdSpace) -> Self {
        CompactSuffixIndex {
            space,
            bytes: Vec::new(),
            order: Vec::new(),
            seg: Vec::new(),
            seg_base: 0,
            sealed: false,
        }
    }

    /// Builds an index over an initial membership (unsealed; call
    /// [`seal`](Self::seal) before witness queries).
    pub fn build(space: IdSpace, ids: impl IntoIterator<Item = NodeId>) -> Self {
        let mut index = CompactSuffixIndex::new(space);
        for id in ids {
            index.insert(id);
        }
        index
    }

    /// The identifier space this index is defined over.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the index holds no live members.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// LSD-first digit slice of an interned id.
    #[inline]
    pub(crate) fn digits(&self, idx: u32) -> &[u8] {
        let d = self.space.digit_count();
        let start = idx as usize * d;
        &self.bytes[start..start + d]
    }

    /// Reconstructs the `NodeId` of an interned id (live or tombstoned).
    pub(crate) fn resolve(&self, idx: u32) -> NodeId {
        NodeId::from_digits_lsd(self.digits(idx))
    }

    /// Numeric order of two interned ids — most-significant digit first,
    /// i.e. the digit slices compared back to front. Agrees with
    /// `NodeId::Ord` for the equal-length ids of one space.
    #[inline]
    fn cmp_numeric(&self, a: u32, b: u32) -> Ordering {
        let (da, db) = (self.digits(a), self.digits(b));
        for i in (0..da.len()).rev() {
            match da[i].cmp(&db[i]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Where `digits_lsd` sits in the live suffix order: `Ok(pos)` if the
    /// exact id is live at `order[pos]`, `Err(pos)` for its insertion
    /// point.
    fn position(&self, digits_lsd: &[u8]) -> Result<usize, usize> {
        self.order
            .binary_search_by(|&idx| self.digits(idx).cmp(digits_lsd))
    }

    /// The arena id of a live member.
    pub(crate) fn index_of(&self, id: &NodeId) -> Option<u32> {
        if id.digit_count() != self.space.digit_count() {
            return None;
        }
        self.position(id.digits_lsd())
            .ok()
            .map(|pos| self.order[pos])
    }

    /// Whether `id` is a live member.
    pub fn contains(&self, id: &NodeId) -> bool {
        self.index_of(id).is_some()
    }

    /// Adds a member. Returns `false` (and changes nothing) if it was
    /// already live. Unseals the index.
    pub fn insert(&mut self, id: NodeId) -> bool {
        debug_assert!(self.space.contains(&id), "id {id} not in space");
        match self.position(id.digits_lsd()) {
            Ok(_) => false,
            Err(pos) => {
                let d = self.space.digit_count();
                let idx = (self.bytes.len() / d) as u32;
                assert!(idx < NONE, "compact index arena full");
                self.bytes.extend_from_slice(id.digits_lsd());
                self.order.insert(pos, idx);
                self.sealed = false;
                true
            }
        }
    }

    /// Removes a member. Returns `false` (and changes nothing) if it was
    /// not live. The arena bytes are kept (tombstoned), so previously
    /// handed-out arena ids stay resolvable. Unseals the index.
    pub fn remove(&mut self, id: &NodeId) -> bool {
        if id.digit_count() != self.space.digit_count() {
            return false;
        }
        match self.position(id.digits_lsd()) {
            Ok(pos) => {
                self.order.remove(pos);
                self.sealed = false;
                true
            }
            Err(_) => false,
        }
    }

    /// (Re)builds the witness segment tree; must be called after any
    /// membership change before [`witness`](Self::witness) /
    /// `min_in_range`. `O(n)`; a no-op when already
    /// sealed. Splitting the build from the (shared, `&self`) queries is
    /// what lets the checker fan table checks across threads.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let n = self.order.len();
        self.seg_base = n.next_power_of_two().max(1);
        self.seg.clear();
        self.seg.resize(2 * self.seg_base, NONE);
        self.seg[self.seg_base..self.seg_base + n].copy_from_slice(&self.order);
        for i in (1..self.seg_base).rev() {
            let (l, r) = (self.seg[2 * i], self.seg[2 * i + 1]);
            self.seg[i] = if l == NONE {
                r
            } else if r == NONE || self.cmp_numeric(l, r) != Ordering::Greater {
                l
            } else {
                r
            };
        }
        self.sealed = true;
    }

    /// Whether the witness structure is current.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// The live members' positions `[lo, hi)` in suffix order whose ids
    /// end with `suffix_lsd` (LSD-first digits). The full order for an
    /// empty suffix.
    pub(crate) fn suffix_range(&self, suffix_lsd: &[u8]) -> Range<usize> {
        let k = suffix_lsd.len();
        let lo = self
            .order
            .partition_point(|&idx| &self.digits(idx)[..k] < suffix_lsd);
        let hi = lo + self.order[lo..].partition_point(|&idx| &self.digits(idx)[..k] == suffix_lsd);
        lo..hi
    }

    /// First position in `order[lo..hi]` whose digit at `pos` is `>= digit`.
    /// Callers guarantee `order[lo..hi]` has ascending digits at `pos`
    /// (true whenever the range is the carrier range of a length-`pos`
    /// suffix).
    #[inline]
    pub(crate) fn lower_bound_digit(&self, lo: usize, hi: usize, pos: usize, digit: u8) -> usize {
        lo + self.order[lo..hi].partition_point(|&idx| self.digits(idx)[pos] < digit)
    }

    /// Numeric-minimum arena id among `order[lo..hi]`, or `None` if the
    /// range is empty.
    ///
    /// # Panics
    ///
    /// Debug-panics if the index is not sealed.
    pub(crate) fn min_in_range(&self, lo: usize, hi: usize) -> Option<u32> {
        debug_assert!(self.sealed, "witness query on an unsealed index");
        if lo >= hi {
            return None;
        }
        let mut best = NONE;
        let consider = |cand: u32, best: &mut u32| {
            if cand != NONE && (*best == NONE || self.cmp_numeric(cand, *best) == Ordering::Less) {
                *best = cand;
            }
        };
        let (mut l, mut r) = (lo + self.seg_base, hi + self.seg_base);
        while l < r {
            if l & 1 == 1 {
                consider(self.seg[l], &mut best);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                consider(self.seg[r], &mut best);
            }
            l /= 2;
            r /= 2;
        }
        (best != NONE).then_some(best)
    }

    /// Witness arena id for an LSD-first digit suffix: the numeric-minimum
    /// live carrier. Requires a sealed index.
    pub(crate) fn witness_idx(&self, suffix_lsd: &[u8]) -> Option<u32> {
        let r = self.suffix_range(suffix_lsd);
        self.min_in_range(r.start, r.end)
    }

    /// The canonical witness for `suffix`: the smallest live node carrying
    /// it, or `None` if no live node does. Identical to
    /// [`SuffixIndex::witness`](crate::SuffixIndex::witness).
    ///
    /// # Panics
    ///
    /// Debug-panics if the index is not sealed.
    pub fn witness(&self, suffix: &Suffix) -> Option<NodeId> {
        self.witness_idx(suffix.digits_lsd())
            .map(|i| self.resolve(i))
    }

    /// The live arena ids in suffix order.
    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    /// Iterates the live membership in suffix order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().map(|&idx| self.resolve(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix_index::SuffixIndex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(space: IdSpace, ss: &[&str]) -> Vec<NodeId> {
        ss.iter().map(|s| space.parse_id(s).unwrap()).collect()
    }

    #[test]
    fn witness_matches_reference_index_on_random_memberships() {
        let space = IdSpace::new(4, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..20 {
            let n = 3 + round;
            let mut members = std::collections::BTreeSet::new();
            while members.len() < n {
                members.insert(space.random_id(&mut rng));
            }
            let members: Vec<NodeId> = members.into_iter().collect();
            let reference = SuffixIndex::build(space, members.iter().copied());
            let mut compact = CompactSuffixIndex::build(space, members.iter().copied());
            compact.seal();
            assert_eq!(compact.len(), reference.len());
            for id in &members {
                assert!(compact.contains(id));
                for k in 1..=space.digit_count() {
                    let s = id.suffix(k);
                    assert_eq!(compact.witness(&s), reference.witness(&s), "suffix {s}");
                }
            }
            // A suffix nobody carries.
            let ghost = space.parse_id("33333").unwrap();
            for k in 1..=space.digit_count() {
                let s = ghost.suffix(k);
                assert_eq!(compact.witness(&s), reference.witness(&s));
            }
        }
    }

    #[test]
    fn insert_and_remove_are_inverses() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "112"]);
        let mut index = CompactSuffixIndex::build(space, v.iter().copied());
        let extra = space.parse_id("333").unwrap();
        assert!(index.insert(extra));
        assert!(!index.insert(extra), "double insert must be a no-op");
        assert!(index.contains(&extra));
        index.seal();
        assert_eq!(index.witness(&extra.suffix(1)), Some(extra));
        assert!(index.remove(&extra));
        assert!(!index.remove(&extra), "double remove must be a no-op");
        assert!(!index.contains(&extra));
        index.seal();
        assert_eq!(index.witness(&extra.suffix(3)), None);
        assert_eq!(index.len(), 3);
        // Members survive in suffix order.
        let got: Vec<String> = index.members().map(|m| m.to_string()).collect();
        assert_eq!(got, vec!["230", "012", "112"]); // by last digit, then next…
    }

    #[test]
    fn removed_ids_stay_resolvable_and_reinsert_cleanly() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230"]);
        let mut index = CompactSuffixIndex::build(space, v.iter().copied());
        let idx = index.index_of(&v[0]).unwrap();
        assert!(index.remove(&v[0]));
        assert_eq!(index.resolve(idx), v[0], "tombstoned id must resolve");
        assert!(index.insert(v[0]), "re-join after departure");
        index.seal();
        assert_eq!(index.witness(&v[0].suffix(3)), Some(v[0]));
    }

    #[test]
    fn min_in_range_is_numeric_minimum() {
        let space = IdSpace::new(4, 3).unwrap();
        // All carry suffix "12"; numeric min is 112.
        let v = ids(space, &["312", "112", "212"]);
        let mut index = CompactSuffixIndex::build(space, v.iter().copied());
        index.seal();
        assert_eq!(index.witness(&v[0].suffix(2)).unwrap().to_string(), "112");
        index.remove(&v[1]);
        index.seal();
        assert_eq!(index.witness(&v[0].suffix(2)).unwrap().to_string(), "212");
    }
}
