use std::fmt;

use crate::messages::MessageKind;

/// Per-node message accounting: how many messages of each kind the node
/// sent, and the modeled bytes on the wire.
///
/// The paper's evaluation (Figure 15, Theorems 3–5) is entirely in terms of
/// message counts per joining node; the byte counters additionally support
/// the §6.2 message-size ablation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageStats {
    sent: [u64; MessageKind::ALL.len()],
    bytes: [u64; MessageKind::ALL.len()],
}

impl MessageStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of `kind` with modeled `bytes`.
    pub fn record(&mut self, kind: MessageKind, bytes: usize) {
        let i = kind as usize;
        self.sent[i] += 1;
        self.bytes[i] += bytes as u64;
    }

    /// Messages of `kind` sent.
    pub fn sent(&self, kind: MessageKind) -> u64 {
        self.sent[kind as usize]
    }

    /// Bytes of `kind` sent (modeled).
    pub fn bytes(&self, kind: MessageKind) -> u64 {
        self.bytes[kind as usize]
    }

    /// Total messages sent.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total modeled bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// The paper's Theorem 3 quantity: `CpRstMsg` plus `JoinWaitMsg` sent.
    pub fn cprst_plus_joinwait(&self) -> u64 {
        self.sent(MessageKind::CpRst) + self.sent(MessageKind::JoinWait)
    }

    /// The paper's `J`: number of `JoinNotiMsg` sent.
    pub fn join_noti(&self) -> u64 {
        self.sent(MessageKind::JoinNoti)
    }

    /// Number of `SpeNotiMsg` sent (footnote 8: "rarely sent").
    pub fn spe_noti(&self) -> u64 {
        self.sent(MessageKind::SpeNoti)
    }

    /// Merges another node's statistics into this accumulator.
    pub fn merge(&mut self, other: &MessageStats) {
        for i in 0..self.sent.len() {
            self.sent[i] += other.sent[i];
            self.bytes[i] += other.bytes[i];
        }
    }
}

impl fmt::Display for MessageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for kind in MessageKind::ALL {
            let n = self.sent(kind);
            if n > 0 {
                writeln!(
                    f,
                    "{:<16} {:>8}  {:>10} B",
                    kind.name(),
                    n,
                    self.bytes(kind)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = MessageStats::new();
        s.record(MessageKind::CpRst, 17);
        s.record(MessageKind::CpRst, 17);
        s.record(MessageKind::JoinWait, 16);
        s.record(MessageKind::JoinNoti, 300);
        assert_eq!(s.sent(MessageKind::CpRst), 2);
        assert_eq!(s.cprst_plus_joinwait(), 3);
        assert_eq!(s.join_noti(), 1);
        assert_eq!(s.spe_noti(), 0);
        assert_eq!(s.total_sent(), 4);
        assert_eq!(s.total_bytes(), 17 + 17 + 16 + 300);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MessageStats::new();
        a.record(MessageKind::JoinNoti, 10);
        let mut b = MessageStats::new();
        b.record(MessageKind::JoinNoti, 20);
        b.record(MessageKind::SpeNoti, 30);
        a.merge(&b);
        assert_eq!(a.sent(MessageKind::JoinNoti), 2);
        assert_eq!(a.bytes(MessageKind::JoinNoti), 30);
        assert_eq!(a.spe_noti(), 1);
    }

    #[test]
    fn display_lists_only_nonzero_kinds() {
        let mut s = MessageStats::new();
        s.record(MessageKind::JoinNoti, 10);
        let text = s.to_string();
        assert!(text.contains("JoinNotiMsg"));
        assert!(!text.contains("CpRstMsg"));
    }
}
