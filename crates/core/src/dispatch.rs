//! The one shared path from an [`Effects`] buffer into a runtime.
//!
//! Every runtime — the zero-copy [`SimNetwork`](crate::SimNetwork), the
//! actor-based simulator adapters, and the threaded network — implements
//! [`EffectHandler`] for its transport/timer facilities and calls
//! [`dispatch_effects`] after each engine event. Trace effects are stamped
//! and routed here too, so tracing behaves identically everywhere.

use hyperring_id::NodeId;

use crate::effect::{Effect, Effects, TimerId};
use crate::messages::Message;
use crate::trace::TraceStream;

/// Runtime-side sink for the non-trace effects.
pub trait EffectHandler {
    /// Transmit `msg` to `to`.
    fn send(&mut self, to: NodeId, msg: Message);

    /// Arm (or re-arm) `id` to fire in roughly `delay_hint` microseconds.
    fn set_timer(&mut self, id: TimerId, delay_hint: u64);

    /// Cancel `id` if pending.
    fn cancel_timer(&mut self, id: TimerId);
}

/// Drains `effects` in order: sends and timer ops go to `handler`, trace
/// events are stamped with (`now`, `node`, next sequence number) and fed
/// to `trace` (discarded when `None`).
pub fn dispatch_effects<H: EffectHandler + ?Sized>(
    node: NodeId,
    now: u64,
    effects: &mut Effects,
    handler: &mut H,
    mut trace: Option<&mut TraceStream>,
) {
    for effect in effects.drain() {
        match effect {
            Effect::Send { to, msg } => handler.send(to, msg),
            Effect::SetTimer { id, delay_hint } => handler.set_timer(id, delay_hint),
            Effect::CancelTimer { id } => handler.cancel_timer(id),
            Effect::Trace(ev) => {
                if let Some(stream) = trace.as_deref_mut() {
                    stream.emit(now, node, ev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;
    use crate::trace::{ProtocolEvent, RingTrace, SharedSink, TraceSink};
    use hyperring_id::IdSpace;

    #[derive(Default)]
    struct Log {
        sends: Vec<(NodeId, Message)>,
        set: Vec<(TimerId, u64)>,
        canceled: Vec<TimerId>,
    }

    impl EffectHandler for Log {
        fn send(&mut self, to: NodeId, msg: Message) {
            self.sends.push((to, msg));
        }
        fn set_timer(&mut self, id: TimerId, delay_hint: u64) {
            self.set.push((id, delay_hint));
        }
        fn cancel_timer(&mut self, id: TimerId) {
            self.canceled.push(id);
        }
    }

    #[test]
    fn routes_each_effect_kind() {
        let space = IdSpace::new(4, 3).unwrap();
        let me = space.parse_id("000").unwrap();
        let peer = space.parse_id("321").unwrap();
        let mut fx = Effects::new();
        fx.push(Effect::Send {
            to: peer,
            msg: Message::CpRst { level: 1 },
        });
        fx.push(Effect::SetTimer {
            id: TimerId::CpRst { peer },
            delay_hint: 500,
        });
        fx.push(Effect::Trace(ProtocolEvent::JoinStarted { gateway: peer }));
        fx.push(Effect::CancelTimer {
            id: TimerId::CpRst { peer },
        });

        let sink = SharedSink::new(RingTrace::new(8));
        let mut stream = TraceStream::new(Box::new(sink.clone()));
        let mut log = Log::default();
        dispatch_effects(me, 77, &mut fx, &mut log, Some(&mut stream));

        assert!(fx.is_empty());
        assert_eq!(log.sends.len(), 1);
        assert_eq!(log.set, vec![(TimerId::CpRst { peer }, 500)]);
        assert_eq!(log.canceled, vec![TimerId::CpRst { peer }]);
        let ring = sink.lock();
        let recs: Vec<_> = ring.records().collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].at, 77);
        assert_eq!(recs[0].node, me);
    }

    #[test]
    fn traces_are_dropped_without_a_stream() {
        let space = IdSpace::new(4, 3).unwrap();
        let me = space.parse_id("000").unwrap();
        let mut fx = Effects::new();
        fx.push(Effect::Trace(ProtocolEvent::JoinStarted { gateway: me }));
        let mut log = Log::default();
        dispatch_effects(me, 0, &mut fx, &mut log, None);
        assert!(fx.is_empty());
        assert!(log.sends.is_empty());
    }

    #[test]
    fn null_sink_is_a_valid_stream_target() {
        let mut null = crate::trace::NullTrace;
        null.record(&crate::trace::TraceRecord {
            at: 0,
            seq: 0,
            node: IdSpace::new(4, 3).unwrap().parse_id("000").unwrap(),
            event: ProtocolEvent::JoinStarted {
                gateway: IdSpace::new(4, 3).unwrap().parse_id("000").unwrap(),
            },
        });
    }
}
