//! The typed engine ↔ runtime boundary: [`Effect`]s out, [`Event`]s in.
//!
//! The [`JoinEngine`](crate::JoinEngine) is sans-io: it never touches
//! clocks, sockets, or files. Everything it wants done is expressed as an
//! [`Effect`] pushed into an [`Effects`] buffer, and everything that can
//! happen to it arrives as an [`Event`]. A runtime (the deterministic
//! simulator, the threaded runtime, tests) drains the buffer through one
//! shared dispatch path ([`dispatch_effects`](crate::dispatch_effects)).

use hyperring_id::NodeId;

use crate::messages::Message;
use crate::trace::ProtocolEvent;

/// Identifier of a retry timer the engine arms for itself.
///
/// Each variant names the *request kind* being guarded and the peer (or
/// subject) it was addressed to, so one node can hold many concurrent
/// timers without aliasing. Re-arming an id replaces its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimerId {
    /// A `CpRstMsg` to `peer` awaits its `CpRlyMsg`.
    CpRst {
        /// The copy target.
        peer: NodeId,
    },
    /// A `JoinWaitMsg` to `peer` awaits its `JoinWaitRlyMsg`.
    JoinWait {
        /// The awaited storer.
        peer: NodeId,
    },
    /// A `JoinNotiMsg` to `peer` awaits its `JoinNotiRlyMsg`.
    JoinNoti {
        /// The notified node.
        peer: NodeId,
    },
    /// A `SpeNotiMsg` chain about `subject` awaits its `SpeNotiRlyMsg`.
    SpeNoti {
        /// The node the special notification is about.
        subject: NodeId,
    },
    /// Bounded blind retransmit of a `RvNghNotiMsg` to `peer` (the reply
    /// is conditional, so delivery cannot be confirmed).
    RvNgh {
        /// The stored neighbor.
        peer: NodeId,
    },
    /// Bounded blind retransmit of an `InSysNotiMsg` to `peer` (never
    /// acknowledged).
    InSys {
        /// The reverse neighbor.
        peer: NodeId,
    },
    /// Periodic failure-detector tick (crash-churn extension): on each
    /// fire the node probes its monitored neighbors with `PingMsg`s,
    /// declares unresponsive ones dead, re-drives pending repairs, and
    /// re-arms the tick. One per node, keyed on the node itself.
    FdProbe {
        /// The probing node (timers are per-node; the detector uses one
        /// periodic tick).
        owner: NodeId,
    },
}

impl TimerId {
    /// Snake-case name of the guarded request kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TimerId::CpRst { .. } => "cp_rst",
            TimerId::JoinWait { .. } => "join_wait",
            TimerId::JoinNoti { .. } => "join_noti",
            TimerId::SpeNoti { .. } => "spe_noti",
            TimerId::RvNgh { .. } => "rv_ngh",
            TimerId::InSys { .. } => "in_sys",
            TimerId::FdProbe { .. } => "fd_probe",
        }
    }

    /// The peer (or subject) the timer is keyed on.
    pub fn peer(&self) -> NodeId {
        match *self {
            TimerId::CpRst { peer }
            | TimerId::JoinWait { peer }
            | TimerId::JoinNoti { peer }
            | TimerId::RvNgh { peer }
            | TimerId::InSys { peer } => peer,
            TimerId::SpeNoti { subject } => subject,
            TimerId::FdProbe { owner } => owner,
        }
    }
}

/// One side effect requested by the engine while handling an [`Event`].
///
/// # Examples
///
/// The first thing a joiner wants is a `CpRstMsg` on the wire:
///
/// ```
/// use hyperring_core::{Effect, Effects, JoinEngine, Message, ProtocolOptions};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 3)?;
/// let gateway = space.parse_id("000")?;
/// let mut joiner =
///     JoinEngine::new_joiner(space, ProtocolOptions::new(), space.parse_id("321")?);
/// let mut fx = Effects::new();
/// joiner.start_join(gateway, &mut fx);
/// let effects: Vec<Effect> = fx.drain().collect();
/// assert!(matches!(
///     effects[0],
///     Effect::Send { to, msg: Message::CpRst { level: 0 } } if to == gateway
/// ));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub enum Effect {
    /// Transmit `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// The protocol message.
        msg: Message,
    },
    /// Arm (or re-arm) timer `id` to fire after roughly `delay_hint`
    /// microseconds. The hint is advisory: a runtime may round it, but must
    /// preserve "fires once, later than now, unless canceled".
    SetTimer {
        /// The timer to arm.
        id: TimerId,
        /// Requested delay in microseconds.
        delay_hint: u64,
    },
    /// Cancel timer `id` if pending (a no-op otherwise).
    CancelTimer {
        /// The timer to cancel.
        id: TimerId,
    },
    /// Record a structured observability event (dropped unless the runtime
    /// attached a [`TraceSink`](crate::TraceSink)).
    Trace(ProtocolEvent),
}

/// One input the engine reacts to.
#[derive(Debug, Clone)]
pub enum Event {
    /// A protocol message arrived from `from`.
    Deliver {
        /// The overlay-level sender.
        from: NodeId,
        /// The protocol message.
        msg: Message,
    },
    /// A timer previously armed via [`Effect::SetTimer`] expired.
    TimerFired {
        /// The expired timer.
        id: TimerId,
    },
}

/// Buffer of [`Effect`]s produced while handling one event.
///
/// Replaces the old `(NodeId, Message)`-only outbox: runtimes drain the
/// whole typed stream ([`drain`](Effects::drain)), while tests that only
/// care about traffic use [`drain_sends`](Effects::drain_sends).
#[derive(Debug, Default)]
pub struct Effects {
    items: Vec<Effect>,
}

impl Effects {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, e: Effect) {
        self.items.push(e);
    }

    /// Drains all queued effects, in the order the engine produced them.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Effect> {
        self.items.drain(..)
    }

    /// Drains the buffer, yielding only the `(destination, message)` pairs
    /// of [`Effect::Send`]s. Timer and trace effects are discarded — the
    /// convenience path for tests and synchronous pumps that model a
    /// reliable network with no clock.
    pub fn drain_sends(&mut self) -> impl Iterator<Item = (NodeId, Message)> + '_ {
        self.items.drain(..).filter_map(|e| match e {
            Effect::Send { to, msg } => Some((to, msg)),
            _ => None,
        })
    }

    /// Number of queued effects (of every kind).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no effects are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}
