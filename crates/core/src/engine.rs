use std::collections::{BTreeMap, BTreeSet};

use hyperring_id::{IdSpace, NodeId};

use crate::effect::{Effect, Effects, Event, TimerId};
use crate::failure::FailureState;
use crate::messages::{BitVec, Message};
use crate::options::{PayloadMode, ProtocolOptions};
use crate::repair::{synth_target, RepairState};
use crate::stats::MessageStats;
use crate::table::{Entry, NeighborTable, NodeState, TableSnapshot};
use crate::trace::ProtocolEvent;

/// A node's status during (and after) the join protocol (the paper's §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Constructing the table level by level by copying from nodes in `V`.
    Copying,
    /// Waiting to be stored by some node (`JoinWaitMsg` outstanding).
    Waiting,
    /// Stored by a node; notifying every node that shares at least
    /// `noti_level` digits.
    Notifying,
    /// An S-node: fully integrated into the network.
    InSystem,
    /// **Extension**: gracefully leaving; waiting for reverse neighbors to
    /// acknowledge replacement of their entries.
    Leaving,
    /// **Extension**: fully departed; ignores all traffic.
    Departed,
    /// **Extension**: crash-failed. Unlike [`Status::Departed`] (reached
    /// through the graceful-leave ceremony) a crashed node falls silent
    /// without telling anyone; survivors must detect it themselves (see
    /// [`ProtocolOptions::with_failure_detector`](crate::ProtocolOptions::with_failure_detector)).
    Crashed,
}

/// The join-protocol state machine of a single node — a faithful
/// implementation of the paper's Figures 5–14.
///
/// `Clone` is provided so tools (the model checker, snapshotting tests)
/// can fork a network state; the protocol itself never clones engines.
///
/// A node is either constructed as a *member* (an S-node of the initial
/// consistent network `V`) or as a *joiner*, which runs through
/// `copying → waiting → notifying → in_system`. All interaction is via
/// [`JoinEngine::handle`] (or the event-level entry point
/// [`JoinEngine::on_event`]) and the [`Effects`] buffer: the engine is
/// sans-io and only ever *requests* sends, timer operations, and trace
/// records.
///
/// # Examples
///
/// A network of one member plus one joiner, pumped synchronously:
///
/// ```
/// use hyperring_core::{Effects, JoinEngine, Message, ProtocolOptions, Status};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 3)?;
/// let a = space.parse_id("000")?;
/// let b = space.parse_id("321")?;
/// let mut member = JoinEngine::new_seed(space, ProtocolOptions::new(), a);
/// let mut joiner = JoinEngine::new_joiner(space, ProtocolOptions::new(), b);
///
/// let mut out = Effects::new();
/// joiner.start_join(a, &mut out);
/// // Pump messages to quiescence (two nodes only).
/// let mut queue: Vec<(hyperring_id::NodeId, hyperring_id::NodeId, Message)> =
///     out.drain_sends().map(|(to, m)| (b, to, m)).collect();
/// while let Some((from, to, msg)) = queue.pop() {
///     let node = if to == a { &mut member } else { &mut joiner };
///     let mut out = Effects::new();
///     node.handle(from, msg, &mut out);
///     queue.extend(out.drain_sends().map(|(t, m)| (to, t, m)));
/// }
/// assert_eq!(joiner.status(), Status::InSystem);
/// assert_eq!(member.table().get(0, 1).unwrap().node, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct JoinEngine {
    space: IdSpace,
    id: NodeId,
    opts: ProtocolOptions,
    status: Status,
    table: NeighborTable,
    /// `x.noti_level`: length of the common suffix with the node that
    /// stored us first.
    noti_level: usize,
    /// `Q_r`: nodes we await replies from.
    qr: BTreeSet<NodeId>,
    /// `Q_n`: nodes we have sent notifications to.
    qn: BTreeSet<NodeId>,
    /// `Q_j`: joiners that sent us a `JoinWaitMsg` while we were a T-node.
    qj: BTreeSet<NodeId>,
    /// `Q_sr`: subjects of outstanding `SpeNotiMsg`s.
    qsr: BTreeSet<NodeId>,
    /// `Q_sn`: subjects we have sent `SpeNotiMsg`s about.
    qsn: BTreeSet<NodeId>,
    /// Copying cursor: level currently being constructed.
    copy_level: usize,
    /// Copying cursor: the node we await a `CpRlyMsg` from.
    copy_target: Option<NodeId>,
    /// Leave extension: reverse neighbors whose `LeaveNotiRlyMsg` is
    /// outstanding.
    ql: BTreeSet<NodeId>,
    /// Live retry timers → retransmissions already performed. Empty unless
    /// a [`RetryPolicy`](crate::RetryPolicy) is installed.
    retries: BTreeMap<TimerId, u32>,
    /// Crash-churn extension: probe bookkeeping of the failure detector.
    /// Inert unless a [`FailureDetector`](crate::FailureDetector) is
    /// installed.
    fd: FailureState,
    /// Crash-churn extension: vacated slots awaiting repair and the set of
    /// condemned nodes.
    repair: RepairState,
    /// The gateway `start_join` was called with — the fallback contact of
    /// last resort when [`RetryPolicy::join_fallback`](crate::RetryPolicy)
    /// restarts a join whose peer died. `None` for members.
    g0: Option<NodeId>,
    stats: MessageStats,
}

impl JoinEngine {
    /// Creates a member of the initial network `V` with a pre-built
    /// consistent table (all states must be `S`).
    ///
    /// # Panics
    ///
    /// Panics if the table's owner or space disagree with the arguments.
    pub fn new_member(space: IdSpace, opts: ProtocolOptions, table: NeighborTable) -> Self {
        assert_eq!(table.space(), space, "table built for another space");
        let id = table.owner();
        JoinEngine {
            space,
            id,
            opts,
            status: Status::InSystem,
            table,
            noti_level: 0,
            qr: BTreeSet::new(),
            qn: BTreeSet::new(),
            qj: BTreeSet::new(),
            qsr: BTreeSet::new(),
            qsn: BTreeSet::new(),
            copy_level: 0,
            copy_target: None,
            ql: BTreeSet::new(),
            retries: BTreeMap::new(),
            fd: FailureState::default(),
            repair: RepairState::default(),
            g0: None,
            stats: MessageStats::new(),
        }
    }

    /// Creates the very first node of a network (§6.1): its self entries
    /// point at itself with state `S`, everything else is empty.
    pub fn new_seed(space: IdSpace, opts: ProtocolOptions, id: NodeId) -> Self {
        let mut table = NeighborTable::new(space, id);
        table.set_self_entries(NodeState::S);
        Self::new_member(space, opts, table)
    }

    /// Creates a joiner in status *copying*. Call
    /// [`start_join`](Self::start_join) to begin.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `space`.
    pub fn new_joiner(space: IdSpace, opts: ProtocolOptions, id: NodeId) -> Self {
        JoinEngine {
            space,
            id,
            opts,
            status: Status::Copying,
            table: NeighborTable::new(space, id),
            noti_level: 0,
            qr: BTreeSet::new(),
            qn: BTreeSet::new(),
            qj: BTreeSet::new(),
            qsr: BTreeSet::new(),
            qsn: BTreeSet::new(),
            copy_level: 0,
            copy_target: None,
            ql: BTreeSet::new(),
            retries: BTreeMap::new(),
            fd: FailureState::default(),
            repair: RepairState::default(),
            g0: None,
            stats: MessageStats::new(),
        }
    }

    /// The node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current status.
    #[inline]
    pub fn status(&self) -> Status {
        self.status
    }

    /// Whether the node is an S-node.
    #[inline]
    pub fn is_in_system(&self) -> bool {
        self.status == Status::InSystem
    }

    /// The node's neighbor table.
    #[inline]
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }

    /// The node's notification level (meaningful once status ≥ notifying).
    #[inline]
    pub fn noti_level(&self) -> usize {
        self.noti_level
    }

    /// Message statistics for this node.
    #[inline]
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Hashes the node's complete *protocol-relevant* state — status,
    /// notification level, table entries and recorded states, reverse
    /// neighbors, all five queues, the copy cursor, and the live retry
    /// timers — into `h`.
    ///
    /// Two engines with equal digests behave identically on any future
    /// message sequence; message statistics are deliberately excluded
    /// (they record history, not behavior). Used by the bounded
    /// model-checking tests to deduplicate explored interleavings.
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.id.hash(h);
        (self.status as u8).hash(h);
        self.noti_level.hash(h);
        self.copy_level.hash(h);
        self.copy_target.hash(h);
        for (level, digit, e) in self.table.iter() {
            level.hash(h);
            digit.hash(h);
            e.node.hash(h);
            (e.state == NodeState::S).hash(h);
        }
        self.table.reverse_neighbors().hash(h);
        for q in [&self.qr, &self.qn, &self.qj, &self.qsr, &self.qsn, &self.ql] {
            q.hash(h);
            0xfeu8.hash(h);
        }
        for (id, n) in &self.retries {
            id.hash(h);
            n.hash(h);
        }
        self.fd.hash_state(h);
        self.repair.hash_state(h);
        self.g0.hash(h);
    }

    /// Begins the join, given a node `g0` of the existing network
    /// (assumption (ii) of §3.1: every joiner knows some node in `V`).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a fresh joiner or `g0` is the node itself.
    pub fn start_join(&mut self, g0: NodeId, out: &mut Effects) {
        assert_eq!(self.status, Status::Copying, "join already started");
        assert!(self.copy_target.is_none(), "join already started");
        assert_ne!(g0, self.id, "cannot join via self");
        self.trace(out, ProtocolEvent::JoinStarted { gateway: g0 });
        self.copy_target = Some(g0);
        self.g0 = Some(g0);
        self.post(out, g0, Message::CpRst { level: 0 });
        self.arm(out, TimerId::CpRst { peer: g0 });
    }

    /// Feeds one [`Event`] — a delivered message or an expired timer — to
    /// the state machine. This is the entry point runtimes use; it is
    /// exactly [`handle`](Self::handle) plus timer dispatch.
    pub fn on_event(&mut self, ev: Event, out: &mut Effects) {
        match ev {
            Event::Deliver { from, msg } => self.handle(from, msg, out),
            Event::TimerFired { id } => self.on_timer_fired(id, out),
        }
    }

    /// Handles a delivered protocol message, queueing any responses into
    /// `out`.
    pub fn handle(&mut self, from: NodeId, msg: Message, out: &mut Effects) {
        if matches!(self.status, Status::Departed | Status::Crashed) {
            return; // gone; late traffic is dropped
        }
        if self.status == Status::Leaving
            && !matches!(
                msg,
                Message::LeaveNoti { .. } | Message::LeaveNotiRly | Message::RvNghForget
            )
        {
            // The graceful-leave extension assumes (like the paper's
            // assumption (iv), inverted) that joins do not overlap the
            // leaving node; residual join traffic is dropped.
            return;
        }
        match msg {
            Message::CpRst { level } => self.on_cprst(from, level, out),
            Message::CpRly { level, table } => self.on_cprly(from, level, table, out),
            Message::JoinWait => self.on_joinwait(from, out),
            Message::JoinWaitRly {
                positive,
                next,
                table,
            } => self.on_joinwaitrly(from, positive, next, table, out),
            Message::JoinNoti { table, filled_bits } => {
                self.on_joinnoti(from, table, filled_bits, out)
            }
            Message::JoinNotiRly {
                positive,
                table,
                flag,
            } => self.on_joinnotirly(from, positive, table, flag, out),
            Message::InSysNoti => self.on_insysnoti(from, out),
            Message::SpeNoti { initiator, subject } => self.on_spenoti(initiator, subject, out),
            Message::SpeNotiRly { subject } => self.on_spenotirly(subject, out),
            Message::RvNghNoti { recorded } => self.on_rvnghnoti(from, recorded, out),
            Message::RvNghNotiRly { actual } => self.on_rvnghnotirly(from, actual, out),
            Message::LeaveNoti { replacement } => self.on_leavenoti(from, replacement, out),
            Message::LeaveNotiRly => self.on_leavenotirly(from, out),
            Message::RvNghForget => {
                self.table.remove_reverse(&from);
            }
            Message::Ping => self.post(out, from, Message::Pong),
            Message::Pong => self.fd.pong(from),
            Message::RepairQry {
                origin,
                target,
                level,
                digit,
            } => self.on_repairqry(origin, target, level, digit, out),
            Message::RepairRly {
                level,
                digit,
                found,
            } => self.on_repairrly(level as usize, digit, found, out),
        }
    }

    // ------------------------------------------------------------------
    // Crash failure, detection, and table repair (extension; the paper
    // defers failure recovery to future work)
    // ------------------------------------------------------------------

    /// Crash-fails the node: it transitions to [`Status::Crashed`] and
    /// from then on silently drops every event. Unlike
    /// [`begin_leave`](Self::begin_leave) there is no ceremony — nothing
    /// is sent and no replacement is offered; survivors must notice the
    /// silence through their failure detectors.
    pub fn crash(&mut self) {
        self.status = Status::Crashed;
    }

    /// Arms the periodic probe tick of the failure detector. A no-op
    /// unless a [`FailureDetector`](crate::FailureDetector) is configured
    /// and the node is *in_system* (joiners arm it themselves on
    /// switching to S-node; runtimes call this once for initial members).
    pub fn start_failure_detector(&mut self, out: &mut Effects) {
        let Some(fd) = self.opts.failure_detector else {
            return;
        };
        if self.fd.running || self.status != Status::InSystem {
            return;
        }
        self.fd.running = true;
        out.push(Effect::SetTimer {
            id: TimerId::FdProbe { owner: self.id },
            delay_hint: fd.probe_interval_us,
        });
    }

    /// One tick of the failure detector: charge unanswered probes,
    /// declare silent peers dead (evicting their entries and queueing
    /// repairs), ping the rest, re-drive pending repairs, re-arm.
    fn on_fd_tick(&mut self, out: &mut Effects) {
        let Some(fd) = self.opts.failure_detector else {
            return;
        };
        if self.status != Status::InSystem {
            self.fd.running = false;
            return; // leaving, departed, or crashed: stop probing
        }
        let outcome = self.fd.tick(&self.table, fd.suspicion_threshold);
        for (peer, missed) in outcome.dead {
            self.declare_dead(peer, missed, fd.repair, out);
        }
        for peer in outcome.probe {
            self.post(out, peer, Message::Ping);
        }
        if fd.repair {
            self.drive_repairs(out);
        }
        out.push(Effect::SetTimer {
            id: TimerId::FdProbe { owner: self.id },
            delay_hint: fd.probe_interval_us,
        });
    }

    /// Declares `peer` dead: condemns it, evicts every table entry
    /// storing it, drops it from the reverse sets, and (with repair on)
    /// queues each vacated slot for refilling.
    fn declare_dead(&mut self, peer: NodeId, missed: u32, repair: bool, out: &mut Effects) {
        self.trace(out, ProtocolEvent::NeighborDead { peer, missed });
        self.repair.condemn(peer);
        self.table.remove_reverse(&peer);
        let vacated: Vec<(usize, u8)> = self
            .table
            .iter()
            .filter(|&(_, _, e)| e.node == peer)
            .map(|(level, digit, _)| (level, digit))
            .collect();
        for (level, digit) in vacated {
            self.table.clear(level, digit);
            self.trace(
                out,
                ProtocolEvent::EntryEvicted {
                    level,
                    digit,
                    node: peer,
                },
            );
            if repair {
                self.repair.enqueue(level, digit);
            }
        }
        // The peer can no longer answer; drop any reply-awaiting state so
        // join-era bookkeeping does not dangle on a dead node.
        self.qr.remove(&peer);
        self.qsr.remove(&peer);
        self.ql.remove(&peer);
    }

    /// (Re-)sends `RepairQryMsg`s for the still-vacant slots under
    /// repair the detector's pacing makes due this tick, and gives up on
    /// slots that exhausted their budget.
    fn drive_repairs(&mut self, out: &mut Effects) {
        let (cap, backoff) = self
            .opts
            .failure_detector
            .map(|fd| (fd.max_repairs_in_flight, fd.repair_backoff))
            .unwrap_or((0, false));
        let due = self.repair.due(&self.table, cap, backoff);
        for (level, digit) in due.exhausted {
            self.trace(out, ProtocolEvent::RepairFailed { level, digit });
        }
        for (level, digit) in due.query {
            let recipients = self.repair.recipients(&self.table, level);
            if recipients.is_empty() {
                continue; // isolated for now; the next tick retries
            }
            self.trace(out, ProtocolEvent::RepairStarted { level, digit });
            let target = synth_target(&self.id, level, digit);
            for r in recipients {
                self.post(
                    out,
                    r,
                    Message::RepairQry {
                        origin: self.id,
                        target,
                        level: level as u8,
                        digit,
                    },
                );
            }
        }
    }

    /// Handles a `RepairQryMsg`: answer with a carrier of the desired
    /// suffix if we are one or know one, forward one suffix-routing hop
    /// closer otherwise, and report a dead end when we can do neither.
    ///
    /// Candidates are drawn from the table *and* the reverse-neighbor
    /// sets. The latter matters after correlated eviction: when a crash
    /// vacates slot `(i, j)` in every survivor at once, no survivor's
    /// table stores a carrier any more (the vacated slot was the only one
    /// that could), but the survivors a carrier itself stores still know
    /// it as a reverse neighbor. Each forward strictly lengthens the
    /// common suffix with `target`, so every query terminates within `d`
    /// hops.
    fn on_repairqry(
        &mut self,
        origin: NodeId,
        target: NodeId,
        level: u8,
        digit: u8,
        out: &mut Effects,
    ) {
        if origin == self.id {
            return; // a query of our own echoed back; nothing to add
        }
        let k = self.id.csuf_len(&target);
        if k > level as usize {
            // We carry the desired suffix ourselves.
            let state = if self.status == Status::InSystem {
                NodeState::S
            } else {
                NodeState::T
            };
            let found = Some(Entry {
                node: self.id,
                state,
            });
            self.post(
                out,
                origin,
                Message::RepairRly {
                    level,
                    digit,
                    found,
                },
            );
            return;
        }
        // Best known candidate: longest common suffix with the target,
        // breaking ties toward table entries (whose recorded state we
        // know). Only strict progress (csuf > ours) qualifies.
        let mut best: Option<(usize, Entry)> = None;
        let candidates = self.table.iter().map(|(_, _, e)| e).chain(
            self.table
                .reverse_neighbors()
                .into_iter()
                .map(|node| Entry {
                    node,
                    state: NodeState::S,
                }),
        );
        for e in candidates {
            if e.node == self.id || e.node == origin {
                continue;
            }
            let c = e.node.csuf_len(&target);
            if c > k && best.is_none_or(|(b, _)| c > b) {
                best = Some((c, e));
            }
        }
        match best {
            Some((c, e)) if c > level as usize => {
                // We know a carrier: answer directly.
                let found = Some(e);
                self.post(
                    out,
                    origin,
                    Message::RepairRly {
                        level,
                        digit,
                        found,
                    },
                );
            }
            Some((_, e)) => self.post(
                out,
                e.node,
                Message::RepairQry {
                    origin,
                    target,
                    level,
                    digit,
                },
            ),
            None => {
                // Dead end: nobody we know is closer to the target.
                let found = None;
                self.post(
                    out,
                    origin,
                    Message::RepairRly {
                        level,
                        digit,
                        found,
                    },
                );
            }
        }
    }

    /// Handles a `RepairRlyMsg`: install the first usable replacement
    /// through the join machinery's `T`→`S` discipline. Negative or
    /// stale replies are dropped; the detector tick re-drives dry slots.
    fn on_repairrly(&mut self, level: usize, digit: u8, found: Option<Entry>, out: &mut Effects) {
        if !self.repair.is_pending(level, digit) {
            return;
        }
        let Some(e) = found else {
            return;
        };
        if e.node == self.id
            || self.repair.is_condemned(&e.node)
            || self.table.get(level, digit).is_some()
            || !self.table.fits(level, digit, &e.node)
        {
            return;
        }
        // Install as T and let the RvNghNoti/RvNghNotiRly exchange (sent
        // by `install`) upgrade the recorded state to S, exactly as a
        // join-installed entry would converge.
        self.install(
            level,
            digit,
            Entry {
                node: e.node,
                state: NodeState::T,
            },
            true,
            out,
        );
        self.repair.complete(level, digit);
        self.trace(
            out,
            ProtocolEvent::RepairInstalled {
                level,
                digit,
                node: e.node,
            },
        );
    }

    // ------------------------------------------------------------------
    // Graceful leave (extension; the paper defers this to future work)
    // ------------------------------------------------------------------

    /// Begins a graceful leave: every reverse neighbor is offered a
    /// replacement for its entry, every stored neighbor is told to forget
    /// us as a reverse neighbor, and the node departs once all reverse
    /// neighbors acknowledge.
    ///
    /// The single-leave argument mirrors the paper's C-set reasoning: a
    /// reverse neighbor `v` stores us at entry `(k, x[k])`, `k = |csuf(v,
    /// x)|`, whose desired suffix is `x`'s own `(k+1)`-digit suffix; any
    /// node sharing `k + 1` digits with us is a valid substitute, and our
    /// own (consistent) table holds one at some level `≥ k + 1` iff one
    /// exists in the network.
    ///
    /// Concurrent leaves of *adjacent* nodes (each other's replacement
    /// candidates) are not arbitrated, matching the sequential-churn scope
    /// of the extension.
    ///
    /// # Panics
    ///
    /// Panics unless the node's status is *in_system*.
    pub fn begin_leave(&mut self, out: &mut Effects) {
        assert_eq!(
            self.status,
            Status::InSystem,
            "only an S-node can leave gracefully"
        );
        self.set_status(Status::Leaving, out);
        let me = self.id;
        // Tell stored neighbors to drop us from their reverse sets.
        for (_, _, e) in self.table.iter().collect::<Vec<_>>() {
            if e.node != me {
                self.post(out, e.node, Message::RvNghForget);
            }
        }
        // Offer replacements to reverse neighbors.
        for v in self.table.reverse_neighbors() {
            if v == me {
                continue;
            }
            let k = me.csuf_len(&v);
            let replacement = self.table.find_sharer(k + 1);
            debug_assert!(replacement.is_none_or(|e| e.node.csuf_len(&me) > k));
            self.ql.insert(v);
            self.post(out, v, Message::LeaveNoti { replacement });
        }
        if self.ql.is_empty() {
            self.set_status(Status::Departed, out);
        }
    }

    fn on_leavenoti(&mut self, from: NodeId, replacement: Option<Entry>, out: &mut Effects) {
        let k = self.id.csuf_len(&from);
        let slot_digit = from.digit(k);
        if self
            .table
            .get(k, slot_digit)
            .is_some_and(|e| e.node == from)
        {
            self.table.clear(k, slot_digit);
            match replacement {
                Some(e) if e.node != self.id && self.table.fits(k, slot_digit, &e.node) => {
                    self.install(k, slot_digit, e, true, out);
                }
                _ => {}
            }
        }
        self.table.remove_reverse(&from);
        self.post(out, from, Message::LeaveNotiRly);
    }

    fn on_leavenotirly(&mut self, from: NodeId, out: &mut Effects) {
        self.ql.remove(&from);
        if self.status == Status::Leaving && self.ql.is_empty() {
            self.set_status(Status::Departed, out);
        }
    }

    // ------------------------------------------------------------------
    // Effect helpers
    // ------------------------------------------------------------------

    fn post(&mut self, out: &mut Effects, to: NodeId, msg: Message) {
        debug_assert_ne!(to, self.id, "node {} sending {:?} to itself", self.id, msg);
        self.stats.record(msg.kind(), msg.wire_size(&self.space));
        out.push(Effect::Send { to, msg });
    }

    fn trace(&self, out: &mut Effects, ev: ProtocolEvent) {
        if self.opts.trace {
            out.push(Effect::Trace(ev));
        }
    }

    /// Changes status, emitting a `StatusChanged` trace event.
    fn set_status(&mut self, to: Status, out: &mut Effects) {
        let from = self.status;
        self.status = to;
        if from != to {
            self.trace(out, ProtocolEvent::StatusChanged { from, to });
        }
    }

    /// Updates the recorded state of `(level, digit)` if it stores `node`,
    /// emitting a `StateFlipped` trace event on an actual change.
    fn flip_state(
        &mut self,
        level: usize,
        digit: u8,
        node: NodeId,
        to: NodeState,
        out: &mut Effects,
    ) {
        let prior = self
            .table
            .get(level, digit)
            .filter(|e| e.node == node)
            .map(|e| e.state);
        self.table.set_state_if(level, digit, &node, to);
        if prior.is_some() && prior != Some(to) {
            self.trace(
                out,
                ProtocolEvent::StateFlipped {
                    level,
                    digit,
                    node,
                    to,
                },
            );
        }
    }

    /// Arms (or re-arms) a retry timer, resetting its attempt counter.
    /// No-op without a [`RetryPolicy`](crate::RetryPolicy).
    fn arm(&mut self, out: &mut Effects, id: TimerId) {
        if let Some(rp) = self.opts.retry {
            self.retries.insert(id, 0);
            out.push(Effect::SetTimer {
                id,
                delay_hint: rp.timeout_us,
            });
        }
    }

    /// Cancels a retry timer if it is live.
    fn disarm(&mut self, out: &mut Effects, id: TimerId) {
        if self.opts.retry.is_some() && self.retries.remove(&id).is_some() {
            out.push(Effect::CancelTimer { id });
        }
    }

    /// Installs `entry` at `(level, digit)` and notifies the stored node
    /// that we are now its reverse neighbor (the blanket rule of §4: "when
    /// any node x sets Nx(i,j) = y, y ≠ x, x needs to send a
    /// RvNghNotiMsg"). `notify` is false on the paths where an immediate
    /// protocol reply to the stored node carries the same information.
    fn install(&mut self, level: usize, digit: u8, entry: Entry, notify: bool, out: &mut Effects) {
        debug_assert!(self.table.get(level, digit).is_none());
        self.table.set(level, digit, entry);
        self.trace(
            out,
            ProtocolEvent::EntryFilled {
                level,
                digit,
                node: entry.node,
                state: entry.state,
            },
        );
        if notify && entry.node != self.id {
            self.post(
                out,
                entry.node,
                Message::RvNghNoti {
                    recorded: entry.state,
                },
            );
            self.arm(out, TimerId::RvNgh { peer: entry.node });
        }
    }

    // ------------------------------------------------------------------
    // Timer expiry: bounded retransmission (lossy-transport extension)
    // ------------------------------------------------------------------

    /// Handles an expired retry timer: retransmits the guarded request if
    /// it is still outstanding and the budget allows, otherwise lets the
    /// timer die. Reachable only via [`Event::TimerFired`]; a no-op when no
    /// [`RetryPolicy`](crate::RetryPolicy) is installed.
    fn on_timer_fired(&mut self, id: TimerId, out: &mut Effects) {
        // The failure-detector tick rides the same timer channel but is
        // not a retry: dispatch it before the retry-policy gate so the
        // detector works with retries disabled.
        if let TimerId::FdProbe { .. } = id {
            if !matches!(self.status, Status::Departed | Status::Crashed) {
                self.on_fd_tick(out);
            }
            return;
        }
        let Some(rp) = self.opts.retry else {
            return;
        };
        if matches!(
            self.status,
            Status::Leaving | Status::Departed | Status::Crashed
        ) {
            self.retries.remove(&id);
            return;
        }
        let Some(&attempt) = self.retries.get(&id) else {
            return; // canceled concurrently; stale fire
        };
        let still_wanted = match id {
            TimerId::CpRst { peer } => {
                self.status == Status::Copying && self.copy_target == Some(peer)
            }
            TimerId::JoinWait { peer } | TimerId::JoinNoti { peer } => self.qr.contains(&peer),
            TimerId::SpeNoti { subject } => self.qsr.contains(&subject),
            TimerId::RvNgh { peer } => self.table.iter().any(|(_, _, e)| e.node == peer),
            TimerId::InSys { .. } => self.status == Status::InSystem,
            TimerId::FdProbe { .. } => unreachable!("dispatched before the retry gate"),
        };
        if !still_wanted {
            self.retries.remove(&id);
            return;
        }
        let limit = match id {
            TimerId::RvNgh { .. } | TimerId::InSys { .. } => rp.noti_repeats,
            _ => rp.max_retries,
        };
        if attempt >= limit {
            self.retries.remove(&id);
            self.trace(out, ProtocolEvent::RetriesExhausted { timer: id });
            if rp.join_fallback {
                self.join_exhausted_fallback(id, attempt, out);
            }
            return;
        }
        match id {
            TimerId::CpRst { peer } => {
                let level = self.copy_level as u8;
                self.post(out, peer, Message::CpRst { level });
            }
            TimerId::JoinWait { peer } => self.post(out, peer, Message::JoinWait),
            TimerId::JoinNoti { peer } => self.send_join_noti(peer, out),
            TimerId::SpeNoti { subject } => {
                // The chain restarts from whoever currently holds the
                // subject's slot in our table.
                let k = self.id.csuf_len(&subject);
                let holder = self.table.get(k, subject.digit(k)).map(|e| e.node);
                match holder {
                    Some(h) if h != subject && h != self.id => {
                        let initiator = self.id;
                        self.post(out, h, Message::SpeNoti { initiator, subject });
                    }
                    _ => {
                        // The subject landed in our own table (or the slot
                        // emptied): nothing remote remains outstanding.
                        self.qsr.remove(&subject);
                        self.retries.remove(&id);
                        if self.qr.is_empty()
                            && self.qsr.is_empty()
                            && self.status == Status::Notifying
                        {
                            self.switch_to_s_node(out);
                        }
                        return;
                    }
                }
            }
            TimerId::RvNgh { peer } => {
                let recorded = self
                    .table
                    .iter()
                    .find(|&(_, _, e)| e.node == peer)
                    .map(|(_, _, e)| e.state)
                    .expect("still_wanted checked an entry records the peer");
                self.post(out, peer, Message::RvNghNoti { recorded });
            }
            TimerId::InSys { peer } => self.post(out, peer, Message::InSysNoti),
            TimerId::FdProbe { .. } => unreachable!("dispatched before the retry gate"),
        }
        self.retries.insert(id, attempt + 1);
        // Reply-awaiting requests back off (a silent peer will not answer
        // a faster drumbeat); blind notification repeats keep their fixed
        // spacing so a lossless run's schedule never depends on the
        // backoff knobs.
        let delay_hint = match id {
            TimerId::RvNgh { .. } | TimerId::InSys { .. } => rp.timeout_us,
            _ => rp.retry_delay(self.timer_salt(id), attempt + 1),
        };
        out.push(Effect::SetTimer { id, delay_hint });
        self.trace(
            out,
            ProtocolEvent::RetrySent {
                timer: id,
                attempt: attempt + 1,
            },
        );
    }

    /// Deterministic per-`(node, timer)` jitter salt: FNV-1a over our
    /// digits, the timer kind, and the peer's digits. Stable across runs,
    /// platforms, and compiler versions (unlike [`std::hash`]'s default
    /// hasher), so jittered schedules can be pinned by goldens.
    fn timer_salt(&self, id: TimerId) -> u64 {
        const PRIME: u64 = 0x0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in self.id.digits_lsd() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        for b in id.kind_name().bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        for &b in id.peer().digits_lsd() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    }

    /// Retries on a join-critical request ran out with
    /// [`RetryPolicy::join_fallback`](crate::RetryPolicy) on: the silent
    /// peer is as good as dead for this join. Without a fallback the
    /// joiner strands forever — it never reaches *in_system*, so the
    /// failure detector never arms and nothing ever re-drives it. Condemn
    /// the peer and either restart the copy through an alternate contact
    /// (the peer was load-bearing: our copy target or awaited storer) or
    /// drop it from the notification wait sets so the switch to S-node
    /// can still happen (it was only owed an acknowledgement).
    ///
    /// `still_wanted` was already checked by the caller, so the timer's
    /// subject really is outstanding.
    fn join_exhausted_fallback(&mut self, id: TimerId, attempt: u32, out: &mut Effects) {
        // Condemnation here mirrors the failure detector's `declare_dead`
        // — including evicting the peer's table entries, so a rerouted
        // join does not carry a stale reference to the dead node into
        // *in_system* (repair refills the slots once the detector arms).
        let repair_on = self
            .opts
            .failure_detector()
            .map(|fd| fd.repair)
            .unwrap_or(false);
        match id {
            TimerId::CpRst { peer } => {
                self.declare_dead(peer, attempt, repair_on, out);
                self.restart_join(peer, out);
            }
            TimerId::JoinWait { peer } => {
                self.declare_dead(peer, attempt, repair_on, out);
                if self.status == Status::Waiting {
                    self.restart_join(peer, out);
                } else {
                    self.try_switch(out);
                }
            }
            TimerId::JoinNoti { peer } => {
                self.declare_dead(peer, attempt, repair_on, out);
                self.try_switch(out);
            }
            TimerId::SpeNoti { subject } => {
                // The chain's current holder is unreachable; stop waiting
                // on the subject (the holder, not the subject, is the
                // silent party, so nobody is condemned here).
                self.qsr.remove(&subject);
                self.try_switch(out);
            }
            TimerId::RvNgh { .. } | TimerId::InSys { .. } | TimerId::FdProbe { .. } => {}
        }
    }

    /// Restarts the join from level 0 through a fallback contact after
    /// `dead` (condemned by the caller) stopped answering: the first
    /// live node our table already stores, else the original gateway.
    /// With no live contact left the joiner is stranded and says so in
    /// the trace; outstanding state is kept so a late reply can still
    /// resume it.
    fn restart_join(&mut self, dead: NodeId, out: &mut Effects) {
        let via = self
            .table
            .iter()
            .map(|(_, _, e)| e.node)
            .find(|n| *n != self.id && !self.repair.is_condemned(n))
            .or_else(|| {
                self.g0
                    .filter(|g| *g != dead && !self.repair.is_condemned(g))
            });
        let Some(via) = via else {
            self.trace(out, ProtocolEvent::JoinStranded { dead });
            return;
        };
        // Forget every reply we were waiting on and cancel the timers
        // guarding them; `qn` is kept so already-notified nodes are not
        // re-notified, and RvNgh/InSys repeats for entries already
        // installed stay valid.
        let stale: Vec<TimerId> = self
            .retries
            .keys()
            .copied()
            .filter(|t| {
                matches!(
                    t,
                    TimerId::CpRst { .. }
                        | TimerId::JoinWait { .. }
                        | TimerId::JoinNoti { .. }
                        | TimerId::SpeNoti { .. }
                )
            })
            .collect();
        for t in stale {
            self.disarm(out, t);
        }
        self.qr.clear();
        self.qsr.clear();
        self.trace(out, ProtocolEvent::JoinRerouted { dead, via });
        self.set_status(Status::Copying, out);
        self.noti_level = 0;
        self.copy_level = 0;
        self.copy_target = Some(via);
        self.post(out, via, Message::CpRst { level: 0 });
        self.arm(out, TimerId::CpRst { peer: via });
    }

    /// Switches to S-node if nothing is outstanding any more (the same
    /// check the reply handlers run).
    fn try_switch(&mut self, out: &mut Effects) {
        if self.qr.is_empty() && self.qsr.is_empty() && self.status == Status::Notifying {
            self.switch_to_s_node(out);
        }
    }

    // ------------------------------------------------------------------
    // Status copying (Figure 5)
    // ------------------------------------------------------------------

    fn on_cprst(&mut self, from: NodeId, level: u8, out: &mut Effects) {
        // Any node replies to a copy request with no waiting, whatever its
        // status (Theorem 2's proof relies on this).
        let table = self.table.snapshot();
        self.post(out, from, Message::CpRly { level, table });
    }

    fn on_cprly(&mut self, from: NodeId, level: u8, table: TableSnapshot, out: &mut Effects) {
        if self.status != Status::Copying
            || self.copy_target != Some(from)
            || level as usize != self.copy_level
        {
            // Stale reply (cannot happen with reliable one-outstanding
            // requests, but a lossy or duplicating network layer can
            // produce one).
            return;
        }
        self.disarm(out, TimerId::CpRst { peer: from });
        let i = self.copy_level;
        // Copy level i of g's table into level i of our own. Entries
        // naming the joiner itself are possible after a join_fallback
        // restart (the aborted first attempt already planted us in other
        // tables); they are skipped, not copied.
        for row in table.rows().iter().filter(|r| r.level as usize == i) {
            if self.table.get(i, row.digit).is_none()
                && row.entry.node != self.id
                && !self.repair.is_condemned(&row.entry.node)
            {
                self.install(i, row.digit, row.entry, true, out);
            }
        }
        // g = N_p(i, x[i]); s = its recorded state. A condemned g (only
        // possible after a join_fallback restart) is treated as absent, so
        // a fallback join cannot be routed back onto a node it already
        // found dead — and so is an entry naming the joiner itself, which
        // would otherwise make the restarted join wait on *us*.
        let next = table
            .get(i, self.id.digit(i))
            .filter(|e| e.node != self.id && !self.repair.is_condemned(&e.node));
        self.copy_level += 1;
        match next {
            Some(e) if e.state == NodeState::S => {
                // Continue the loop: copy the next level from g.
                debug_assert!(
                    self.copy_level < self.space.digit_count(),
                    "next copy target would share all digits, i.e. be us"
                );
                debug_assert_ne!(e.node, self.id);
                self.copy_target = Some(e.node);
                self.post(
                    out,
                    e.node,
                    Message::CpRst {
                        level: self.copy_level as u8,
                    },
                );
                self.arm(out, TimerId::CpRst { peer: e.node });
            }
            Some(e) => self.enter_waiting(e.node, out), // g exists but is a T-node
            None => self.enter_waiting(from, out),      // g == null: wait on p
        }
    }

    /// End of Figure 5: install self entries, switch to *waiting*, send the
    /// first `JoinWaitMsg`.
    fn enter_waiting(&mut self, target: NodeId, out: &mut Effects) {
        let me = self.id;
        for i in 0..self.space.digit_count() {
            // The primary (i, x[i])-neighbor of x is x itself; overwrite
            // whatever was copied there.
            self.table.set(
                i,
                me.digit(i),
                Entry {
                    node: me,
                    state: NodeState::T,
                },
            );
        }
        self.set_status(Status::Waiting, out);
        self.copy_target = None;
        debug_assert_ne!(target, self.id);
        self.qn.insert(target);
        self.qr.insert(target);
        self.post(out, target, Message::JoinWait);
        self.arm(out, TimerId::JoinWait { peer: target });
    }

    // ------------------------------------------------------------------
    // JoinWaitMsg (Figure 6) and JoinWaitRlyMsg (Figure 7)
    // ------------------------------------------------------------------

    fn on_joinwait(&mut self, from: NodeId, out: &mut Effects) {
        if self.status != Status::InSystem {
            // A T-node must delay its reply until it becomes an S-node.
            self.qj.insert(from);
            return;
        }
        let k = self.id.csuf_len(&from);
        match self.table.get(k, from.digit(k)) {
            Some(e) if e.node != from => {
                let table = self.table.snapshot();
                self.post(
                    out,
                    from,
                    Message::JoinWaitRly {
                        positive: false,
                        next: e.node,
                        table,
                    },
                );
            }
            existing => {
                // Entry is empty (the expected case) or already stores the
                // joiner (possible when we learned it from a snapshot).
                if existing.is_none() {
                    // The positive reply informs `from`; no RvNghNoti needed.
                    self.install(
                        k,
                        from.digit(k),
                        Entry {
                            node: from,
                            state: NodeState::T,
                        },
                        false,
                        out,
                    );
                }
                let table = self.table.snapshot();
                self.post(
                    out,
                    from,
                    Message::JoinWaitRly {
                        positive: true,
                        next: from,
                        table,
                    },
                );
            }
        }
    }

    fn on_joinwaitrly(
        &mut self,
        from: NodeId,
        positive: bool,
        next: NodeId,
        table: TableSnapshot,
        out: &mut Effects,
    ) {
        let awaited = self.qr.remove(&from);
        if !awaited && self.opts.retry.is_some() {
            return; // duplicate reply under retransmission; already processed
        }
        self.disarm(out, TimerId::JoinWait { peer: from });
        let k = self.id.csuf_len(&from);
        // The sender replied, so it is an S-node; upgrade its recorded state.
        self.flip_state(k, from.digit(k), from, NodeState::S, out);
        if positive {
            self.set_status(Status::Notifying, out);
            self.noti_level = k;
            self.table.add_reverse(k, self.id.digit(k), from);
        } else {
            debug_assert_ne!(next, self.id);
            self.qn.insert(next);
            self.qr.insert(next);
            self.post(out, next, Message::JoinWait);
            self.arm(out, TimerId::JoinWait { peer: next });
        }
        self.check_ngh_table(&table, out);
        if self.status == Status::Notifying && self.qr.is_empty() && self.qsr.is_empty() {
            self.switch_to_s_node(out);
        }
    }

    // ------------------------------------------------------------------
    // Subroutine Check_Ngh_Table (Figure 8)
    // ------------------------------------------------------------------

    fn check_ngh_table(&mut self, table: &TableSnapshot, out: &mut Effects) {
        for &row in table.rows() {
            let u = row.entry.node;
            if u == self.id || self.repair.is_condemned(&u) {
                continue;
            }
            let k = self.id.csuf_len(&u);
            if self.table.get(k, u.digit(k)).is_none() {
                self.install(
                    k,
                    u.digit(k),
                    Entry {
                        node: u,
                        state: row.entry.state,
                    },
                    true,
                    out,
                );
            }
            if self.status == Status::Notifying && k >= self.noti_level && !self.qn.contains(&u) {
                self.qn.insert(u);
                self.qr.insert(u);
                self.send_join_noti(u, out);
                self.arm(out, TimerId::JoinNoti { peer: u });
            }
        }
    }

    /// Builds and posts one `JoinNotiMsg` to `u` (also the retransmission
    /// path, which is why payload construction recomputes from the current
    /// table).
    fn send_join_noti(&mut self, u: NodeId, out: &mut Effects) {
        let k = self.id.csuf_len(&u);
        let payload = self.noti_payload(k);
        let filled_bits = match self.opts.payload {
            PayloadMode::BitVector => Some(BitVec {
                noti_level: self.noti_level as u8,
                words: self.table.filled_bitvec(),
            }),
            _ => None,
        };
        self.post(
            out,
            u,
            Message::JoinNoti {
                table: payload,
                filled_bits,
            },
        );
    }

    /// Table payload of a `JoinNotiMsg` to a node sharing `k` digits.
    fn noti_payload(&self, k: usize) -> TableSnapshot {
        match self.opts.payload {
            PayloadMode::Full => self.table.snapshot(),
            // §6.2: levels noti_level ..= k suffice.
            PayloadMode::Levels | PayloadMode::BitVector => self
                .table
                .snapshot_levels(self.noti_level, (k + 1).min(self.space.digit_count())),
        }
    }

    // ------------------------------------------------------------------
    // JoinNotiMsg (Figure 9) and JoinNotiRlyMsg (Figure 10)
    // ------------------------------------------------------------------

    fn on_joinnoti(
        &mut self,
        from: NodeId,
        table: TableSnapshot,
        filled_bits: Option<BitVec>,
        out: &mut Effects,
    ) {
        let k = self.id.csuf_len(&from);
        if self.table.get(k, from.digit(k)).is_none() {
            // The (positive) reply informs `from`; no RvNghNoti needed.
            self.install(
                k,
                from.digit(k),
                Entry {
                    node: from,
                    state: NodeState::T,
                },
                false,
                out,
            );
        }
        let flag = self.status == Status::InSystem
            && table.get(k, self.id.digit(k)).map(|e| e.node) != Some(self.id);
        let positive = self
            .table
            .get(k, from.digit(k))
            .is_some_and(|e| e.node == from);
        let reply_table = match (&self.opts.payload, &filled_bits) {
            (PayloadMode::BitVector, Some(bits)) => self
                .table
                .snapshot_bitvec(bits.noti_level as usize, &bits.words),
            _ => self.table.snapshot(),
        };
        self.post(
            out,
            from,
            Message::JoinNotiRly {
                positive,
                table: reply_table,
                flag,
            },
        );
        self.check_ngh_table(&table, out);
    }

    fn on_joinnotirly(
        &mut self,
        from: NodeId,
        positive: bool,
        table: TableSnapshot,
        flag: bool,
        out: &mut Effects,
    ) {
        let awaited = self.qr.remove(&from);
        if !awaited && self.opts.retry.is_some() {
            return; // duplicate reply under retransmission; already processed
        }
        self.disarm(out, TimerId::JoinNoti { peer: from });
        let k = self.id.csuf_len(&from);
        if positive {
            self.table.add_reverse(k, self.id.digit(k), from);
        }
        if flag && k > self.noti_level && !self.qsn.contains(&from) {
            let holder = self
                .table
                .get(k, from.digit(k))
                .expect("flagged entry must be occupied by some other node")
                .node;
            debug_assert_ne!(holder, from);
            self.qsn.insert(from);
            self.qsr.insert(from);
            self.post(
                out,
                holder,
                Message::SpeNoti {
                    initiator: self.id,
                    subject: from,
                },
            );
            self.arm(out, TimerId::SpeNoti { subject: from });
        }
        self.check_ngh_table(&table, out);
        if self.qr.is_empty() && self.qsr.is_empty() && self.status == Status::Notifying {
            self.switch_to_s_node(out);
        }
    }

    // ------------------------------------------------------------------
    // SpeNotiMsg (Figure 11) and SpeNotiRlyMsg (Figure 12)
    // ------------------------------------------------------------------

    fn on_spenoti(&mut self, initiator: NodeId, subject: NodeId, out: &mut Effects) {
        debug_assert_ne!(subject, self.id, "SpeNoti delivered to its subject");
        if subject == self.id {
            // Defensive: we trivially "store" ourselves; acknowledge.
            self.post(out, initiator, Message::SpeNotiRly { subject });
            return;
        }
        let k = self.id.csuf_len(&subject);
        if self.table.get(k, subject.digit(k)).is_none() {
            self.install(
                k,
                subject.digit(k),
                Entry {
                    node: subject,
                    state: NodeState::S,
                },
                true,
                out,
            );
        }
        let stored = self
            .table
            .get(k, subject.digit(k))
            .expect("just installed or occupied")
            .node;
        if stored != subject {
            self.post(out, stored, Message::SpeNoti { initiator, subject });
        } else if initiator == self.id {
            // We initiated and the chain came back to us having stored the
            // subject; nothing is outstanding to acknowledge remotely.
            if self.qsr.remove(&subject) {
                self.disarm(out, TimerId::SpeNoti { subject });
            }
            if self.qr.is_empty() && self.qsr.is_empty() && self.status == Status::Notifying {
                self.switch_to_s_node(out);
            }
        } else {
            self.post(out, initiator, Message::SpeNotiRly { subject });
        }
    }

    fn on_spenotirly(&mut self, subject: NodeId, out: &mut Effects) {
        let awaited = self.qsr.remove(&subject);
        if !awaited && self.opts.retry.is_some() {
            return; // duplicate reply under retransmission; already processed
        }
        self.disarm(out, TimerId::SpeNoti { subject });
        if self.qr.is_empty() && self.qsr.is_empty() && self.status == Status::Notifying {
            self.switch_to_s_node(out);
        }
    }

    // ------------------------------------------------------------------
    // Switch_To_S_Node (Figure 13) and InSysNotiMsg (Figure 14)
    // ------------------------------------------------------------------

    fn switch_to_s_node(&mut self, out: &mut Effects) {
        debug_assert_eq!(self.status, Status::Notifying);
        if self.status == Status::InSystem {
            return;
        }
        self.set_status(Status::InSystem, out);
        let me = self.id;
        for i in 0..self.space.digit_count() {
            self.flip_state(i, me.digit(i), me, NodeState::S, out);
        }
        for v in self.table.reverse_neighbors() {
            if v != me {
                self.post(out, v, Message::InSysNoti);
                self.arm(out, TimerId::InSys { peer: v });
            }
        }
        for u in std::mem::take(&mut self.qj) {
            let k = me.csuf_len(&u);
            match self.table.get(k, u.digit(k)) {
                None => {
                    self.install(
                        k,
                        u.digit(k),
                        Entry {
                            node: u,
                            state: NodeState::T,
                        },
                        false,
                        out,
                    );
                    let table = self.table.snapshot();
                    self.post(
                        out,
                        u,
                        Message::JoinWaitRly {
                            positive: true,
                            next: u,
                            table,
                        },
                    );
                }
                Some(e) if e.node == u => {
                    let table = self.table.snapshot();
                    self.post(
                        out,
                        u,
                        Message::JoinWaitRly {
                            positive: true,
                            next: u,
                            table,
                        },
                    );
                }
                Some(e) => {
                    let table = self.table.snapshot();
                    self.post(
                        out,
                        u,
                        Message::JoinWaitRly {
                            positive: false,
                            next: e.node,
                            table,
                        },
                    );
                }
            }
        }
        self.start_failure_detector(out);
    }

    fn on_insysnoti(&mut self, from: NodeId, out: &mut Effects) {
        let k = self.id.csuf_len(&from);
        self.flip_state(k, from.digit(k), from, NodeState::S, out);
    }

    // ------------------------------------------------------------------
    // RvNghNotiMsg / RvNghNotiRlyMsg
    // ------------------------------------------------------------------

    fn on_rvnghnoti(&mut self, from: NodeId, recorded: NodeState, out: &mut Effects) {
        // `from` stored us in its (k, self[k]) entry; we are now a reverse
        // neighbor of... it; equivalently it is a reverse (k, self[k])-
        // neighbor of us.
        let k = self.id.csuf_len(&from);
        self.table.add_reverse(k, self.id.digit(k), from);
        let actual = if self.status == Status::InSystem {
            NodeState::S
        } else {
            NodeState::T
        };
        if actual != recorded {
            self.post(out, from, Message::RvNghNotiRly { actual });
        }
    }

    fn on_rvnghnotirly(&mut self, from: NodeId, actual: NodeState, out: &mut Effects) {
        let k = self.id.csuf_len(&from);
        self.disarm(out, TimerId::RvNgh { peer: from });
        if self.opts.retry.is_some() && actual != NodeState::S {
            // Under retransmission a stale duplicate could otherwise
            // permanently downgrade S back to T; the S-ward direction is
            // re-driven by InSysNoti repeats, the T-ward one is not.
            return;
        }
        self.flip_state(k, from.digit(k), from, actual, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, VecDeque};

    /// A tiny synchronous FIFO network for engine-level tests.
    struct Pump {
        space: IdSpace,
        nodes: HashMap<NodeId, JoinEngine>,
        queue: VecDeque<(NodeId, NodeId, Message)>,
    }

    impl Pump {
        fn new(space: IdSpace) -> Self {
            Pump {
                space,
                nodes: HashMap::new(),
                queue: VecDeque::new(),
            }
        }

        fn seed(&mut self, id: &str) -> NodeId {
            let id = self.space.parse_id(id).unwrap();
            self.nodes.insert(
                id,
                JoinEngine::new_seed(self.space, ProtocolOptions::new(), id),
            );
            id
        }

        fn join(&mut self, id: &str, via: NodeId) -> NodeId {
            let id = self.space.parse_id(id).unwrap();
            let mut e = JoinEngine::new_joiner(self.space, ProtocolOptions::new(), id);
            let mut out = Effects::new();
            e.start_join(via, &mut out);
            self.nodes.insert(id, e);
            self.enqueue(id, &mut out);
            id
        }

        fn enqueue(&mut self, from: NodeId, out: &mut Effects) {
            for (to, msg) in out.drain_sends() {
                self.queue.push_back((from, to, msg));
            }
        }

        fn run(&mut self) {
            let mut steps = 0;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 1_000_000, "protocol did not quiesce");
                let mut out = Effects::new();
                self.nodes
                    .get_mut(&to)
                    .unwrap_or_else(|| panic!("message to unknown node {to}"))
                    .handle(from, msg, &mut out);
                self.enqueue(to, &mut out);
            }
        }

        fn node(&self, id: NodeId) -> &JoinEngine {
            &self.nodes[&id]
        }
    }

    #[test]
    fn single_join_reaches_in_system() {
        let space = IdSpace::new(4, 3).unwrap();
        let mut p = Pump::new(space);
        let a = p.seed("000");
        let b = p.join("321", a);
        p.run();
        assert_eq!(p.node(b).status(), Status::InSystem);
        // b's noti-set is all of V (no shared suffix): noti_level = 0.
        assert_eq!(p.node(b).noti_level(), 0);
        // a stored b at (0, 1); b stored a at (0, 0).
        assert_eq!(p.node(a).table().get(0, 1).unwrap().node, b);
        assert_eq!(p.node(a).table().get(0, 1).unwrap().state, NodeState::S);
        assert_eq!(p.node(b).table().get(0, 0).unwrap().node, a);
    }

    #[test]
    fn sequential_joins_build_mutual_reachability() {
        let space = IdSpace::new(4, 4).unwrap();
        let mut p = Pump::new(space);
        let a = p.seed("0000");
        let ids = ["3210", "1230", "2130", "3213", "0103"];
        let mut all = vec![a];
        for s in ids {
            let n = p.join(s, a);
            p.run();
            all.push(n);
            assert_eq!(p.node(n).status(), Status::InSystem, "joiner {s}");
        }
        // Every pair must resolve: for every x, y there is a neighbor chain;
        // spot-check the first hop exists for every (x, y) pair.
        for &x in &all {
            for &y in &all {
                if x == y {
                    continue;
                }
                let k = x.csuf_len(&y);
                let e = p.node(x).table().get(k, y.digit(k));
                assert!(
                    e.is_some(),
                    "{x} has no ({k}, {}) neighbor toward {y}",
                    y.digit(k)
                );
            }
        }
    }

    #[test]
    fn concurrent_dependent_joins_converge() {
        // The paper's hard case: 10261 and 00261 share the suffix 0261 and
        // join concurrently (b=8, d=5, §3.3).
        let space = IdSpace::new(8, 5).unwrap();
        let mut p = Pump::new(space);
        let seeds = ["72430", "10353", "62332", "13141", "31701"];
        let v: Vec<NodeId> = seeds.iter().map(|s| p.seed(s)).collect();
        // Manually wire V into a consistent network via sequential joins
        // from the first seed... simpler: rebuild with joins.
        let mut p = Pump::new(space);
        let v0 = p.seed(seeds[0]);
        for s in &seeds[1..] {
            p.join(s, v0);
            p.run();
        }
        let w = ["10261", "47051", "00261"];
        let joined: Vec<NodeId> = w.iter().map(|s| p.join(s, v0)).collect();
        p.run();
        for (&id, s) in joined.iter().zip(w) {
            assert_eq!(p.node(id).status(), Status::InSystem, "joiner {s}");
        }
        // All 8 nodes mutually first-hop-reachable.
        let all: Vec<NodeId> = v.iter().copied().chain(joined.iter().copied()).collect();
        for &x in &all {
            for &y in &all {
                if x == y {
                    continue;
                }
                let k = x.csuf_len(&y);
                assert!(
                    p.node(x).table().get(k, y.digit(k)).is_some(),
                    "{x} cannot take a first hop toward {y}"
                );
            }
        }
        // 10261 and 00261 must know each other (condition (3) of §3.3).
        let a = space.parse_id("10261").unwrap();
        let b = space.parse_id("00261").unwrap();
        assert_eq!(p.node(a).table().get(4, 0).unwrap().node, b);
        assert_eq!(p.node(b).table().get(4, 1).unwrap().node, a);
    }

    #[test]
    fn theorem_3_bound_on_cprst_plus_joinwait() {
        let space = IdSpace::new(4, 4).unwrap();
        let mut p = Pump::new(space);
        let a = p.seed("0000");
        let ids = ["3210", "1230", "2130", "3213", "0103", "2222", "1111"];
        for s in ids {
            let n = p.join(s, a);
            p.run();
            let sent = p.node(n).stats().cprst_plus_joinwait();
            assert!(
                sent <= (space.digit_count() + 1) as u64,
                "{s} sent {sent} > d+1"
            );
        }
    }

    #[test]
    fn joiner_states_upgrade_to_s_everywhere() {
        let space = IdSpace::new(4, 3).unwrap();
        let mut p = Pump::new(space);
        let a = p.seed("000");
        let ids = ["111", "211", "311"]; // force shared suffixes
        for s in ids {
            p.join(s, a);
        }
        p.run();
        for e in p.nodes.values() {
            assert_eq!(e.status(), Status::InSystem);
            for (_, _, entry) in e.table().iter() {
                assert_eq!(
                    entry.state,
                    NodeState::S,
                    "{} still records {} as T",
                    e.id(),
                    entry.node
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "join already started")]
    fn start_join_twice_panics() {
        let space = IdSpace::new(4, 3).unwrap();
        let a = space.parse_id("000").unwrap();
        let b = space.parse_id("111").unwrap();
        let mut e = JoinEngine::new_joiner(space, ProtocolOptions::new(), b);
        let mut out = Effects::new();
        e.start_join(a, &mut out);
        e.start_join(a, &mut out);
    }

    #[test]
    fn default_options_emit_only_send_effects() {
        let space = IdSpace::new(4, 3).unwrap();
        let a = space.parse_id("000").unwrap();
        let b = space.parse_id("321").unwrap();
        let mut e = JoinEngine::new_joiner(space, ProtocolOptions::new(), b);
        let mut out = Effects::new();
        e.start_join(a, &mut out);
        for fx in out.drain() {
            assert!(matches!(fx, Effect::Send { .. }), "unexpected {fx:?}");
        }
    }

    #[test]
    fn retry_mode_arms_a_timer_on_start_join() {
        let space = IdSpace::new(4, 3).unwrap();
        let a = space.parse_id("000").unwrap();
        let b = space.parse_id("321").unwrap();
        let opts = ProtocolOptions::new().with_retry(crate::options::RetryPolicy {
            timeout_us: 777,
            max_retries: 3,
            noti_repeats: 2,
            ..Default::default()
        });
        let mut e = JoinEngine::new_joiner(space, opts, b);
        let mut out = Effects::new();
        e.start_join(a, &mut out);
        let fx: Vec<Effect> = out.drain().collect();
        assert!(fx.iter().any(|f| matches!(
            f,
            Effect::SetTimer { id: TimerId::CpRst { peer }, delay_hint: 777 } if *peer == a
        )));
    }

    #[test]
    fn timer_retry_is_bounded_and_traced() {
        let space = IdSpace::new(4, 3).unwrap();
        let a = space.parse_id("000").unwrap();
        let b = space.parse_id("321").unwrap();
        let opts = ProtocolOptions::new()
            .with_retry(crate::options::RetryPolicy {
                timeout_us: 100,
                max_retries: 2,
                noti_repeats: 1,
                ..Default::default()
            })
            .with_trace();
        let mut e = JoinEngine::new_joiner(space, opts, b);
        let mut out = Effects::new();
        e.start_join(a, &mut out);
        out.drain().count();
        let id = TimerId::CpRst { peer: a };
        let mut resends = 0;
        let mut exhausted = 0;
        for _ in 0..5 {
            let mut out = Effects::new();
            e.on_event(Event::TimerFired { id }, &mut out);
            for fx in out.drain() {
                match fx {
                    Effect::Send {
                        to,
                        msg: Message::CpRst { level: 0 },
                    } if to == a => {
                        resends += 1;
                    }
                    Effect::Trace(ProtocolEvent::RetriesExhausted { .. }) => exhausted += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(resends, 2, "max_retries bounds retransmissions");
        assert_eq!(exhausted, 1, "exhaustion is traced exactly once");
    }
}
