//! The consistency checker: Definition 3.8 of the paper, plus reachability.
//!
//! A network `⟨V, N(V)⟩` is *consistent* iff for every node `x` and entry
//! `(i, j)`:
//!
//! * **(a) false-negative freedom** — if some node carries the desired
//!   suffix `j ∘ x[i-1..0]`, the entry stores such a node;
//! * **(b) false-positive freedom** — if no node carries the desired
//!   suffix, the entry is empty.
//!
//! By Lemma 3.1, (a) is equivalent to every node being reachable from every
//! other node; [`check_reachability`] verifies that equivalence directly.
//!
//! Three entry points, one semantics:
//!
//! * [`check_consistency`] — builds a [`SuffixIndex`] over the table
//!   owners and checks every entry against it, fanning the per-node loop
//!   across cores. `O(n · d · b)` after an `O(n · d)` index build.
//! * [`check_consistency_with_index`] — same check against a
//!   caller-maintained index; churn experiments update one incrementally
//!   instead of re-indexing per wave.
//! * [`check_consistency_naive`] — the specification transcribed
//!   literally, scanning all of `V` per entry (`O(n² · d · b)`). Kept as
//!   the reference implementation the fast paths are tested (and
//!   benchmarked) against.
//!
//! All three report identical [`Violation`] lists: witnesses are always
//! the *smallest* live node carrying the desired suffix.

use std::fmt;

use hyperring_id::{IdSpace, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::digest::{digest_entry, digest_reverse_sets, digest_table_prefix, Fnv};
use crate::routing::route;
use crate::suffix_compact::CompactSuffixIndex;
use crate::suffix_index::SuffixIndex;
use crate::table::{Entry, NeighborTable, NodeState};

/// One consistency violation found by [`check_consistency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Condition (a) violated: nodes with the desired suffix exist but the
    /// entry is empty.
    FalseNegative {
        /// The node whose table is inconsistent.
        node: NodeId,
        /// Entry level.
        level: usize,
        /// Entry digit.
        digit: u8,
        /// A node that should have been stored (a witness).
        witness: NodeId,
    },
    /// Condition (b) violated: the entry stores a node although no live
    /// node has the desired suffix (or it stores a node with the *wrong*
    /// suffix).
    FalsePositive {
        /// The node whose table is inconsistent.
        node: NodeId,
        /// Entry level.
        level: usize,
        /// Entry digit.
        digit: u8,
        /// The bogus stored node.
        stored: NodeId,
    },
    /// An entry stores a node that is not a member of the network at all.
    UnknownNeighbor {
        /// The node whose table is inconsistent.
        node: NodeId,
        /// Entry level.
        level: usize,
        /// Entry digit.
        digit: u8,
        /// The stored, unknown node.
        stored: NodeId,
    },
    /// An entry still records state `T` although the join process is over.
    StaleState {
        /// The node whose table holds the stale entry.
        node: NodeId,
        /// Entry level.
        level: usize,
        /// Entry digit.
        digit: u8,
        /// The neighbor still recorded as `T`.
        stored: NodeId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::FalseNegative {
                node,
                level,
                digit,
                witness,
            } => write!(
                f,
                "false negative: {node} entry ({level},{digit}) empty but {witness} exists"
            ),
            Violation::FalsePositive {
                node,
                level,
                digit,
                stored,
            } => write!(
                f,
                "false positive: {node} entry ({level},{digit}) stores {stored} with wrong/ghost suffix"
            ),
            Violation::UnknownNeighbor {
                node,
                level,
                digit,
                stored,
            } => write!(
                f,
                "unknown neighbor: {node} entry ({level},{digit}) stores non-member {stored}"
            ),
            Violation::StaleState {
                node,
                level,
                digit,
                stored,
            } => write!(
                f,
                "stale state: {node} entry ({level},{digit}) records {stored} as T"
            ),
        }
    }
}

/// Result of a consistency check.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    violations: Vec<Violation>,
    nodes: usize,
    entries_checked: usize,
}

impl ConsistencyReport {
    /// Assembles a report (crate-internal: the incremental checker merges
    /// cached and re-verified per-node results into one).
    pub(crate) fn assemble(
        violations: Vec<Violation>,
        nodes: usize,
        entries_checked: usize,
    ) -> Self {
        ConsistencyReport {
            violations,
            nodes,
            entries_checked,
        }
    }

    /// Whether no violation was found.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations, in table order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of nodes checked.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of table entries checked.
    pub fn entries_checked(&self) -> usize {
        self.entries_checked
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_consistent() {
            write!(
                f,
                "consistent: {} nodes, {} entries",
                self.nodes, self.entries_checked
            )
        } else {
            writeln!(
                f,
                "INCONSISTENT: {} violations over {} nodes",
                self.violations.len(),
                self.nodes
            )?;
            for v in self.violations.iter().take(20) {
                writeln!(f, "  {v}")?;
            }
            if self.violations.len() > 20 {
                writeln!(f, "  … and {} more", self.violations.len() - 20)?;
            }
            Ok(())
        }
    }
}

/// Checks one node's table against the index. Returns the violations in
/// entry order; the entry count is `d · b`, the same for every node.
fn check_table(space: IdSpace, t: &NeighborTable, index: &SuffixIndex) -> Vec<Violation> {
    let x = t.owner();
    let mut violations = Vec::new();
    for i in 0..space.digit_count() {
        for j in 0..space.base() as u8 {
            let desired = t.desired_suffix(i, j);
            let witness = index.witness(&desired);
            match (t.get(i, j), witness) {
                (None, Some(w)) => violations.push(Violation::FalseNegative {
                    node: x,
                    level: i,
                    digit: j,
                    witness: w,
                }),
                (Some(e), w) => {
                    if !index.contains(&e.node) {
                        violations.push(Violation::UnknownNeighbor {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    } else if w.is_none() || !e.node.has_suffix(&desired) {
                        violations.push(Violation::FalsePositive {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    } else if e.state == NodeState::T {
                        violations.push(Violation::StaleState {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    }
                }
                (None, None) => {}
            }
        }
    }
    violations
}

/// Checks Definition 3.8 over a closed set of tables (one per live node),
/// and additionally flags entries still recorded as `T` — after all joins
/// have completed, every neighbor must be known to be an S-node.
///
/// Builds a [`SuffixIndex`] over the table owners, then checks every
/// node's table against it in parallel. The result is deterministic:
/// violations come back in table order regardless of thread count, and
/// the reported witness for a missing entry is always the smallest
/// carrier of the desired suffix.
///
/// # Examples
///
/// ```
/// use hyperring_core::{build_consistent_tables, check_consistency};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 3)?;
/// let ids: Vec<_> = ["012", "230", "111"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let mut tables = build_consistent_tables(space, &ids);
/// assert!(check_consistency(space, &tables).is_consistent());
/// // Blanking a required entry is detected as a false negative.
/// tables[0].clear(0, 1);
/// let report = check_consistency(space, &tables);
/// assert!(!report.is_consistent());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `tables` is empty or contains duplicate owners.
pub fn check_consistency(space: IdSpace, tables: &[NeighborTable]) -> ConsistencyReport {
    assert!(!tables.is_empty(), "no tables to check");
    let index = SuffixIndex::build(space, tables.iter().map(|t| t.owner()));
    assert_eq!(index.len(), tables.len(), "duplicate table owners");
    check_consistency_with_index(space, tables, &index)
}

/// [`check_consistency`] against a caller-maintained [`SuffixIndex`].
///
/// The index defines the live membership: witnesses and the
/// [`Violation::UnknownNeighbor`] test both come from it, so it must
/// reflect exactly the owners of `tables`. Churn experiments keep one
/// index across waves, applying each join/departure incrementally instead
/// of re-indexing `O(n · d)` state per wave.
pub fn check_consistency_with_index(
    space: IdSpace,
    tables: &[NeighborTable],
    index: &SuffixIndex,
) -> ConsistencyReport {
    let per_node: Vec<Vec<Violation>> = tables
        .par_iter()
        .map(|t| check_table(space, t, index))
        .collect();
    ConsistencyReport {
        violations: per_node.into_iter().flatten().collect(),
        nodes: tables.len(),
        entries_checked: tables.len() * space.digit_count() * space.base() as usize,
    }
}

/// Checks one node's table against a **sealed** [`CompactSuffixIndex`] by
/// range descent, without constructing a single `Suffix` or `NodeId`
/// witness on the happy path.
///
/// Invariant driving the walk: in suffix order, the carriers of the
/// owner's length-`i` suffix `x[i-1..0]` form one contiguous range, and
/// within that range the digit at position `i` ascends. So the per-digit
/// carrier sub-ranges of level `i` fall out of `b` binary searches, and
/// descending to level `i+1` just narrows to the owner's own digit's
/// sub-range. Per entry the checks reduce to: sub-range emptiness (the
/// witness-existence test), a membership binary search for the stored
/// node, and the integer `fits` predicate — which equals
/// `has_suffix(desired_suffix(i, j))` by definition. A witness `NodeId`
/// is only materialized on the (rare) false-negative path, via the
/// index's numeric-minimum query — the same "smallest carrier" the
/// [`SuffixIndex`] checkers report.
///
/// `on_entry` is invoked for every **non-empty** entry in slot order
/// (level-major, digit ascending) — the hook the combined digest+check
/// pass uses to fold the digest out of the same traversal.
pub(crate) fn check_table_compact(
    space: IdSpace,
    t: &NeighborTable,
    index: &CompactSuffixIndex,
    mut on_entry: impl FnMut(usize, u8, &Entry),
) -> Vec<Violation> {
    let x = t.owner();
    let b = space.base() as usize;
    let mut violations = Vec::new();
    let mut bounds = vec![0usize; b + 1];
    // Carriers of the empty suffix: everyone.
    let (mut lo, mut hi) = (0usize, index.len());
    for i in 0..space.digit_count() {
        bounds[0] = lo; // every digit is >= 0
        for (j, bound) in bounds.iter_mut().enumerate().skip(1).take(b - 1) {
            *bound = index.lower_bound_digit(lo, hi, i, j as u8);
        }
        bounds[b] = hi; // every digit is < b
        for j in 0..b {
            let (sub_lo, sub_hi) = (bounds[j], bounds[j + 1]);
            let j = j as u8;
            match (t.get(i, j), sub_lo < sub_hi) {
                (None, true) => {
                    let w = index
                        .min_in_range(sub_lo, sub_hi)
                        .expect("non-empty carrier range has a minimum");
                    violations.push(Violation::FalseNegative {
                        node: x,
                        level: i,
                        digit: j,
                        witness: index.resolve(w),
                    });
                }
                (None, false) => {}
                (Some(e), carried) => {
                    on_entry(i, j, &e);
                    if !index.contains(&e.node) {
                        violations.push(Violation::UnknownNeighbor {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    } else if !carried || !t.fits(i, j, &e.node) {
                        violations.push(Violation::FalsePositive {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    } else if e.state == NodeState::T {
                        violations.push(Violation::StaleState {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    }
                }
            }
        }
        let own = x.digit(i) as usize;
        (lo, hi) = (bounds[own], bounds[own + 1]);
    }
    violations
}

/// Fans [`check_table_compact`] over borrowed tables in parallel; the
/// shared tail of the streaming entry points. Deterministic: compat-rayon
/// hands each worker a contiguous chunk and reassembles results in input
/// order, so violations come back in table order for any thread count.
pub(crate) fn check_refs_with_compact(
    space: IdSpace,
    tables: &[&NeighborTable],
    index: &CompactSuffixIndex,
) -> ConsistencyReport {
    let per_node: Vec<Vec<Violation>> = tables
        .par_iter()
        .map(|t| check_table_compact(space, t, index, |_, _, _| {}))
        .collect();
    ConsistencyReport {
        violations: per_node.into_iter().flatten().collect(),
        nodes: tables.len(),
        entries_checked: tables.len() * space.digit_count() * space.base() as usize,
    }
}

/// [`check_consistency`] over **borrowed** tables: walks each engine's
/// arena-backed table in place — no `Vec<NeighborTable>` clone, no
/// snapshot — against a [`CompactSuffixIndex`] of `u32` arena ids instead
/// of the `NodeId`-keyed [`SuffixIndex`]. Reports the identical
/// [`Violation`] list (same order, same witnesses) at a small fraction of
/// the memory: the check-phase overhead is the index (`≈ (d + 12) · n`
/// bytes plus one `&NeighborTable` per node) rather than a full table-set
/// clone plus `O(n · d)` hash/BTree nodes.
///
/// Feed it anything that yields `&NeighborTable` — typically
/// [`SimNetwork::tables_iter`](crate::SimNetwork::tables_iter) or
/// `tables.iter()` over an owned slice.
///
/// # Panics
///
/// Panics if `tables` is empty or contains duplicate owners.
pub fn check_consistency_streaming<'a, I>(space: IdSpace, tables: I) -> ConsistencyReport
where
    I: IntoIterator<Item = &'a NeighborTable>,
{
    let refs: Vec<&NeighborTable> = tables.into_iter().collect();
    assert!(!refs.is_empty(), "no tables to check");
    let mut index = CompactSuffixIndex::new(space);
    for t in &refs {
        index.insert(t.owner());
    }
    assert_eq!(index.len(), refs.len(), "duplicate table owners");
    index.seal();
    check_refs_with_compact(space, &refs, &index)
}

/// [`check_consistency_streaming`] against a caller-maintained
/// [`CompactSuffixIndex`] — the borrowed-table analog of
/// [`check_consistency_with_index`]. The index defines the live
/// membership (witnesses and the [`Violation::UnknownNeighbor`] test both
/// come from it), so it must reflect exactly the owners of `tables`;
/// churn loops apply joins/departures incrementally with
/// [`CompactSuffixIndex::insert`] / [`CompactSuffixIndex::remove`]
/// instead of re-indexing per wave. Takes `&mut` only to
/// [`seal`](CompactSuffixIndex::seal) the witness structure; the check
/// itself is read-only and parallel.
pub fn check_consistency_with_compact<'a, I>(
    space: IdSpace,
    tables: I,
    index: &mut CompactSuffixIndex,
) -> ConsistencyReport
where
    I: IntoIterator<Item = &'a NeighborTable>,
{
    let refs: Vec<&NeighborTable> = tables.into_iter().collect();
    index.seal();
    check_refs_with_compact(space, &refs, index)
}

/// One pass, two answers: the canonical
/// [`tables_digest`](crate::tables_digest) **and** the streaming
/// Definition-3.8 report, folding the digest out of the checker's own
/// slot walk so each table's arena is read once instead of twice. The
/// digest is byte-identical to `tables_digest` over the same sequence
/// (the golden values must never move); the report is identical to
/// [`check_consistency_streaming`].
///
/// The digest threads sequentially across tables by construction, so this
/// pass checks sequentially too; prefer it when the digest is wanted
/// anyway (the scale harness), and the parallel
/// [`check_consistency_streaming`] when it is not.
///
/// # Panics
///
/// Panics if `tables` is empty or contains duplicate owners.
pub fn digest_and_check_streaming<'a, I>(space: IdSpace, tables: I) -> (u64, ConsistencyReport)
where
    I: IntoIterator<Item = &'a NeighborTable>,
{
    let refs: Vec<&NeighborTable> = tables.into_iter().collect();
    assert!(!refs.is_empty(), "no tables to check");
    let mut index = CompactSuffixIndex::new(space);
    for t in &refs {
        index.insert(t.owner());
    }
    assert_eq!(index.len(), refs.len(), "duplicate table owners");
    index.seal();

    let mut h = Fnv::new();
    let mut violations = Vec::new();
    for t in &refs {
        digest_table_prefix(&mut h, t);
        violations.extend(check_table_compact(space, t, &index, |level, digit, e| {
            digest_entry(&mut h, level, digit, e);
        }));
        digest_reverse_sets(&mut h, t);
    }
    let report = ConsistencyReport {
        violations,
        nodes: refs.len(),
        entries_checked: refs.len() * space.digit_count() * space.base() as usize,
    };
    (h.finish(), report)
}

/// Definition 3.8 transcribed literally: for every entry, scan all of `V`
/// for carriers of the desired suffix. `O(n² · d · b)` — kept as the
/// reference implementation that [`check_consistency`] is tested and
/// benchmarked against, not for production use.
///
/// # Panics
///
/// Panics if `tables` is empty or contains duplicate owners.
pub fn check_consistency_naive(space: IdSpace, tables: &[NeighborTable]) -> ConsistencyReport {
    assert!(!tables.is_empty(), "no tables to check");
    let members: Vec<NodeId> = tables.iter().map(|t| t.owner()).collect();
    {
        let mut sorted = members.clone();
        sorted.sort();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate table owners"
        );
    }

    let mut report = ConsistencyReport {
        nodes: tables.len(),
        ..Default::default()
    };
    for t in tables {
        let x = t.owner();
        for i in 0..space.digit_count() {
            for j in 0..space.base() as u8 {
                report.entries_checked += 1;
                let desired = t.desired_suffix(i, j);
                // The full scan the index replaces: smallest carrier wins.
                let witness = members
                    .iter()
                    .filter(|m| m.has_suffix(&desired))
                    .min()
                    .copied();
                match (t.get(i, j), witness) {
                    (None, Some(w)) => report.violations.push(Violation::FalseNegative {
                        node: x,
                        level: i,
                        digit: j,
                        witness: w,
                    }),
                    (Some(e), w) => {
                        if !members.contains(&e.node) {
                            report.violations.push(Violation::UnknownNeighbor {
                                node: x,
                                level: i,
                                digit: j,
                                stored: e.node,
                            });
                        } else if w.is_none() || !e.node.has_suffix(&desired) {
                            report.violations.push(Violation::FalsePositive {
                                node: x,
                                level: i,
                                digit: j,
                                stored: e.node,
                            });
                        } else if e.state == NodeState::T {
                            report.violations.push(Violation::StaleState {
                                node: x,
                                level: i,
                                digit: j,
                                stored: e.node,
                            });
                        }
                    }
                    (None, None) => {}
                }
            }
        }
    }
    report
}

/// Verifies Lemma 3.1 directly: every node can route to every other node
/// within `d` hops. Returns the list of failing `(source, target)` pairs
/// (empty means fully reachable).
///
/// Quadratic in the number of nodes — intended for tests and small-to-mid
/// networks; `check_consistency` is the linear-time proxy (the two agree by
/// Lemma 3.1).
pub fn check_reachability(tables: &[NeighborTable]) -> Vec<(NodeId, NodeId)> {
    let refs: Vec<&NeighborTable> = tables.iter().collect();
    check_reachability_refs(&refs)
}

/// [`check_reachability`] over borrowed tables (the form the scenario
/// runner feeds straight from
/// [`SimNetwork::tables_iter`](crate::SimNetwork::tables_iter)).
pub fn check_reachability_refs(tables: &[&NeighborTable]) -> Vec<(NodeId, NodeId)> {
    // Sorted vec + binary search instead of a `HashMap<NodeId, _>`: the
    // per-hop lookup inside `route` is the hot path here, and digit
    // compares beat rehashing 65-byte ids n²·d times.
    let mut by_id: Vec<(NodeId, &NeighborTable)> = tables.iter().map(|t| (t.owner(), *t)).collect();
    by_id.sort_unstable_by_key(|p| p.0);
    let mut failures = Vec::new();
    for s in tables {
        for t in tables {
            if s.owner() == t.owner() {
                continue;
            }
            let outcome = route(s.owner(), t.owner(), |id| {
                by_id
                    .binary_search_by(|p| p.0.cmp(id))
                    .ok()
                    .map(|i| by_id[i].1)
            });
            if !outcome.is_delivered() {
                failures.push((s.owner(), t.owner()));
            }
        }
    }
    failures
}

/// Lemma 3.1 spot-checked instead of proved exhaustively: routes
/// `k_pairs` seeded-random ordered `(source, target)` pairs (drawn with
/// replacement, `source ≠ target`) and returns the failing ones. The
/// all-pairs [`check_reachability`] is `O(n² · d)` — unusable by
/// n ≈ 4096 — while a sample keeps the assertion affordable at any `n`;
/// the scale experiment runs it at every size it bootstraps.
///
/// Deterministic for a fixed `(tables, k_pairs, seed)`; failures are a
/// subset of what `check_reachability` would report (each failing pair it
/// returns is a genuine routing failure, duplicates removed). Networks
/// with fewer than two nodes have no pairs to draw: the result is empty.
pub fn check_reachability_sampled(
    tables: &[&NeighborTable],
    k_pairs: usize,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let n = tables.len();
    if n < 2 {
        return Vec::new();
    }
    let mut by_id: Vec<(NodeId, &NeighborTable)> = tables.iter().map(|t| (t.owner(), *t)).collect();
    by_id.sort_unstable_by_key(|p| p.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = Vec::new();
    for _ in 0..k_pairs {
        let s = rng.gen_range(0..n);
        let mut t = rng.gen_range(0..n - 1);
        if t >= s {
            t += 1;
        }
        let (src, dst) = (by_id[s].0, by_id[t].0);
        let outcome = route(src, dst, |id| {
            by_id
                .binary_search_by(|p| p.0.cmp(id))
                .ok()
                .map(|i| by_id[i].1)
        });
        if !outcome.is_delivered() {
            failures.push((src, dst));
        }
    }
    failures.sort_unstable();
    failures.dedup();
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::build_consistent_tables;
    use crate::table::Entry;

    fn ids(space: IdSpace, ss: &[&str]) -> Vec<NodeId> {
        ss.iter().map(|s| space.parse_id(s).unwrap()).collect()
    }

    #[test]
    fn oracle_network_is_consistent_and_reachable() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, &["0123", "3210", "1111", "2222", "0001", "1001"]);
        let tables = build_consistent_tables(space, &v);
        let report = check_consistency(space, &tables);
        assert!(report.is_consistent(), "{report}");
        assert_eq!(report.nodes(), 6);
        assert_eq!(report.entries_checked(), 6 * 4 * 4);
        assert!(check_reachability(&tables).is_empty());
    }

    #[test]
    fn false_negative_detected_and_breaks_reachability() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "111"]);
        let mut tables = build_consistent_tables(space, &v);
        // Blank 012's level-0 entry toward digit 1 (the only path to 111
        // from 012 starts there).
        tables[0].clear(0, 1);
        let report = check_consistency(space, &tables);
        assert!(!report.is_consistent());
        assert!(matches!(
            report.violations()[0],
            Violation::FalseNegative {
                level: 0,
                digit: 1,
                ..
            }
        ));
        let failures = check_reachability(&tables);
        assert!(failures
            .iter()
            .any(|(s, t)| s.to_string() == "012" && t.to_string() == "111"));
    }

    #[test]
    fn false_positive_detected() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230"]);
        let mut tables = build_consistent_tables(space, &v);
        // 012 claims a neighbor with suffix "3" although none exists.
        let ghost = space.parse_id("230").unwrap();
        // Occupying (0, 0): desired suffix "0"; 230 fits "0". Use an entry
        // whose desired suffix no member carries: (0, 3).
        // 230 does not end in 3, so `set` would trip the fits() debug
        // assertion; craft the violation via a node that fits but is dead.
        let dead = space.parse_id("013").unwrap();
        tables[0].set(
            0,
            3,
            Entry {
                node: dead,
                state: NodeState::S,
            },
        );
        let _ = ghost;
        let report = check_consistency(space, &tables);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::UnknownNeighbor { .. })));
    }

    #[test]
    fn stale_t_state_detected() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230"]);
        let mut tables = build_consistent_tables(space, &v);
        let other = space.parse_id("230").unwrap();
        tables[0].set(
            0,
            0,
            Entry {
                node: other,
                state: NodeState::T,
            },
        );
        let report = check_consistency(space, &tables);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::StaleState { .. })));
    }

    #[test]
    fn report_display_is_informative() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "111"]);
        let tables = build_consistent_tables(space, &v);
        let ok = check_consistency(space, &tables);
        assert!(ok.to_string().contains("consistent"));
        let mut broken = build_consistent_tables(space, &v);
        broken[0].clear(0, 1);
        let bad = check_consistency(space, &broken);
        assert!(bad.to_string().contains("INCONSISTENT"));
        assert!(bad.to_string().contains("false negative"));
    }

    #[test]
    fn indexed_checker_matches_naive_on_clean_and_corrupted_tables() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, &["0123", "3210", "1111", "2222", "0001", "1001"]);
        let mut tables = build_consistent_tables(space, &v);
        let clean_fast = check_consistency(space, &tables);
        let clean_naive = check_consistency_naive(space, &tables);
        assert_eq!(clean_fast.violations(), clean_naive.violations());
        assert_eq!(clean_fast.entries_checked(), clean_naive.entries_checked());

        tables[0].clear(0, 1);
        tables[2].clear(1, 2);
        let fast = check_consistency(space, &tables);
        let naive = check_consistency_naive(space, &tables);
        assert_eq!(fast.violations(), naive.violations());
        assert!(!fast.is_consistent());
    }

    #[test]
    fn incremental_index_matches_fresh_build_after_departure() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, &["0123", "3210", "1111", "2222", "0001", "1001"]);
        let mut index = SuffixIndex::build(space, v.iter().copied());
        // 1001 departs; tables rebuilt over the survivors.
        let survivors: Vec<NodeId> = v[..5].to_vec();
        index.remove(&v[5]);
        let tables = build_consistent_tables(space, &survivors);
        let report = check_consistency_with_index(space, &tables, &index);
        assert!(report.is_consistent(), "{report}");
        // And the incremental index agrees with a from-scratch check.
        let fresh = check_consistency(space, &tables);
        assert_eq!(report.violations(), fresh.violations());
    }
}
