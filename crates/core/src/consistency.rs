//! The consistency checker: Definition 3.8 of the paper, plus reachability.
//!
//! A network `⟨V, N(V)⟩` is *consistent* iff for every node `x` and entry
//! `(i, j)`:
//!
//! * **(a) false-negative freedom** — if some node carries the desired
//!   suffix `j ∘ x[i-1..0]`, the entry stores such a node;
//! * **(b) false-positive freedom** — if no node carries the desired
//!   suffix, the entry is empty.
//!
//! By Lemma 3.1, (a) is equivalent to every node being reachable from every
//! other node; [`check_reachability`] verifies that equivalence directly.
//!
//! Three entry points, one semantics:
//!
//! * [`check_consistency`] — builds a [`SuffixIndex`] over the table
//!   owners and checks every entry against it, fanning the per-node loop
//!   across cores. `O(n · d · b)` after an `O(n · d)` index build.
//! * [`check_consistency_with_index`] — same check against a
//!   caller-maintained index; churn experiments update one incrementally
//!   instead of re-indexing per wave.
//! * [`check_consistency_naive`] — the specification transcribed
//!   literally, scanning all of `V` per entry (`O(n² · d · b)`). Kept as
//!   the reference implementation the fast paths are tested (and
//!   benchmarked) against.
//!
//! All three report identical [`Violation`] lists: witnesses are always
//! the *smallest* live node carrying the desired suffix.

use std::fmt;

use hyperring_id::{IdSpace, NodeId};
use rayon::prelude::*;

use crate::routing::route;
use crate::suffix_index::SuffixIndex;
use crate::table::{NeighborTable, NodeState};

/// One consistency violation found by [`check_consistency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Condition (a) violated: nodes with the desired suffix exist but the
    /// entry is empty.
    FalseNegative {
        /// The node whose table is inconsistent.
        node: NodeId,
        /// Entry level.
        level: usize,
        /// Entry digit.
        digit: u8,
        /// A node that should have been stored (a witness).
        witness: NodeId,
    },
    /// Condition (b) violated: the entry stores a node although no live
    /// node has the desired suffix (or it stores a node with the *wrong*
    /// suffix).
    FalsePositive {
        /// The node whose table is inconsistent.
        node: NodeId,
        /// Entry level.
        level: usize,
        /// Entry digit.
        digit: u8,
        /// The bogus stored node.
        stored: NodeId,
    },
    /// An entry stores a node that is not a member of the network at all.
    UnknownNeighbor {
        /// The node whose table is inconsistent.
        node: NodeId,
        /// Entry level.
        level: usize,
        /// Entry digit.
        digit: u8,
        /// The stored, unknown node.
        stored: NodeId,
    },
    /// An entry still records state `T` although the join process is over.
    StaleState {
        /// The node whose table holds the stale entry.
        node: NodeId,
        /// Entry level.
        level: usize,
        /// Entry digit.
        digit: u8,
        /// The neighbor still recorded as `T`.
        stored: NodeId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::FalseNegative {
                node,
                level,
                digit,
                witness,
            } => write!(
                f,
                "false negative: {node} entry ({level},{digit}) empty but {witness} exists"
            ),
            Violation::FalsePositive {
                node,
                level,
                digit,
                stored,
            } => write!(
                f,
                "false positive: {node} entry ({level},{digit}) stores {stored} with wrong/ghost suffix"
            ),
            Violation::UnknownNeighbor {
                node,
                level,
                digit,
                stored,
            } => write!(
                f,
                "unknown neighbor: {node} entry ({level},{digit}) stores non-member {stored}"
            ),
            Violation::StaleState {
                node,
                level,
                digit,
                stored,
            } => write!(
                f,
                "stale state: {node} entry ({level},{digit}) records {stored} as T"
            ),
        }
    }
}

/// Result of a consistency check.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    violations: Vec<Violation>,
    nodes: usize,
    entries_checked: usize,
}

impl ConsistencyReport {
    /// Whether no violation was found.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations, in table order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of nodes checked.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of table entries checked.
    pub fn entries_checked(&self) -> usize {
        self.entries_checked
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_consistent() {
            write!(
                f,
                "consistent: {} nodes, {} entries",
                self.nodes, self.entries_checked
            )
        } else {
            writeln!(
                f,
                "INCONSISTENT: {} violations over {} nodes",
                self.violations.len(),
                self.nodes
            )?;
            for v in self.violations.iter().take(20) {
                writeln!(f, "  {v}")?;
            }
            if self.violations.len() > 20 {
                writeln!(f, "  … and {} more", self.violations.len() - 20)?;
            }
            Ok(())
        }
    }
}

/// Checks one node's table against the index. Returns the violations in
/// entry order; the entry count is `d · b`, the same for every node.
fn check_table(space: IdSpace, t: &NeighborTable, index: &SuffixIndex) -> Vec<Violation> {
    let x = t.owner();
    let mut violations = Vec::new();
    for i in 0..space.digit_count() {
        for j in 0..space.base() as u8 {
            let desired = t.desired_suffix(i, j);
            let witness = index.witness(&desired);
            match (t.get(i, j), witness) {
                (None, Some(w)) => violations.push(Violation::FalseNegative {
                    node: x,
                    level: i,
                    digit: j,
                    witness: w,
                }),
                (Some(e), w) => {
                    if !index.contains(&e.node) {
                        violations.push(Violation::UnknownNeighbor {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    } else if w.is_none() || !e.node.has_suffix(&desired) {
                        violations.push(Violation::FalsePositive {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    } else if e.state == NodeState::T {
                        violations.push(Violation::StaleState {
                            node: x,
                            level: i,
                            digit: j,
                            stored: e.node,
                        });
                    }
                }
                (None, None) => {}
            }
        }
    }
    violations
}

/// Checks Definition 3.8 over a closed set of tables (one per live node),
/// and additionally flags entries still recorded as `T` — after all joins
/// have completed, every neighbor must be known to be an S-node.
///
/// Builds a [`SuffixIndex`] over the table owners, then checks every
/// node's table against it in parallel. The result is deterministic:
/// violations come back in table order regardless of thread count, and
/// the reported witness for a missing entry is always the smallest
/// carrier of the desired suffix.
///
/// # Examples
///
/// ```
/// use hyperring_core::{build_consistent_tables, check_consistency};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 3)?;
/// let ids: Vec<_> = ["012", "230", "111"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let mut tables = build_consistent_tables(space, &ids);
/// assert!(check_consistency(space, &tables).is_consistent());
/// // Blanking a required entry is detected as a false negative.
/// tables[0].clear(0, 1);
/// let report = check_consistency(space, &tables);
/// assert!(!report.is_consistent());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `tables` is empty or contains duplicate owners.
pub fn check_consistency(space: IdSpace, tables: &[NeighborTable]) -> ConsistencyReport {
    assert!(!tables.is_empty(), "no tables to check");
    let index = SuffixIndex::build(space, tables.iter().map(|t| t.owner()));
    assert_eq!(index.len(), tables.len(), "duplicate table owners");
    check_consistency_with_index(space, tables, &index)
}

/// [`check_consistency`] against a caller-maintained [`SuffixIndex`].
///
/// The index defines the live membership: witnesses and the
/// [`Violation::UnknownNeighbor`] test both come from it, so it must
/// reflect exactly the owners of `tables`. Churn experiments keep one
/// index across waves, applying each join/departure incrementally instead
/// of re-indexing `O(n · d)` state per wave.
pub fn check_consistency_with_index(
    space: IdSpace,
    tables: &[NeighborTable],
    index: &SuffixIndex,
) -> ConsistencyReport {
    let per_node: Vec<Vec<Violation>> = tables
        .par_iter()
        .map(|t| check_table(space, t, index))
        .collect();
    ConsistencyReport {
        violations: per_node.into_iter().flatten().collect(),
        nodes: tables.len(),
        entries_checked: tables.len() * space.digit_count() * space.base() as usize,
    }
}

/// Definition 3.8 transcribed literally: for every entry, scan all of `V`
/// for carriers of the desired suffix. `O(n² · d · b)` — kept as the
/// reference implementation that [`check_consistency`] is tested and
/// benchmarked against, not for production use.
///
/// # Panics
///
/// Panics if `tables` is empty or contains duplicate owners.
pub fn check_consistency_naive(space: IdSpace, tables: &[NeighborTable]) -> ConsistencyReport {
    assert!(!tables.is_empty(), "no tables to check");
    let members: Vec<NodeId> = tables.iter().map(|t| t.owner()).collect();
    {
        let mut sorted = members.clone();
        sorted.sort();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate table owners"
        );
    }

    let mut report = ConsistencyReport {
        nodes: tables.len(),
        ..Default::default()
    };
    for t in tables {
        let x = t.owner();
        for i in 0..space.digit_count() {
            for j in 0..space.base() as u8 {
                report.entries_checked += 1;
                let desired = t.desired_suffix(i, j);
                // The full scan the index replaces: smallest carrier wins.
                let witness = members
                    .iter()
                    .filter(|m| m.has_suffix(&desired))
                    .min()
                    .copied();
                match (t.get(i, j), witness) {
                    (None, Some(w)) => report.violations.push(Violation::FalseNegative {
                        node: x,
                        level: i,
                        digit: j,
                        witness: w,
                    }),
                    (Some(e), w) => {
                        if !members.contains(&e.node) {
                            report.violations.push(Violation::UnknownNeighbor {
                                node: x,
                                level: i,
                                digit: j,
                                stored: e.node,
                            });
                        } else if w.is_none() || !e.node.has_suffix(&desired) {
                            report.violations.push(Violation::FalsePositive {
                                node: x,
                                level: i,
                                digit: j,
                                stored: e.node,
                            });
                        } else if e.state == NodeState::T {
                            report.violations.push(Violation::StaleState {
                                node: x,
                                level: i,
                                digit: j,
                                stored: e.node,
                            });
                        }
                    }
                    (None, None) => {}
                }
            }
        }
    }
    report
}

/// Verifies Lemma 3.1 directly: every node can route to every other node
/// within `d` hops. Returns the list of failing `(source, target)` pairs
/// (empty means fully reachable).
///
/// Quadratic in the number of nodes — intended for tests and small-to-mid
/// networks; `check_consistency` is the linear-time proxy (the two agree by
/// Lemma 3.1).
pub fn check_reachability(tables: &[NeighborTable]) -> Vec<(NodeId, NodeId)> {
    // Sorted vec + binary search instead of a `HashMap<NodeId, _>`: the
    // per-hop lookup inside `route` is the hot path here, and digit
    // compares beat rehashing 65-byte ids n²·d times.
    let mut by_id: Vec<(NodeId, &NeighborTable)> = tables.iter().map(|t| (t.owner(), t)).collect();
    by_id.sort_unstable_by_key(|p| p.0);
    let mut failures = Vec::new();
    for s in tables {
        for t in tables {
            if s.owner() == t.owner() {
                continue;
            }
            let outcome = route(s.owner(), t.owner(), |id| {
                by_id
                    .binary_search_by(|p| p.0.cmp(id))
                    .ok()
                    .map(|i| by_id[i].1)
            });
            if !outcome.is_delivered() {
                failures.push((s.owner(), t.owner()));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::build_consistent_tables;
    use crate::table::Entry;

    fn ids(space: IdSpace, ss: &[&str]) -> Vec<NodeId> {
        ss.iter().map(|s| space.parse_id(s).unwrap()).collect()
    }

    #[test]
    fn oracle_network_is_consistent_and_reachable() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, &["0123", "3210", "1111", "2222", "0001", "1001"]);
        let tables = build_consistent_tables(space, &v);
        let report = check_consistency(space, &tables);
        assert!(report.is_consistent(), "{report}");
        assert_eq!(report.nodes(), 6);
        assert_eq!(report.entries_checked(), 6 * 4 * 4);
        assert!(check_reachability(&tables).is_empty());
    }

    #[test]
    fn false_negative_detected_and_breaks_reachability() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "111"]);
        let mut tables = build_consistent_tables(space, &v);
        // Blank 012's level-0 entry toward digit 1 (the only path to 111
        // from 012 starts there).
        tables[0].clear(0, 1);
        let report = check_consistency(space, &tables);
        assert!(!report.is_consistent());
        assert!(matches!(
            report.violations()[0],
            Violation::FalseNegative {
                level: 0,
                digit: 1,
                ..
            }
        ));
        let failures = check_reachability(&tables);
        assert!(failures
            .iter()
            .any(|(s, t)| s.to_string() == "012" && t.to_string() == "111"));
    }

    #[test]
    fn false_positive_detected() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230"]);
        let mut tables = build_consistent_tables(space, &v);
        // 012 claims a neighbor with suffix "3" although none exists.
        let ghost = space.parse_id("230").unwrap();
        // Occupying (0, 0): desired suffix "0"; 230 fits "0". Use an entry
        // whose desired suffix no member carries: (0, 3).
        // 230 does not end in 3, so `set` would trip the fits() debug
        // assertion; craft the violation via a node that fits but is dead.
        let dead = space.parse_id("013").unwrap();
        tables[0].set(
            0,
            3,
            Entry {
                node: dead,
                state: NodeState::S,
            },
        );
        let _ = ghost;
        let report = check_consistency(space, &tables);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::UnknownNeighbor { .. })));
    }

    #[test]
    fn stale_t_state_detected() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230"]);
        let mut tables = build_consistent_tables(space, &v);
        let other = space.parse_id("230").unwrap();
        tables[0].set(
            0,
            0,
            Entry {
                node: other,
                state: NodeState::T,
            },
        );
        let report = check_consistency(space, &tables);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::StaleState { .. })));
    }

    #[test]
    fn report_display_is_informative() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "111"]);
        let tables = build_consistent_tables(space, &v);
        let ok = check_consistency(space, &tables);
        assert!(ok.to_string().contains("consistent"));
        let mut broken = build_consistent_tables(space, &v);
        broken[0].clear(0, 1);
        let bad = check_consistency(space, &broken);
        assert!(bad.to_string().contains("INCONSISTENT"));
        assert!(bad.to_string().contains("false negative"));
    }

    #[test]
    fn indexed_checker_matches_naive_on_clean_and_corrupted_tables() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, &["0123", "3210", "1111", "2222", "0001", "1001"]);
        let mut tables = build_consistent_tables(space, &v);
        let clean_fast = check_consistency(space, &tables);
        let clean_naive = check_consistency_naive(space, &tables);
        assert_eq!(clean_fast.violations(), clean_naive.violations());
        assert_eq!(clean_fast.entries_checked(), clean_naive.entries_checked());

        tables[0].clear(0, 1);
        tables[2].clear(1, 2);
        let fast = check_consistency(space, &tables);
        let naive = check_consistency_naive(space, &tables);
        assert_eq!(fast.violations(), naive.violations());
        assert!(!fast.is_consistent());
    }

    #[test]
    fn incremental_index_matches_fresh_build_after_departure() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, &["0123", "3210", "1111", "2222", "0001", "1001"]);
        let mut index = SuffixIndex::build(space, v.iter().copied());
        // 1001 departs; tables rebuilt over the survivors.
        let survivors: Vec<NodeId> = v[..5].to_vec();
        index.remove(&v[5]);
        let tables = build_consistent_tables(space, &survivors);
        let report = check_consistency_with_index(space, &tables, &index);
        assert!(report.is_consistent(), "{report}");
        // And the incremental index agrees with a from-scratch check.
        let fresh = check_consistency(space, &tables);
        assert_eq!(report.violations(), fresh.violations());
    }
}
