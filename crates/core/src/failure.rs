//! Crash-failure detection (crash-churn extension).
//!
//! The paper assumes crash-free nodes and defers failure recovery to
//! future work (§7). This module adds the detection half of that layer: a
//! per-node probe loop driven entirely by the existing
//! [`Effect::SetTimer`](crate::Effect) / [`Event::TimerFired`](crate::Event)
//! boundary, so it works unchanged under every runtime. Each tick of the
//! [`TimerId::FdProbe`](crate::TimerId) timer, an *in_system* node pings
//! the peers it monitors — its primary neighbors plus its reverse
//! neighbors — and charges every probe that went unanswered since the
//! previous tick. A peer that stays silent for
//! [`suspicion_threshold`](crate::FailureDetector::suspicion_threshold)
//! consecutive ticks is declared dead; the engine then evicts its table
//! entries and (optionally) starts a repair (see [`crate::repair`]).
//!
//! The bookkeeping here is deliberately pure: it decides *who* to ping
//! and *who* is dead, while the engine owns all effect emission, so the
//! detector inherits the engine's sans-io determinism.

use std::collections::{BTreeMap, BTreeSet};

use hyperring_id::NodeId;

use crate::table::NeighborTable;

/// Probe bookkeeping of one node's failure detector.
#[derive(Debug, Clone, Default)]
pub(crate) struct FailureState {
    /// Whether the periodic `FdProbe` tick is armed.
    pub(crate) running: bool,
    /// Monitored peer → consecutive probes sent without a `PongMsg`.
    missed: BTreeMap<NodeId, u32>,
}

/// What one detector tick decided.
#[derive(Debug, Default)]
pub(crate) struct TickOutcome {
    /// Peers declared dead this tick, with their final missed-probe count.
    pub(crate) dead: Vec<(NodeId, u32)>,
    /// Peers to send a `PingMsg` to this tick.
    pub(crate) probe: Vec<NodeId>,
}

impl FailureState {
    /// The peers `table`'s owner monitors: every distinct primary neighbor
    /// plus every reverse neighbor, excluding the owner itself.
    pub(crate) fn monitored(table: &NeighborTable) -> BTreeSet<NodeId> {
        let me = table.owner();
        let mut peers: BTreeSet<NodeId> = table
            .iter()
            .map(|(_, _, e)| e.node)
            .filter(|n| *n != me)
            .collect();
        peers.extend(table.reverse_neighbors().into_iter().filter(|n| *n != me));
        peers
    }

    /// Runs one detector tick: peers whose missed count reached
    /// `threshold` are returned as dead (and forgotten); every other
    /// monitored peer is probed and charged one outstanding probe, to be
    /// refunded by [`pong`](Self::pong).
    pub(crate) fn tick(&mut self, table: &NeighborTable, threshold: u32) -> TickOutcome {
        let monitored = Self::monitored(table);
        // Forget peers that left the table between ticks (evicted, or
        // replaced through the ordinary protocol).
        self.missed.retain(|peer, _| monitored.contains(peer));
        let mut out = TickOutcome::default();
        for peer in monitored {
            let m = self.missed.get(&peer).copied().unwrap_or(0);
            if m >= threshold {
                self.missed.remove(&peer);
                out.dead.push((peer, m));
            } else {
                self.missed.insert(peer, m + 1);
                out.probe.push(peer);
            }
        }
        out
    }

    /// Records a `PongMsg` from `from`: it is alive, so its outstanding
    /// probe count resets.
    pub(crate) fn pong(&mut self, from: NodeId) {
        self.missed.remove(&from);
    }

    /// Hashes the detector state (for [`JoinEngine::hash_state`]
    /// (crate::JoinEngine::hash_state)).
    pub(crate) fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.running.hash(h);
        for (peer, m) in &self.missed {
            peer.hash(h);
            m.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Entry, NodeState};
    use hyperring_id::IdSpace;

    fn table_with(owner: &str, neighbor: &str) -> NeighborTable {
        let space = IdSpace::new(4, 3).unwrap();
        let me = space.parse_id(owner).unwrap();
        let other = space.parse_id(neighbor).unwrap();
        let mut t = NeighborTable::new(space, me);
        t.set_self_entries(NodeState::S);
        let k = me.csuf_len(&other);
        t.set(
            k,
            other.digit(k),
            Entry {
                node: other,
                state: NodeState::S,
            },
        );
        t
    }

    #[test]
    fn monitored_covers_primary_and_reverse_but_not_self() {
        let space = IdSpace::new(4, 3).unwrap();
        let mut t = table_with("000", "321");
        t.add_reverse(0, 0, space.parse_id("210").unwrap());
        let peers = FailureState::monitored(&t);
        assert_eq!(peers.len(), 2);
        assert!(!peers.contains(&space.parse_id("000").unwrap()));
    }

    #[test]
    fn silent_peer_dies_after_threshold_ticks() {
        let t = table_with("000", "321");
        let peer = t.space().parse_id("321").unwrap();
        let mut fd = FailureState::default();
        for _ in 0..3 {
            let o = fd.tick(&t, 3);
            assert!(o.dead.is_empty());
            assert_eq!(o.probe, vec![peer]);
        }
        let o = fd.tick(&t, 3);
        assert_eq!(o.dead, vec![(peer, 3)]);
        assert!(o.probe.is_empty());
    }

    #[test]
    fn pong_resets_the_missed_count() {
        let t = table_with("000", "321");
        let peer = t.space().parse_id("321").unwrap();
        let mut fd = FailureState::default();
        for _ in 0..100 {
            let o = fd.tick(&t, 3);
            assert!(o.dead.is_empty(), "responsive peer must never die");
            fd.pong(peer);
        }
    }

    #[test]
    fn evicted_peer_is_forgotten() {
        let mut t = table_with("000", "321");
        let peer = t.space().parse_id("321").unwrap();
        let mut fd = FailureState::default();
        fd.tick(&t, 3);
        let k = t.owner().csuf_len(&peer);
        t.clear(k, peer.digit(k));
        let o = fd.tick(&t, 3);
        assert!(o.dead.is_empty());
        assert!(o.probe.is_empty());
    }
}
