//! Neighbor-table repair (crash-churn extension).
//!
//! When the failure detector (see [`crate::failure`]) declares a neighbor
//! dead, the entries that stored it are evicted and become *vacated
//! slots*. This module tracks those slots and refills them by
//! suffix-routing `RepairQryMsg`s toward each slot's desired suffix:
//!
//! 1. The origin synthesizes a routing target carrying the vacated
//!    `(level, digit)` slot's desired suffix ([`synth_target`]) and sends
//!    a query to every live sharer of the slot's level (falling back to
//!    its whole table when no sharer remains).
//! 2. Each receiver either *is* a carrier of the desired suffix (it
//!    replies with itself), stores one (it replies with that entry), or
//!    forwards the query one suffix-routing hop closer to the target.
//!    Each hop strictly lengthens the common suffix with the target, so a
//!    query terminates within `d` hops, with a `RepairRlyMsg` back to the
//!    origin either way.
//! 3. The origin installs the first usable replacement through the join
//!    machinery's `T`→`S` state discipline (`install` + `RvNghNotiMsg`),
//!    re-converging survivors to Definition-3.8 consistency.
//!
//! Unanswered slots are re-queried on every detector tick up to
//! [`MAX_REPAIR_ATTEMPTS`]; a slot that stays dry is declared
//! unrepairable and left empty — which is exactly right when no survivor
//! carries the suffix, and a documented limitation when the only carriers
//! were never stored by any surviving sharer (a branch whose stored
//! representatives all crashed cannot be re-discovered locally).

use std::collections::{BTreeMap, BTreeSet};

use hyperring_id::NodeId;

use crate::table::NeighborTable;

/// Detector ticks a vacated slot is re-queried before the repair gives
/// up and declares the slot unrepairable.
pub(crate) const MAX_REPAIR_ATTEMPTS: u32 = 8;

/// Per-slot repair bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct SlotState {
    /// Queries issued for this slot so far.
    attempts: u32,
    /// Earliest detector tick the slot may be re-queried on (only
    /// consulted when `repair_backoff` is on).
    next_due: u64,
}

/// Repair bookkeeping of one node: vacated slots awaiting replacements,
/// plus the set of condemned (declared-dead) nodes that must never be
/// re-installed from a stale reply.
#[derive(Debug, Clone, Default)]
pub(crate) struct RepairState {
    /// Vacated `(level, digit)` slot → query bookkeeping.
    pending: BTreeMap<(usize, u8), SlotState>,
    /// Nodes this node declared dead.
    condemned: BTreeSet<NodeId>,
    /// Detector ticks seen (drives the per-slot backoff clock).
    tick: u64,
}

/// The slots one detector tick re-drives.
#[derive(Debug, Default)]
pub(crate) struct DueSlots {
    /// Slots to (re-)query this tick.
    pub(crate) query: Vec<(usize, u8)>,
    /// Slots whose attempt budget ran out; declared unrepairable.
    pub(crate) exhausted: Vec<(usize, u8)>,
}

impl RepairState {
    /// Marks `(level, digit)` vacated and awaiting repair.
    pub(crate) fn enqueue(&mut self, level: usize, digit: u8) {
        self.pending.entry((level, digit)).or_default();
    }

    /// Whether `(level, digit)` still awaits a replacement.
    pub(crate) fn is_pending(&self, level: usize, digit: u8) -> bool {
        self.pending.contains_key(&(level, digit))
    }

    /// Marks `(level, digit)` repaired.
    pub(crate) fn complete(&mut self, level: usize, digit: u8) {
        self.pending.remove(&(level, digit));
    }

    /// Records that `node` was declared dead.
    pub(crate) fn condemn(&mut self, node: NodeId) {
        self.condemned.insert(node);
    }

    /// Whether `node` was declared dead by this node.
    pub(crate) fn is_condemned(&self, node: &NodeId) -> bool {
        self.condemned.contains(node)
    }

    /// Splits the pending slots for one tick: slots meanwhile refilled by
    /// the ordinary protocol are dropped silently, slots out of budget
    /// move to `exhausted`, and the rest are charged one attempt and
    /// returned for re-querying.
    ///
    /// Pacing (both off by default, keeping the legacy every-tick
    /// schedule): `max_in_flight > 0` caps the queries issued this tick
    /// — surplus slots simply stay pending for a later tick, uncharged;
    /// `backoff` makes a queried slot wait `2^attempts` ticks (capped at
    /// 32) before its next re-query instead of being re-driven every
    /// tick. Slot order is the `BTreeMap` key order, so the schedule is
    /// deterministic either way.
    pub(crate) fn due(
        &mut self,
        table: &NeighborTable,
        max_in_flight: u32,
        backoff: bool,
    ) -> DueSlots {
        self.tick += 1;
        let mut out = DueSlots::default();
        let slots: Vec<(usize, u8)> = self.pending.keys().copied().collect();
        let mut issued = 0u32;
        for (level, digit) in slots {
            if table.get(level, digit).is_some() {
                self.pending.remove(&(level, digit));
                continue;
            }
            let st = self.pending[&(level, digit)];
            if st.attempts >= MAX_REPAIR_ATTEMPTS {
                self.pending.remove(&(level, digit));
                out.exhausted.push((level, digit));
                continue;
            }
            if backoff && st.next_due > self.tick {
                continue;
            }
            if max_in_flight > 0 && issued >= max_in_flight {
                continue;
            }
            let st = self.pending.get_mut(&(level, digit)).unwrap();
            st.attempts += 1;
            if backoff {
                st.next_due = self.tick + (1u64 << st.attempts.min(5));
            }
            issued += 1;
            out.query.push((level, digit));
        }
        out
    }

    /// First-hop recipients for a repair query on `(level, _)`: every
    /// distinct live non-self entry node at levels `>= level` (those share
    /// the slot's suffix context, so their own `(level, digit)` entry has
    /// the same desired suffix), or — when eviction left no such sharer —
    /// every distinct live entry node of the whole table.
    pub(crate) fn recipients(&self, table: &NeighborTable, level: usize) -> Vec<NodeId> {
        let me = table.owner();
        let pick = |lo: usize| -> Vec<NodeId> {
            let mut seen = BTreeSet::new();
            table
                .iter()
                .filter(|&(l, _, e)| {
                    l >= lo && e.node != me && !self.is_condemned(&e.node) && seen.insert(e.node)
                })
                .map(|(_, _, e)| e.node)
                .collect()
        };
        let sharers = pick(level);
        if sharers.is_empty() {
            pick(0)
        } else {
            sharers
        }
    }

    /// Hashes the repair state (for [`JoinEngine::hash_state`]
    /// (crate::JoinEngine::hash_state)).
    pub(crate) fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        for (slot, st) in &self.pending {
            slot.hash(h);
            st.attempts.hash(h);
            st.next_due.hash(h);
        }
        for node in &self.condemned {
            node.hash(h);
        }
        self.tick.hash(h);
    }
}

/// Synthesizes the suffix-routing target for slot `(level, digit)` of
/// `owner`: the owner's own identifier with digit `level` replaced by
/// `digit`. Its rightmost `level + 1` digits are exactly the slot's
/// desired suffix, and higher digits only shorten as routing converges.
pub(crate) fn synth_target(owner: &NodeId, level: usize, digit: u8) -> NodeId {
    let mut digits = owner.digits_lsd().to_vec();
    digits[level] = digit;
    NodeId::from_digits_lsd(&digits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Entry, NodeState};
    use hyperring_id::IdSpace;

    #[test]
    fn synth_target_carries_the_desired_suffix() {
        let space = IdSpace::new(4, 5).unwrap();
        let me = space.parse_id("21233").unwrap();
        let t = NeighborTable::new(space, me);
        let target = synth_target(&me, 2, 0);
        assert_eq!(target.to_string(), "21033");
        assert!(t.desired_suffix(2, 0).matches(&target));
        assert_eq!(me.csuf_len(&target), 2);
    }

    #[test]
    fn due_charges_attempts_and_exhausts() {
        let space = IdSpace::new(4, 3).unwrap();
        let me = space.parse_id("000").unwrap();
        let table = NeighborTable::new(space, me);
        let mut r = RepairState::default();
        r.enqueue(1, 2);
        for _ in 0..MAX_REPAIR_ATTEMPTS {
            let due = r.due(&table, 0, false);
            assert_eq!(due.query, vec![(1, 2)]);
            assert!(due.exhausted.is_empty());
        }
        let due = r.due(&table, 0, false);
        assert!(due.query.is_empty());
        assert_eq!(due.exhausted, vec![(1, 2)]);
        assert!(!r.is_pending(1, 2));
    }

    #[test]
    fn in_flight_cap_spreads_queries_over_ticks() {
        let space = IdSpace::new(4, 3).unwrap();
        let me = space.parse_id("000").unwrap();
        let table = NeighborTable::new(space, me);
        let mut r = RepairState::default();
        for d in 1..4 {
            r.enqueue(0, d);
        }
        // Cap 2: first tick queries the two lowest slots, the third stays
        // pending without being charged an attempt.
        let due = r.due(&table, 2, false);
        assert_eq!(due.query, vec![(0, 1), (0, 2)]);
        assert!(r.is_pending(0, 3));
        // Deferred slots are still driven to exhaustion eventually.
        let mut exhausted = Vec::new();
        for _ in 0..(3 * (MAX_REPAIR_ATTEMPTS + 1)) {
            exhausted.extend(r.due(&table, 2, false).exhausted);
        }
        exhausted.sort_unstable();
        assert_eq!(exhausted, vec![(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn backoff_waits_exponentially_between_queries() {
        let space = IdSpace::new(4, 3).unwrap();
        let me = space.parse_id("000").unwrap();
        let table = NeighborTable::new(space, me);
        let mut r = RepairState::default();
        r.enqueue(1, 2);
        let mut query_ticks = Vec::new();
        for tick in 1..=40u64 {
            if !r.due(&table, 0, true).query.is_empty() {
                query_ticks.push(tick);
            }
        }
        // Queried on tick 1, then after 2, 4, 8, 16 ticks (2^attempts).
        assert_eq!(query_ticks, vec![1, 3, 7, 15, 31]);
    }

    #[test]
    fn due_drops_slots_refilled_elsewhere() {
        let space = IdSpace::new(4, 3).unwrap();
        let me = space.parse_id("000").unwrap();
        let other = space.parse_id("120").unwrap();
        let mut table = NeighborTable::new(space, me);
        let mut r = RepairState::default();
        r.enqueue(1, 2);
        table.set(
            1,
            2,
            Entry {
                node: other,
                state: NodeState::T,
            },
        );
        let due = r.due(&table, 0, false);
        assert!(due.query.is_empty() && due.exhausted.is_empty());
        assert!(!r.is_pending(1, 2));
    }

    #[test]
    fn recipients_prefer_sharers_and_skip_condemned() {
        let space = IdSpace::new(4, 3).unwrap();
        let me = space.parse_id("000").unwrap();
        let low = space.parse_id("321").unwrap(); // level 0 only
        let high = space.parse_id("100").unwrap(); // shares 2 digits
        let mut table = NeighborTable::new(space, me);
        let k = me.csuf_len(&low);
        table.set(
            k,
            low.digit(k),
            Entry {
                node: low,
                state: NodeState::S,
            },
        );
        let k = me.csuf_len(&high);
        table.set(
            k,
            high.digit(k),
            Entry {
                node: high,
                state: NodeState::S,
            },
        );
        let mut r = RepairState::default();
        assert_eq!(r.recipients(&table, 1), vec![high]);
        // With the sharer condemned, fall back to the whole table.
        r.condemn(high);
        assert_eq!(r.recipients(&table, 1), vec![low]);
    }
}
