//! A reusable index from level-`k` suffixes to the live nodes carrying
//! them.
//!
//! The consistency checker (Definition 3.8) must answer, per table entry,
//! "does any live node carry suffix `j ∘ x[i-1..0]`, and if so which one?".
//! Scanning `V` per entry makes the check `O(n² · d · b)`; this index
//! answers both questions in `O(1)` expected time after an `O(n · d)`
//! build.
//!
//! Unlike the transient witness map the checker used to rebuild on every
//! call, a [`SuffixIndex`] is a first-class value: churn experiments keep
//! one alive across waves and apply joins/departures incrementally with
//! [`insert`](SuffixIndex::insert) / [`remove`](SuffixIndex::remove)
//! (each `O(d · log n)`), instead of re-indexing the whole membership
//! after every wave.
//!
//! The witness for a suffix is the *smallest* node carrying it — the same
//! choice [`build_consistent_tables`](crate::build_consistent_tables)
//! makes — so index-driven checks and oracle-built networks agree exactly.

use std::collections::{BTreeSet, HashMap, HashSet};

use hyperring_id::{IdSpace, NodeId, Suffix};

/// Maps every suffix of length `1..=d` to the sorted set of live nodes
/// carrying it, with incremental membership updates.
#[derive(Debug, Clone)]
pub struct SuffixIndex {
    space: IdSpace,
    members: HashSet<NodeId>,
    by_suffix: HashMap<Suffix, BTreeSet<NodeId>>,
}

impl SuffixIndex {
    /// Creates an empty index over `space`.
    pub fn new(space: IdSpace) -> Self {
        SuffixIndex {
            space,
            members: HashSet::new(),
            by_suffix: HashMap::new(),
        }
    }

    /// Builds an index over an initial membership.
    ///
    /// # Examples
    ///
    /// ```
    /// use hyperring_core::SuffixIndex;
    /// use hyperring_id::IdSpace;
    ///
    /// let space = IdSpace::new(4, 3)?;
    /// let ids: Vec<_> = ["012", "230", "112"]
    ///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
    /// let index = SuffixIndex::build(space, ids.iter().copied());
    /// // Suffix "2" is carried by 012 and 112; the witness is the smaller.
    /// let witness = index.witness(&ids[0].suffix(1)).unwrap();
    /// assert_eq!(witness.to_string(), "012");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn build(space: IdSpace, ids: impl IntoIterator<Item = NodeId>) -> Self {
        let mut index = SuffixIndex::new(space);
        for id in ids {
            index.insert(id);
        }
        index
    }

    /// The identifier space this index is defined over.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of live nodes in the index.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the index holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is a live member.
    pub fn contains(&self, id: &NodeId) -> bool {
        self.members.contains(id)
    }

    /// Adds a node, registering all `d` of its suffixes. Returns `false`
    /// (and changes nothing) if the node was already present.
    pub fn insert(&mut self, id: NodeId) -> bool {
        debug_assert!(self.space.contains(&id), "id {id} not in space");
        if !self.members.insert(id) {
            return false;
        }
        for k in 1..=self.space.digit_count() {
            self.by_suffix.entry(id.suffix(k)).or_default().insert(id);
        }
        true
    }

    /// Removes a node and unregisters its suffixes. Returns `false` (and
    /// changes nothing) if the node was not present.
    pub fn remove(&mut self, id: &NodeId) -> bool {
        if !self.members.remove(id) {
            return false;
        }
        for k in 1..=self.space.digit_count() {
            let suffix = id.suffix(k);
            if let Some(set) = self.by_suffix.get_mut(&suffix) {
                set.remove(id);
                if set.is_empty() {
                    self.by_suffix.remove(&suffix);
                }
            }
        }
        true
    }

    /// The canonical witness for `suffix`: the smallest live node carrying
    /// it, or `None` if no live node does.
    pub fn witness(&self, suffix: &Suffix) -> Option<NodeId> {
        self.by_suffix
            .get(suffix)
            .and_then(|set| set.iter().next().copied())
    }

    /// All live nodes carrying `suffix`, in ascending order.
    pub fn carriers(&self, suffix: &Suffix) -> impl Iterator<Item = NodeId> + '_ {
        self.by_suffix
            .get(suffix)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Number of live nodes carrying `suffix`.
    pub fn carrier_count(&self, suffix: &Suffix) -> usize {
        self.by_suffix.get(suffix).map_or(0, BTreeSet::len)
    }

    /// Iterates over the live membership (arbitrary order).
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(space: IdSpace, ss: &[&str]) -> Vec<NodeId> {
        ss.iter().map(|s| space.parse_id(s).unwrap()).collect()
    }

    #[test]
    fn build_indexes_every_suffix_level() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "112"]);
        let index = SuffixIndex::build(space, v.iter().copied());
        assert_eq!(index.len(), 3);
        // Level 1: "2" carried by 012 and 112.
        let s2 = v[0].suffix(1);
        assert_eq!(index.carrier_count(&s2), 2);
        assert_eq!(index.witness(&s2), Some(v[0]));
        // Level 2: "12" carried by 012 and 112.
        let s12 = v[0].suffix(2);
        assert_eq!(index.carriers(&s12).collect::<Vec<_>>(), vec![v[0], v[2]]);
        // Level 3: full ids are unique.
        assert_eq!(index.carrier_count(&v[1].suffix(3)), 1);
    }

    #[test]
    fn insert_and_remove_are_inverses() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["012", "230", "112"]);
        let reference = SuffixIndex::build(space, v.iter().copied());

        let mut index = SuffixIndex::build(space, v.iter().copied());
        let extra = space.parse_id("333").unwrap();
        assert!(index.insert(extra));
        assert!(!index.insert(extra), "double insert must be a no-op");
        assert!(index.contains(&extra));
        assert_eq!(index.witness(&extra.suffix(1)), Some(extra));
        assert!(index.remove(&extra));
        assert!(!index.remove(&extra), "double remove must be a no-op");

        assert_eq!(index.len(), reference.len());
        for id in &v {
            for k in 1..=space.digit_count() {
                let s = id.suffix(k);
                assert_eq!(
                    index.carriers(&s).collect::<Vec<_>>(),
                    reference.carriers(&s).collect::<Vec<_>>()
                );
            }
        }
        // The departed node's unique suffixes are fully gone.
        assert_eq!(index.witness(&extra.suffix(3)), None);
    }

    #[test]
    fn witness_is_minimal_carrier() {
        let space = IdSpace::new(4, 3).unwrap();
        let v = ids(space, &["312", "112", "212"]);
        let mut index = SuffixIndex::build(space, v.iter().copied());
        let s = v[0].suffix(2); // "12", carried by all three
        assert_eq!(index.witness(&s).unwrap().to_string(), "112");
        index.remove(&v[1]);
        assert_eq!(index.witness(&s).unwrap().to_string(), "212");
    }
}
