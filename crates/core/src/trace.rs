//! Structured protocol tracing: per-node transition events with logical
//! timestamps, delivered to a pluggable [`TraceSink`].
//!
//! The engine emits [`ProtocolEvent`]s as [`Effect::Trace`](crate::Effect)
//! effects (only when [`ProtocolOptions::trace`](crate::ProtocolOptions)
//! is set, so untraced runs pay nothing). A runtime stamps each with the
//! node, virtual time, and a global sequence number, and hands the
//! resulting [`TraceRecord`] to whatever sink is attached: [`NullTrace`]
//! (discard), [`RingTrace`] (last-N buffer), [`JsonlTrace`] (one JSON
//! object per line), or [`DigestTrace`] (order-sensitive FNV digest, for
//! determinism goldens).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

use hyperring_id::NodeId;

use crate::effect::TimerId;
use crate::engine::Status;
use crate::table::NodeState;

/// One protocol-level transition observed at a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// The node began its join through `gateway`.
    JoinStarted {
        /// The member used as the first copy target.
        gateway: NodeId,
    },
    /// The node's status changed (`copying → waiting → notifying →
    /// in_system`, or the leave extension's states).
    StatusChanged {
        /// Previous status.
        from: Status,
        /// New status.
        to: Status,
    },
    /// A previously empty table entry was filled.
    EntryFilled {
        /// Table level of the entry.
        level: usize,
        /// Digit of the entry.
        digit: u8,
        /// The node stored there.
        node: NodeId,
        /// The state it was recorded with.
        state: NodeState,
    },
    /// The recorded state of an occupied entry flipped (T→S on
    /// notification, S→T on a correction).
    StateFlipped {
        /// Table level of the entry.
        level: usize,
        /// Digit of the entry.
        digit: u8,
        /// The node stored there.
        node: NodeId,
        /// The state it now records.
        to: NodeState,
    },
    /// A timed-out request was retransmitted (`attempt` counts from 1).
    RetrySent {
        /// The timer that fired.
        timer: TimerId,
        /// Retransmission number.
        attempt: u32,
    },
    /// A request exhausted its retry budget and was abandoned.
    RetriesExhausted {
        /// The timer that gave up.
        timer: TimerId,
    },
    /// The failure detector declared a monitored neighbor dead after
    /// `missed` consecutive unanswered probes (crash-churn extension).
    NeighborDead {
        /// The neighbor declared dead.
        peer: NodeId,
        /// Unanswered probes at the moment of the verdict.
        missed: u32,
    },
    /// A table entry holding a dead neighbor was evicted.
    EntryEvicted {
        /// Table level of the evicted entry.
        level: usize,
        /// Digit of the evicted entry.
        digit: u8,
        /// The dead node that occupied it.
        node: NodeId,
    },
    /// A `RepairQryMsg` was sent toward a vacated `(level, digit)` slot.
    RepairStarted {
        /// Table level of the slot under repair.
        level: usize,
        /// Digit of the slot under repair.
        digit: u8,
    },
    /// A `RepairRlyMsg` refilled a vacated slot with a survivor.
    RepairInstalled {
        /// Table level of the repaired slot.
        level: usize,
        /// Digit of the repaired slot.
        digit: u8,
        /// The replacement neighbor installed.
        node: NodeId,
    },
    /// A repair query dead-ended: no reachable survivor carries the
    /// slot's desired suffix, so the slot stays (correctly) empty.
    RepairFailed {
        /// Table level of the unrepairable slot.
        level: usize,
        /// Digit of the unrepairable slot.
        digit: u8,
    },
    /// A join-critical peer stopped answering and
    /// [`RetryPolicy::join_fallback`](crate::RetryPolicy) restarted the
    /// join through an alternate contact.
    JoinRerouted {
        /// The peer given up on.
        dead: NodeId,
        /// The contact the join restarted through.
        via: NodeId,
    },
    /// A join ran out of live contacts to fall back to; the joiner is
    /// stranded unless a late reply arrives.
    JoinStranded {
        /// The last peer given up on.
        dead: NodeId,
    },
}

fn status_name(s: Status) -> &'static str {
    match s {
        Status::Copying => "copying",
        Status::Waiting => "waiting",
        Status::Notifying => "notifying",
        Status::InSystem => "in_system",
        Status::Leaving => "leaving",
        Status::Departed => "departed",
        Status::Crashed => "crashed",
    }
}

fn state_name(s: NodeState) -> &'static str {
    match s {
        NodeState::S => "s",
        NodeState::T => "t",
    }
}

/// A [`ProtocolEvent`] stamped with its origin and logical time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Logical timestamp (virtual µs in the simulators; a monotone
    /// counter in the threaded runtime).
    pub at: u64,
    /// Global emission order within the run (0, 1, 2, …).
    pub seq: u64,
    /// The node the event happened at.
    pub node: NodeId,
    /// The event itself.
    pub event: ProtocolEvent,
}

impl TraceRecord {
    /// Renders the record as one deterministic JSON object (no trailing
    /// newline). Field order is fixed, so equal records give equal bytes.
    pub fn to_jsonl(&self) -> String {
        let mut s = format!(
            "{{\"at\":{},\"seq\":{},\"node\":\"{}\"",
            self.at, self.seq, self.node
        );
        match &self.event {
            ProtocolEvent::JoinStarted { gateway } => {
                s.push_str(&format!(
                    ",\"event\":\"join_started\",\"gateway\":\"{gateway}\""
                ));
            }
            ProtocolEvent::StatusChanged { from, to } => {
                s.push_str(&format!(
                    ",\"event\":\"status_changed\",\"from\":\"{}\",\"to\":\"{}\"",
                    status_name(*from),
                    status_name(*to)
                ));
            }
            ProtocolEvent::EntryFilled {
                level,
                digit,
                node,
                state,
            } => {
                s.push_str(&format!(
                    ",\"event\":\"entry_filled\",\"level\":{level},\"digit\":{digit},\"peer\":\"{node}\",\"state\":\"{}\"",
                    state_name(*state)
                ));
            }
            ProtocolEvent::StateFlipped {
                level,
                digit,
                node,
                to,
            } => {
                s.push_str(&format!(
                    ",\"event\":\"state_flipped\",\"level\":{level},\"digit\":{digit},\"peer\":\"{node}\",\"to\":\"{}\"",
                    state_name(*to)
                ));
            }
            ProtocolEvent::RetrySent { timer, attempt } => {
                s.push_str(&format!(
                    ",\"event\":\"retry_sent\",\"timer\":\"{}:{}\",\"attempt\":{attempt}",
                    timer.kind_name(),
                    timer.peer()
                ));
            }
            ProtocolEvent::RetriesExhausted { timer } => {
                s.push_str(&format!(
                    ",\"event\":\"retries_exhausted\",\"timer\":\"{}:{}\"",
                    timer.kind_name(),
                    timer.peer()
                ));
            }
            ProtocolEvent::NeighborDead { peer, missed } => {
                s.push_str(&format!(
                    ",\"event\":\"neighbor_dead\",\"peer\":\"{peer}\",\"missed\":{missed}"
                ));
            }
            ProtocolEvent::EntryEvicted { level, digit, node } => {
                s.push_str(&format!(
                    ",\"event\":\"entry_evicted\",\"level\":{level},\"digit\":{digit},\"peer\":\"{node}\""
                ));
            }
            ProtocolEvent::RepairStarted { level, digit } => {
                s.push_str(&format!(
                    ",\"event\":\"repair_started\",\"level\":{level},\"digit\":{digit}"
                ));
            }
            ProtocolEvent::RepairInstalled { level, digit, node } => {
                s.push_str(&format!(
                    ",\"event\":\"repair_installed\",\"level\":{level},\"digit\":{digit},\"peer\":\"{node}\""
                ));
            }
            ProtocolEvent::RepairFailed { level, digit } => {
                s.push_str(&format!(
                    ",\"event\":\"repair_failed\",\"level\":{level},\"digit\":{digit}"
                ));
            }
            ProtocolEvent::JoinRerouted { dead, via } => {
                s.push_str(&format!(
                    ",\"event\":\"join_rerouted\",\"dead\":\"{dead}\",\"via\":\"{via}\""
                ));
            }
            ProtocolEvent::JoinStranded { dead } => {
                s.push_str(&format!(",\"event\":\"join_stranded\",\"dead\":\"{dead}\""));
            }
        }
        s.push('}');
        s
    }
}

/// Consumer of [`TraceRecord`]s.
///
/// Runtimes call [`record`](TraceSink::record) once per emitted event, in
/// emission order. Implementations must not reorder or drop records if
/// they claim determinism (the golden tests digest the exact stream).
///
/// # Examples
///
/// Capture a joiner's transitions in memory, then inspect them:
///
/// ```
/// use hyperring_core::{RingTrace, SharedSink, SimNetworkBuilder};
/// use hyperring_id::IdSpace;
/// use hyperring_sim::ConstantDelay;
///
/// let space = IdSpace::new(4, 3)?;
/// let sink = SharedSink::new(RingTrace::new(64));
/// let mut b = SimNetworkBuilder::new(space);
/// b.add_member(space.parse_id("000")?);
/// b.add_joiner(space.parse_id("321")?, space.parse_id("000")?, 0);
/// b.trace(Box::new(sink.clone()));
/// let mut net = b.build(ConstantDelay(50), 1);
/// net.run();
/// let ring = sink.lock();
/// assert!(ring.records().any(|r| r.to_jsonl().contains("in_system")));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait TraceSink {
    /// Consumes one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flushes buffered output (a no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// Discards every record (the default when no sink is attached).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Keeps the last `capacity` records in memory.
#[derive(Debug, Clone)]
pub struct RingTrace {
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    total: u64,
}

impl RingTrace {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingTrace {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Total records ever offered (retained or evicted).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
        self.total += 1;
    }
}

/// Writes one JSON object per record to any [`std::io::Write`]r.
///
/// I/O errors are sticky: the first failure stops further writes and is
/// reported by [`finish`](JsonlTrace::finish).
#[derive(Debug)]
pub struct JsonlTrace<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlTrace<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlTrace {
            writer,
            error: None,
        }
    }

    /// Flushes and returns the writer, or the first I/O error hit.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlTrace<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{}", rec.to_jsonl()) {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Order-sensitive FNV-1a digest over the JSONL rendering of the stream —
/// two runs with equal digests (and counts) emitted byte-identical traces
/// in the same order. Used by the golden determinism tests.
#[derive(Debug, Clone, Copy)]
pub struct DigestTrace {
    hash: u64,
    count: u64,
}

impl DigestTrace {
    /// Creates an empty digest.
    pub fn new() -> Self {
        DigestTrace {
            hash: FNV_OFFSET,
            count: 0,
        }
    }

    /// The digest over everything recorded so far.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Number of records digested.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Default for DigestTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for DigestTrace {
    fn record(&mut self, rec: &TraceRecord) {
        for b in rec.to_jsonl().as_bytes() {
            self.hash ^= u64::from(*b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.hash ^= u64::from(b'\n');
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
        self.count += 1;
    }
}

/// Clonable handle sharing one sink between a runtime and the caller, so
/// the caller can read the sink back after the run (the runtime consumes
/// a `Box<dyn TraceSink>` and would otherwise swallow it).
#[derive(Debug, Default)]
pub struct SharedSink<T>(Arc<Mutex<T>>);

impl<T> Clone for SharedSink<T> {
    fn clone(&self) -> Self {
        SharedSink(Arc::clone(&self.0))
    }
}

impl<T: TraceSink> SharedSink<T> {
    /// Wraps `sink` in a shared handle.
    pub fn new(sink: T) -> Self {
        SharedSink(Arc::new(Mutex::new(sink)))
    }

    /// Locks the inner sink for inspection.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap()
    }
}

impl<T: TraceSink> TraceSink for SharedSink<T> {
    fn record(&mut self, rec: &TraceRecord) {
        self.0.lock().unwrap().record(rec);
    }

    fn flush(&mut self) {
        self.0.lock().unwrap().flush();
    }
}

/// A sink plus the run-global sequence counter: the single object a
/// runtime threads through [`dispatch_effects`](crate::dispatch_effects)
/// to stamp and deliver every traced event.
pub struct TraceStream {
    seq: u64,
    sink: Box<dyn TraceSink + Send>,
}

impl TraceStream {
    /// Wraps `sink` with a fresh sequence counter.
    pub fn new(sink: Box<dyn TraceSink + Send>) -> Self {
        TraceStream { seq: 0, sink }
    }

    /// Stamps `event` with `(at, next seq, node)` and records it.
    pub fn emit(&mut self, at: u64, node: NodeId, event: ProtocolEvent) {
        let rec = TraceRecord {
            at,
            seq: self.seq,
            node,
            event,
        };
        self.seq += 1;
        self.sink.record(&rec);
    }

    /// Number of records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

impl std::fmt::Debug for TraceStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStream")
            .field("seq", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_id::IdSpace;

    fn rec(seq: u64) -> TraceRecord {
        let space = IdSpace::new(4, 3).unwrap();
        TraceRecord {
            at: 100 + seq,
            seq,
            node: space.parse_id("321").unwrap(),
            event: ProtocolEvent::StatusChanged {
                from: Status::Copying,
                to: Status::Waiting,
            },
        }
    }

    #[test]
    fn jsonl_rendering_is_stable() {
        assert_eq!(
            rec(0).to_jsonl(),
            "{\"at\":100,\"seq\":0,\"node\":\"321\",\"event\":\"status_changed\",\
             \"from\":\"copying\",\"to\":\"waiting\"}"
        );
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = RingTrace::new(2);
        for i in 0..5 {
            ring.record(&rec(i));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total(), 5);
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = DigestTrace::new();
        let mut b = DigestTrace::new();
        a.record(&rec(0));
        a.record(&rec(1));
        b.record(&rec(1));
        b.record(&rec(0));
        assert_eq!(a.count(), b.count());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn jsonl_writer_emits_one_line_per_record() {
        let mut sink = JsonlTrace::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn stream_stamps_monotone_seq() {
        let shared = SharedSink::new(RingTrace::new(8));
        let mut stream = TraceStream::new(Box::new(shared.clone()));
        let space = IdSpace::new(4, 3).unwrap();
        let node = space.parse_id("123").unwrap();
        stream.emit(5, node, ProtocolEvent::JoinStarted { gateway: node });
        stream.emit(9, node, ProtocolEvent::JoinStarted { gateway: node });
        assert_eq!(stream.emitted(), 2);
        let ring = shared.lock();
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }
}
