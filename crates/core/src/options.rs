/// How much of a neighbor table a notification message carries — the §6.2
/// message-size reduction enhancements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Every message carries the sender's full table (the base protocol of
    /// §4, and the default).
    #[default]
    Full,
    /// A `JoinNotiMsg` from `x` to `y` carries only levels
    /// `x.noti_level ..= |csuf(x, y)|` of `x`'s table (§6.2, first bullet).
    Levels,
    /// In addition to [`PayloadMode::Levels`], the `JoinNotiMsg` carries a
    /// bit vector of `x`'s filled entries and the reply omits entries `x`
    /// already has below its notification level (§6.2, second bullet).
    BitVector,
}

/// Tunable options of the join protocol.
///
/// The defaults reproduce the paper's base protocol exactly; the payload
/// modes are the paper's own §6.2 enhancements, kept optional so their
/// effect can be measured (see the `ablation_msgsize` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolOptions {
    /// Table-payload reduction mode.
    pub payload: PayloadMode,
}

impl ProtocolOptions {
    /// The base protocol (full tables in every message).
    pub fn new() -> Self {
        Self::default()
    }

    /// Base protocol with the given payload mode.
    pub fn with_payload(payload: PayloadMode) -> Self {
        ProtocolOptions { payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_payload() {
        assert_eq!(ProtocolOptions::new().payload, PayloadMode::Full);
        assert_eq!(ProtocolOptions::default(), ProtocolOptions::new());
    }

    #[test]
    fn with_payload_sets_mode() {
        let o = ProtocolOptions::with_payload(PayloadMode::BitVector);
        assert_eq!(o.payload, PayloadMode::BitVector);
    }
}
