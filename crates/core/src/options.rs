/// How much of a neighbor table a notification message carries — the §6.2
/// message-size reduction enhancements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Every message carries the sender's full table (the base protocol of
    /// §4, and the default).
    #[default]
    Full,
    /// A `JoinNotiMsg` from `x` to `y` carries only levels
    /// `x.noti_level ..= |csuf(x, y)|` of `x`'s table (§6.2, first bullet).
    Levels,
    /// In addition to [`PayloadMode::Levels`], the `JoinNotiMsg` carries a
    /// bit vector of `x`'s filled entries and the reply omits entries `x`
    /// already has below its notification level (§6.2, second bullet).
    BitVector,
}

/// Timeout-and-retry parameters for running the join protocol over a lossy
/// transport (the paper assumes reliable delivery; this is the engineering
/// extension that makes the assumption hold in practice).
///
/// With a policy installed, the engine guards every request awaiting a
/// reply (`CpRstMsg`, `JoinWaitMsg`, `JoinNotiMsg`, `SpeNotiMsg`) with a
/// timer and retransmits up to [`max_retries`](RetryPolicy::max_retries)
/// times, and blindly repeats the unacknowledged state notifications
/// (`RvNghNotiMsg`, `InSysNotiMsg`)
/// [`noti_repeats`](RetryPolicy::noti_repeats) times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Microseconds to wait for a reply before retransmitting.
    pub timeout_us: u64,
    /// Maximum retransmissions of a reply-awaiting request.
    pub max_retries: u32,
    /// Bounded blind repeats of the unacknowledged notifications.
    pub noti_repeats: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_us: 1_000_000,
            max_retries: 16,
            noti_repeats: 4,
        }
    }
}

/// Tunable options of the join protocol.
///
/// The defaults reproduce the paper's base protocol exactly; the payload
/// modes are the paper's own §6.2 enhancements, kept optional so their
/// effect can be measured (see the `ablation_msgsize` experiment). The
/// [`retry`](ProtocolOptions::retry) and [`trace`](ProtocolOptions::trace)
/// extensions default to off, so a default-configured engine emits exactly
/// the same effect stream as before they existed (the golden tests pin
/// this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolOptions {
    /// Table-payload reduction mode.
    pub payload: PayloadMode,
    /// Timeout-and-retry policy; `None` (the default) assumes a reliable
    /// transport and arms no timers.
    pub retry: Option<RetryPolicy>,
    /// Whether the engine emits [`Effect::Trace`](crate::Effect) events.
    pub trace: bool,
}

impl ProtocolOptions {
    /// The base protocol (full tables in every message).
    pub fn new() -> Self {
        Self::default()
    }

    /// Base protocol with the given payload mode.
    pub fn with_payload(payload: PayloadMode) -> Self {
        ProtocolOptions {
            payload,
            ..Self::default()
        }
    }

    /// Enables timeout-and-retry with the given policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Enables structured trace emission.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_payload() {
        assert_eq!(ProtocolOptions::new().payload, PayloadMode::Full);
        assert_eq!(ProtocolOptions::default(), ProtocolOptions::new());
    }

    #[test]
    fn with_payload_sets_mode() {
        let o = ProtocolOptions::with_payload(PayloadMode::BitVector);
        assert_eq!(o.payload, PayloadMode::BitVector);
    }

    #[test]
    fn retry_and_trace_default_off() {
        let o = ProtocolOptions::new();
        assert!(o.retry.is_none());
        assert!(!o.trace);
        let o = o.with_retry(RetryPolicy::default()).with_trace();
        assert_eq!(o.retry.unwrap().max_retries, 16);
        assert!(o.trace);
    }
}
