/// How much of a neighbor table a notification message carries — the §6.2
/// message-size reduction enhancements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Every message carries the sender's full table (the base protocol of
    /// §4, and the default).
    #[default]
    Full,
    /// A `JoinNotiMsg` from `x` to `y` carries only levels
    /// `x.noti_level ..= |csuf(x, y)|` of `x`'s table (§6.2, first bullet).
    Levels,
    /// In addition to [`PayloadMode::Levels`], the `JoinNotiMsg` carries a
    /// bit vector of `x`'s filled entries and the reply omits entries `x`
    /// already has below its notification level (§6.2, second bullet).
    BitVector,
}

/// Timeout-and-retry parameters for running the join protocol over a lossy
/// transport (the paper assumes reliable delivery; this is the engineering
/// extension that makes the assumption hold in practice).
///
/// With a policy installed, the engine guards every request awaiting a
/// reply (`CpRstMsg`, `JoinWaitMsg`, `JoinNotiMsg`, `SpeNotiMsg`) with a
/// timer and retransmits up to [`max_retries`](RetryPolicy::max_retries)
/// times, and blindly repeats the unacknowledged state notifications
/// (`RvNghNotiMsg`, `InSysNotiMsg`)
/// [`noti_repeats`](RetryPolicy::noti_repeats) times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Microseconds to wait for a reply before retransmitting.
    pub timeout_us: u64,
    /// Maximum retransmissions of a reply-awaiting request.
    pub max_retries: u32,
    /// Bounded blind repeats of the unacknowledged notifications.
    pub noti_repeats: u32,
    /// Per-retransmission growth of the reply-awaiting timeout, in
    /// percent: 100 (the default) keeps the classic fixed spacing, 200
    /// doubles the wait after every unanswered retransmission. Blind
    /// notification repeats keep their fixed [`timeout_us`](Self::timeout_us) spacing —
    /// they are pacing, not a congestion response — so a lossless run is
    /// bit-identical whatever this is set to.
    pub backoff_pct: u32,
    /// Upper bound on a backed-off timeout (ignored at the default
    /// `backoff_pct = 100`).
    pub max_timeout_us: u64,
    /// Deterministic jitter amplitude in percent of the backed-off
    /// delay: each retransmission's wait is shifted by up to ±this
    /// fraction, derived purely from `(node, timer, attempt)` so every
    /// rerun of a seed jitters identically. 0 (the default) disables it.
    pub jitter_pct: u32,
    /// Sustained-churn hardening: when a *join-critical* request
    /// (`CpRstMsg`, `JoinWaitMsg`, `JoinNotiMsg`, `SpeNotiMsg`) exhausts
    /// its retries, treat the silent peer as dead and fall back instead
    /// of stranding the joiner forever — restart the copy through an
    /// alternate contact, or drop the dead peer from the notification
    /// wait set so the switch to S-node can still happen. Off by
    /// default (the paper's model has no crashes mid-join).
    pub join_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_us: 1_000_000,
            max_retries: 16,
            noti_repeats: 4,
            backoff_pct: 100,
            max_timeout_us: 16_000_000,
            jitter_pct: 0,
            join_fallback: false,
        }
    }
}

impl RetryPolicy {
    /// The delay before retransmission `attempt` of a reply-awaiting
    /// request fires (`attempt` 0 is the initial arm). With the default
    /// `backoff_pct = 100` this is always [`timeout_us`](Self::timeout_us);
    /// otherwise the delay grows `backoff_pct`% per attempt, saturating
    /// at [`max_timeout_us`](Self::max_timeout_us), and is then shifted
    /// by a deterministic jitter of up to ±[`jitter_pct`](Self::jitter_pct)%
    /// derived from `salt` (a pure function of the node and timer, so
    /// reruns of a seed are bit-identical).
    pub fn retry_delay(&self, salt: u64, attempt: u32) -> u64 {
        let mut d = self.timeout_us;
        if self.backoff_pct > 100 {
            for _ in 0..attempt {
                d = d.saturating_mul(u64::from(self.backoff_pct)) / 100;
                if d >= self.max_timeout_us {
                    d = self.max_timeout_us;
                    break;
                }
            }
        }
        if self.jitter_pct > 0 && attempt > 0 {
            let amp = d.saturating_mul(u64::from(self.jitter_pct)) / 100;
            if amp > 0 {
                // SplitMix64 over (salt, attempt): cheap, stateless, and
                // identical on every rerun and shard count.
                let mut z = salt ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                let span = 2 * amp + 1;
                d = d - amp + z % span;
            }
        }
        d.max(1)
    }
}

/// Crash-failure detection and table-repair parameters (the paper defers
/// failures to future work; this is the crash-churn extension).
///
/// With a detector installed, every `in_system` node periodically probes
/// its stored neighbors and reverse neighbors with `PingMsg`s. A neighbor
/// that leaves [`suspicion_threshold`](FailureDetector::suspicion_threshold)
/// consecutive probes unanswered is declared dead: its table entries are
/// evicted, and (when [`repair`](FailureDetector::repair) is on) a
/// `RepairQryMsg` is suffix-routed toward each vacated `(level, digit)`
/// slot to find a surviving replacement, which is installed through the
/// same `T`→`S` state discipline the join protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureDetector {
    /// Microseconds between liveness probes of each monitored neighbor.
    pub probe_interval_us: u64,
    /// Consecutive unanswered probes before a neighbor is declared dead.
    pub suspicion_threshold: u32,
    /// Whether evicted slots are refilled via `RepairQryMsg` routing;
    /// with repair off the detector only evicts (the control arm of the
    /// `crashchurn` experiment).
    pub repair: bool,
    /// Upper bound on vacated slots queried per probe tick. 0 (the
    /// default) keeps the legacy behavior of re-querying every pending
    /// slot on every tick; a bound spreads a mass-eviction's repair
    /// fan-out over successive ticks so a node under sustained churn
    /// does not flood the network with redundant `RepairQryMsg`s.
    pub max_repairs_in_flight: u32,
    /// When set, a pending slot that stayed vacant after a query waits
    /// `2^attempts` probe ticks before being re-queried (capped at 32
    /// ticks) instead of being re-queried every tick. Off by default;
    /// turning it on changes message schedules, so goldens pin the
    /// default.
    pub repair_backoff: bool,
}

impl Default for FailureDetector {
    fn default() -> Self {
        FailureDetector {
            probe_interval_us: 2_000_000,
            suspicion_threshold: 3,
            repair: true,
            max_repairs_in_flight: 0,
            repair_backoff: false,
        }
    }
}

/// How a node chooses among suffix-equivalent candidates when filling a
/// table slot (the adaptive-routing extension; the paper's protocol keeps
/// the first/lowest-id candidate it learns of).
///
/// Any node whose id extends the slot's `(level, digit)` suffix constraint
/// satisfies Definition 3.8 equally well, so the choice is a pure
/// performance knob: it can never affect consistency, only routed delay.
/// See `hyperring_core::adaptive` for the fill-time and demand-driven
/// machinery the harness drives when this is set to
/// [`Proximity`](NeighborSelection::Proximity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborSelection {
    /// Paper-faithful: keep the protocol's own candidate (the default,
    /// and what every golden pins).
    #[default]
    Paper,
    /// Prefer the lowest-delay candidate satisfying the slot's suffix
    /// constraint, and allow demand-driven promotion of secondary
    /// neighbors observed in forwarding traffic.
    Proximity,
}

/// Tunable options of the join protocol.
///
/// The defaults reproduce the paper's base protocol exactly; the payload
/// modes are the paper's own §6.2 enhancements, kept optional so their
/// effect can be measured (see the `ablation_msgsize` experiment). The
/// retry, trace, and failure-detection extensions default to off, so a
/// default-configured engine emits exactly the same effect stream as
/// before they existed (the golden tests pin this).
///
/// Fields are private; construct with the builder methods so future knobs
/// do not churn every construction site:
///
/// ```
/// use hyperring_core::{FailureDetector, ProtocolOptions, RetryPolicy};
/// let opts = ProtocolOptions::new()
///     .with_retry(RetryPolicy::default())
///     .with_failure_detector(FailureDetector::default())
///     .with_trace();
/// assert!(opts.retry().is_some());
/// assert!(opts.failure_detector().is_some());
/// assert!(opts.trace());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolOptions {
    /// Table-payload reduction mode.
    pub(crate) payload: PayloadMode,
    /// Timeout-and-retry policy; `None` (the default) assumes a reliable
    /// transport and arms no timers.
    pub(crate) retry: Option<RetryPolicy>,
    /// Whether the engine emits [`Effect::Trace`](crate::Effect) events.
    pub(crate) trace: bool,
    /// Crash-failure detection; `None` (the default) assumes crash-free
    /// nodes and sends no probes.
    pub(crate) failure_detector: Option<FailureDetector>,
    /// Candidate choice among suffix-equivalent neighbors. The engine's
    /// message schedule is unaffected (goldens pin the default); the
    /// harness reads this to pick the table-fill and promotion strategy.
    pub(crate) neighbor_selection: NeighborSelection,
}

impl ProtocolOptions {
    /// The base protocol (full tables in every message).
    pub fn new() -> Self {
        Self::default()
    }

    /// Base protocol with the given payload mode.
    pub fn with_payload(payload: PayloadMode) -> Self {
        ProtocolOptions {
            payload,
            ..Self::default()
        }
    }

    /// Enables timeout-and-retry with the given policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Enables structured trace emission.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables crash-failure detection (and, per the config, repair).
    pub fn with_failure_detector(mut self, detector: FailureDetector) -> Self {
        self.failure_detector = Some(detector);
        self
    }

    /// Sets the candidate-choice strategy among suffix-equivalent
    /// neighbors.
    pub fn with_neighbor_selection(mut self, selection: NeighborSelection) -> Self {
        self.neighbor_selection = selection;
        self
    }

    /// The configured table-payload reduction mode.
    pub fn payload(&self) -> PayloadMode {
        self.payload
    }

    /// The configured timeout-and-retry policy, if any.
    pub fn retry(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// Whether structured trace emission is on.
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// The configured crash-failure detector, if any.
    pub fn failure_detector(&self) -> Option<FailureDetector> {
        self.failure_detector
    }

    /// The configured candidate-choice strategy.
    pub fn neighbor_selection(&self) -> NeighborSelection {
        self.neighbor_selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_payload() {
        assert_eq!(ProtocolOptions::new().payload(), PayloadMode::Full);
        assert_eq!(ProtocolOptions::default(), ProtocolOptions::new());
    }

    #[test]
    fn with_payload_sets_mode() {
        let o = ProtocolOptions::with_payload(PayloadMode::BitVector);
        assert_eq!(o.payload(), PayloadMode::BitVector);
    }

    #[test]
    fn retry_and_trace_default_off() {
        let o = ProtocolOptions::new();
        assert!(o.retry().is_none());
        assert!(!o.trace());
        let o = o.with_retry(RetryPolicy::default()).with_trace();
        assert_eq!(o.retry().unwrap().max_retries, 16);
        assert!(o.trace());
    }

    #[test]
    fn neighbor_selection_defaults_to_paper() {
        let o = ProtocolOptions::new();
        assert_eq!(o.neighbor_selection(), NeighborSelection::Paper);
        let o = o.with_neighbor_selection(NeighborSelection::Proximity);
        assert_eq!(o.neighbor_selection(), NeighborSelection::Proximity);
    }

    #[test]
    fn failure_detector_defaults_off_and_builds_on() {
        let o = ProtocolOptions::new();
        assert!(o.failure_detector().is_none());
        let o = o.with_failure_detector(FailureDetector::default());
        let fd = o.failure_detector().unwrap();
        assert_eq!(fd.suspicion_threshold, 3);
        assert!(fd.repair);
    }
}
