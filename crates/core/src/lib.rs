//! Hypercube routing with a consistency-preserving join protocol.
//!
//! This crate implements the core contribution of Liu & Lam, *Neighbor
//! Table Construction and Update in a Dynamic Peer-to-Peer Network*
//! (ICDCS 2003):
//!
//! * the PRR-style **hypercube routing scheme** — per-node neighbor tables
//!   of `d` levels × `b` entries and suffix-matching routing
//!   ([`NeighborTable`], [`route`]);
//! * the **join protocol** of §4 ([`JoinEngine`]) — a sans-io state
//!   machine implementing Figures 5–14, under which an *arbitrary number of
//!   concurrent joins* leaves all neighbor tables consistent (the paper's
//!   Theorem 1) and every joiner eventually becomes an S-node (Theorem 2);
//! * the **consistency definition** of §3 as an executable checker
//!   ([`check_consistency`], [`check_reachability`]);
//! * network initialization per §6.1 ([`bootstrap_sequential`], or
//!   concurrent bootstrap through [`SimNetworkBuilder`]);
//! * the §6.2 message-size reductions ([`PayloadMode`]);
//! * a typed **effect/event layer** at the engine ↔ runtime boundary
//!   ([`Effect`], [`Event`], [`dispatch_effects`]) with optional
//!   timeout-and-retry for lossy transports ([`RetryPolicy`]) and a
//!   structured trace stream ([`TraceSink`], [`ProtocolEvent`]);
//! * **crash-failure detection and table repair** ([`FailureDetector`]) —
//!   periodic liveness probes evict dead neighbors, and suffix-routed
//!   repair queries refill the vacated slots among survivors (the paper
//!   defers failures to future work; off by default);
//! * an adapter ([`SimNetwork`]) that runs whole networks on the
//!   deterministic event-driven simulator of `hyperring-sim`.
//!
//! # Quick start
//!
//! ```
//! use hyperring_core::SimNetworkBuilder;
//! use hyperring_id::IdSpace;
//! use hyperring_sim::UniformDelay;
//! use rand::SeedableRng;
//!
//! // 16 members + 8 concurrent joiners over random 8-digit hex ids.
//! let space = IdSpace::new(16, 8)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let mut ids = std::collections::BTreeSet::new();
//! while ids.len() < 24 {
//!     ids.insert(space.random_id(&mut rng));
//! }
//! let ids: Vec<_> = ids.into_iter().collect();
//!
//! let mut b = SimNetworkBuilder::new(space);
//! for id in &ids[..16] {
//!     b.add_member(*id);
//! }
//! for id in &ids[16..] {
//!     b.add_joiner(*id, ids[0], 0); // all joins start at t = 0
//! }
//! let mut net = b.build(UniformDelay::new(1_000, 50_000), 7);
//! net.run();
//! assert!(net.all_in_system());
//! assert!(net.check_consistency().is_consistent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod consistency;
mod digest;
mod dispatch;
mod driver;
mod effect;
mod engine;
mod failure;
mod incremental;
mod messages;
mod optimize;
mod options;
mod oracle;
mod repair;
mod routing;
mod simnet;
mod stats;
mod suffix_compact;
mod suffix_index;
mod table;
mod trace;

pub use adaptive::{
    build_proximate_tables, build_proximate_tables_sampled, promote_secondaries, DemandProfile,
    PromotionReport,
};
pub use consistency::{
    check_consistency, check_consistency_naive, check_consistency_streaming,
    check_consistency_with_compact, check_consistency_with_index, check_reachability,
    check_reachability_refs, check_reachability_sampled, digest_and_check_streaming,
    ConsistencyReport, Violation,
};
pub use digest::{tables_digest, tables_digest_iter};
pub use dispatch::{dispatch_effects, EffectHandler};
pub use driver::{EngineDriver, NodeInput, RuntimeDriver, StepReport};
pub use effect::{Effect, Effects, Event, TimerId};
pub use engine::{JoinEngine, Status};
pub use incremental::IncrementalChecker;
pub use messages::{packed_id_bytes, BitVec, Message, MessageKind};
pub use optimize::{optimize_tables, OptimizeReport};
pub use options::{FailureDetector, NeighborSelection, PayloadMode, ProtocolOptions, RetryPolicy};
pub use oracle::build_consistent_tables;
pub use routing::{next_hop, route, RouteOutcome};
pub use simnet::{
    bootstrap_batched, bootstrap_batched_net, bootstrap_sequential, bootstrap_sequential_rebuild,
    Directory, SimMsg, SimNetwork, SimNetworkBuilder, SimNode,
};
pub use stats::MessageStats;
pub use suffix_compact::CompactSuffixIndex;
pub use suffix_index::SuffixIndex;
pub use table::{Entry, NeighborTable, NodeState, SnapshotRow, TableSnapshot};
pub use trace::{
    DigestTrace, JsonlTrace, NullTrace, ProtocolEvent, RingTrace, SharedSink, TraceRecord,
    TraceSink, TraceStream,
};
