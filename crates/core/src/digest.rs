//! Canonical table fingerprinting, shared by the golden determinism
//! tests, the scale harness, and CI's sharded-determinism smoke check.

use crate::table::{NeighborTable, NodeState};

/// FNV-1a over a canonical rendering of every table: owner, all entries
/// `(level, digit, node, state)`, and all reverse-neighbor sets in
/// ascending id order. Spelled out here (instead of `DefaultHasher`) so
/// the digest is stable across Rust releases; two runs — e.g. a
/// sequential and a sharded one — produced identical tables iff their
/// digests match.
pub fn tables_digest(tables: &[NeighborTable]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for t in tables {
        eat(&format!("T{}", t.owner()));
        for (level, digit, e) in t.iter() {
            eat(&format!(
                "E{level}.{digit}.{}.{}",
                e.node,
                if e.state == NodeState::S { 'S' } else { 'T' }
            ));
        }
        for level in 0..t.space().digit_count() {
            for digit in 0..t.space().base() as u8 {
                for r in t.reverse_of(level, digit) {
                    eat(&format!("R{level}.{digit}.{r}"));
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Entry;
    use hyperring_id::IdSpace;

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let space = IdSpace::new(4, 5).unwrap();
        let a = space.parse_id("21233").unwrap();
        let b = space.parse_id("31033").unwrap();
        let mut ta = NeighborTable::new(space, a);
        ta.set_self_entries(NodeState::S);
        let mut tb = NeighborTable::new(space, b);
        tb.set_self_entries(NodeState::S);
        let d1 = tables_digest(&[ta.clone(), tb.clone()]);
        let d2 = tables_digest(&[tb.clone(), ta.clone()]);
        assert_ne!(d1, d2, "table order must be part of the fingerprint");
        ta.set(
            2,
            0,
            Entry {
                node: b,
                state: NodeState::T,
            },
        );
        assert_ne!(d1, tables_digest(&[ta, tb]));
    }
}
