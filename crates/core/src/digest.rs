//! Canonical table fingerprinting, shared by the golden determinism
//! tests, the scale harness, and CI's sharded-determinism smoke check.
//!
//! The byte stream is factored into per-table pieces ([`Fnv`],
//! [`digest_table_prefix`], [`digest_entry`], [`digest_reverse_sets`]) so
//! that [`tables_digest`] and the combined
//! [`digest_and_check_streaming`](crate::digest_and_check_streaming) pass
//! fold the *same* bytes — the latter interleaves digesting with the
//! Definition-3.8 check and reads each table's arena exactly once.

use crate::table::{Entry, NeighborTable, NodeState};

/// Incremental FNV-1a over canonical table renderings. Spelled out here
/// (instead of `DefaultHasher`) so the digest is stable across Rust
/// releases; two runs — e.g. a sequential and a sharded one — produced
/// identical tables iff their digests match.
#[derive(Debug, Clone)]
pub(crate) struct Fnv(u64);

impl Fnv {
    /// The FNV-1a offset basis.
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds a string's bytes into the running digest.
    pub(crate) fn eat(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Digests a table's owner line (`T{owner}`) — the start of its canonical
/// rendering.
pub(crate) fn digest_table_prefix(h: &mut Fnv, t: &NeighborTable) {
    h.eat(&format!("T{}", t.owner()));
}

/// Digests one non-empty entry (`E{level}.{digit}.{node}.{S|T}`). Must be
/// fed every non-empty entry in slot order (level-major, digit ascending)
/// to reproduce [`tables_digest`].
pub(crate) fn digest_entry(h: &mut Fnv, level: usize, digit: u8, e: &Entry) {
    h.eat(&format!(
        "E{level}.{digit}.{}.{}",
        e.node,
        if e.state == NodeState::S { 'S' } else { 'T' }
    ));
}

/// Digests a table's reverse-neighbor sets (`R{level}.{digit}.{r}` in
/// ascending id order per slot) — the tail of its canonical rendering.
pub(crate) fn digest_reverse_sets(h: &mut Fnv, t: &NeighborTable) {
    for level in 0..t.space().digit_count() {
        for digit in 0..t.space().base() as u8 {
            for r in t.reverse_of(level, digit) {
                h.eat(&format!("R{level}.{digit}.{r}"));
            }
        }
    }
}

/// FNV-1a over a canonical rendering of every table: owner, all entries
/// `(level, digit, node, state)`, and all reverse-neighbor sets in
/// ascending id order.
pub fn tables_digest(tables: &[NeighborTable]) -> u64 {
    tables_digest_iter(tables.iter())
}

/// [`tables_digest`] over borrowed tables — the streaming form the scale
/// harness feeds from [`SimNetwork::tables_iter`](crate::SimNetwork::tables_iter)
/// without cloning a `Vec<NeighborTable>` first. Byte-identical to
/// [`tables_digest`] for the same table sequence.
pub fn tables_digest_iter<'a>(tables: impl IntoIterator<Item = &'a NeighborTable>) -> u64 {
    let mut h = Fnv::new();
    for t in tables {
        digest_table_prefix(&mut h, t);
        for (level, digit, e) in t.iter() {
            digest_entry(&mut h, level, digit, &e);
        }
        digest_reverse_sets(&mut h, t);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Entry;
    use hyperring_id::IdSpace;

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let space = IdSpace::new(4, 5).unwrap();
        let a = space.parse_id("21233").unwrap();
        let b = space.parse_id("31033").unwrap();
        let mut ta = NeighborTable::new(space, a);
        ta.set_self_entries(NodeState::S);
        let mut tb = NeighborTable::new(space, b);
        tb.set_self_entries(NodeState::S);
        let d1 = tables_digest(&[ta.clone(), tb.clone()]);
        let d2 = tables_digest(&[tb.clone(), ta.clone()]);
        assert_ne!(d1, d2, "table order must be part of the fingerprint");
        ta.set(
            2,
            0,
            Entry {
                node: b,
                state: NodeState::T,
            },
        );
        assert_ne!(d1, tables_digest(&[ta, tb]));
    }

    #[test]
    fn iter_digest_matches_slice_digest() {
        let space = IdSpace::new(4, 5).unwrap();
        let a = space.parse_id("21233").unwrap();
        let b = space.parse_id("31033").unwrap();
        let mut ta = NeighborTable::new(space, a);
        ta.set_self_entries(NodeState::S);
        let mut tb = NeighborTable::new(space, b);
        tb.set_self_entries(NodeState::T);
        tb.add_reverse(0, 3, a);
        let tables = vec![ta, tb];
        assert_eq!(tables_digest(&tables), tables_digest_iter(tables.iter()));
    }
}
