//! Glue between the sans-io [`JoinEngine`] and the deterministic
//! discrete-event simulator: build a network of members and joiners, run
//! the join protocol to quiescence, inspect the result.
//!
//! # Examples
//!
//! Five members (oracle-built consistent tables) plus three concurrent
//! joiners, the paper's Figure 2 scenario:
//!
//! ```
//! use hyperring_core::SimNetworkBuilder;
//! use hyperring_sim::UniformDelay;
//! use hyperring_id::IdSpace;
//!
//! let space = IdSpace::new(8, 5)?;
//! let mut b = SimNetworkBuilder::new(space);
//! for s in ["72430", "10353", "62332", "13141", "31701"] {
//!     b.add_member(space.parse_id(s)?);
//! }
//! for s in ["10261", "47051", "00261"] {
//!     b.add_joiner(space.parse_id(s)?, space.parse_id("72430")?, 0);
//! }
//! let mut net = b.build(UniformDelay::new(1_000, 50_000), 7);
//! net.run();
//! assert!(net.all_in_system());
//! assert!(net.check_consistency().is_consistent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::{Actor, Context, DelayModel, RunReport, Simulator, Time};

use crate::consistency::{check_consistency_streaming, ConsistencyReport};
use crate::dispatch::EffectHandler;
use crate::driver::{EngineDriver, NodeInput, RuntimeDriver};
use crate::effect::TimerId;
use crate::engine::{JoinEngine, Status};
use crate::messages::Message;
use crate::options::ProtocolOptions;
use crate::oracle::build_consistent_tables;
use crate::table::NeighborTable;
use crate::trace::{TraceSink, TraceStream};

/// Message wrapper carried by the simulator.
#[derive(Debug, Clone)]
pub enum SimMsg {
    /// A protocol message from `from`.
    Proto {
        /// The overlay-level sender.
        from: NodeId,
        /// The protocol message.
        msg: Message,
    },
    /// Control: begin joining through `gateway` (delivered to the joiner
    /// itself at its start time).
    Start {
        /// The known member to join through (assumption (ii) of §3.1).
        gateway: NodeId,
    },
    /// Control: begin a graceful leave (extension).
    Leave,
    /// Control: crash-fail on the spot — no goodbye, no replacement
    /// (crash-churn extension). Survivors must detect the silence.
    Crash,
    /// Control: arm the failure detector (delivered to every initial
    /// member at time 0 when a [`FailureDetector`](crate::FailureDetector)
    /// is configured; joiners arm theirs on becoming S-nodes).
    StartFd,
}

/// Append-only `NodeId → dense index` interner shared by the builder and
/// every actor of one simulation.
///
/// Actors address each other with the dense `usize` indices the simulator
/// uses, so overlay-level `NodeId` destinations must be resolved once per
/// send. The directory supports *growth* — a joiner can be injected into a
/// live network ([`SimNetwork::add_joiner_live`]) without rebuilding every
/// actor's view — which is what turns §6.1 sequential bootstrap from
/// O(n²) rebuild work into O(n) incremental work. Indices are stable:
/// entries are only ever appended, never moved or removed.
///
/// The mapping is published as a shared [`Arc<HashMap>`] snapshot
/// ([`snapshot`](Directory::snapshot)) that actors keep and probe
/// lock-free on the send hot path; the (private) insert path swaps in a
/// copy-on-write successor, and an actor re-snapshots only when a lookup
/// misses (which can only happen after growth). Inserts are rare — once
/// per [`SimNetwork::add_joiner_live`] — so paying a map clone there keeps
/// every per-message lookup as cheap as an unsynchronized `HashMap` hit.
#[derive(Debug, Default)]
pub struct Directory {
    map: RwLock<Arc<HashMap<NodeId, usize>>>,
}

impl Directory {
    /// Wraps an already-built mapping (the builder's bulk path — no
    /// per-entry copy-on-write).
    fn new(map: HashMap<NodeId, usize>) -> Self {
        Directory {
            map: RwLock::new(Arc::new(map)),
        }
    }

    /// The dense actor index of `id`, if registered.
    pub fn resolve(&self, id: &NodeId) -> Option<usize> {
        self.map.read().unwrap().get(id).copied()
    }

    /// The current mapping as a shared snapshot. Stale snapshots stay
    /// valid (indices never move); they merely miss nodes added later.
    pub fn snapshot(&self) -> Arc<HashMap<NodeId, usize>> {
        Arc::clone(&self.map.read().unwrap())
    }

    /// Registers `id → idx` via copy-on-write; returns `false` when `id`
    /// was already present (the mapping is left unchanged in that case).
    fn insert(&self, id: NodeId, idx: usize) -> bool {
        let mut guard = self.map.write().unwrap();
        if guard.contains_key(&id) {
            return false;
        }
        let mut next = HashMap::clone(&guard);
        next.insert(id, idx);
        *guard = Arc::new(next);
        true
    }

    /// Registers a batch of consecutive ids (`base`, `base + 1`, …) in ONE
    /// copy-on-write step. Actors hold on to whichever snapshot they last
    /// resolved against, so every distinct map version can stay live at
    /// once; inserting a join wave per-id would publish `wave` versions of
    /// an O(n) map where one suffices — the difference between O(n²) and
    /// O(n · waves) peak memory over a large bootstrap.
    ///
    /// # Panics
    ///
    /// Panics if any id is already present (the batch is applied
    /// all-or-nothing only in the sense that the panic fires before the
    /// new map is published).
    fn insert_batch(&self, ids: &[NodeId], base: usize) {
        let mut guard = self.map.write().unwrap();
        let mut next = HashMap::clone(&guard);
        next.reserve(ids.len());
        for (off, &id) in ids.iter().enumerate() {
            assert!(
                next.insert(id, base + off).is_none(),
                "duplicate node identifier"
            );
        }
        *guard = Arc::new(next);
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// Whether no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One simulated overlay node: a driven engine plus the shared address
/// directory.
#[derive(Debug)]
pub struct SimNode {
    node: EngineDriver,
    dir: Arc<Directory>,
    /// The directory snapshot this node resolves against, probed
    /// lock-free on every send and refreshed only when a lookup misses
    /// (i.e. after the network grew).
    dir_map: Arc<HashMap<NodeId, usize>>,
    /// The run-global trace stream, shared by every node of a traced
    /// network; locked only while a node drives an input.
    trace: Option<Arc<Mutex<TraceStream>>>,
}

impl SimNode {
    fn new(
        engine: JoinEngine,
        dir: &Arc<Directory>,
        trace: Option<Arc<Mutex<TraceStream>>>,
    ) -> Self {
        SimNode {
            node: EngineDriver::new(engine),
            dir: Arc::clone(dir),
            dir_map: dir.snapshot(),
            trace,
        }
    }

    /// The wrapped protocol engine.
    pub fn engine(&self) -> &JoinEngine {
        self.node.engine()
    }

    /// Feeds one input through the shared runtime driver, with this
    /// actor's simulator context as the transport.
    fn dispatch(
        &mut self,
        ctx: &mut Context<'_, SimMsg, TimerId>,
        from_idx: usize,
        reply_to: Option<NodeId>,
        input: NodeInput,
    ) {
        let me = self.node.engine().id();
        let mut rt = SimHandler {
            ctx,
            me,
            reply_to,
            from_idx,
            dir: &self.dir,
            dir_map: &mut self.dir_map,
        };
        match &self.trace {
            Some(stream) => {
                let mut stream = stream.lock().unwrap();
                self.node.drive(input, &mut rt, Some(&mut stream));
            }
            None => {
                self.node.drive(input, &mut rt, None);
            }
        }
    }
}

/// [`EffectHandler`] adapter mapping engine effects onto one simulator
/// actor's context: overlay `NodeId`s are resolved to dense indices (with
/// the reply fast-path — the sender's index is already known), timer
/// effects become simulator timers.
struct SimHandler<'a, 'c> {
    ctx: &'a mut Context<'c, SimMsg, TimerId>,
    me: NodeId,
    reply_to: Option<NodeId>,
    from_idx: usize,
    dir: &'a Directory,
    dir_map: &'a mut Arc<HashMap<NodeId, usize>>,
}

impl RuntimeDriver for SimHandler<'_, '_> {
    fn now_us(&self) -> u64 {
        self.ctx.now()
    }
}

impl EffectHandler for SimHandler<'_, '_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        // Dense reply routing: for a protocol message the simulator already
        // told us the sender's index, so replies (the bulk of join traffic)
        // skip the directory lookup entirely.
        let idx = if self.reply_to == Some(to) {
            self.from_idx
        } else if let Some(&i) = self.dir_map.get(&to) {
            i
        } else {
            // Fall back to one re-snapshot of the shared directory (the
            // destination may have joined after our snapshot was taken).
            *self.dir_map = self.dir.snapshot();
            self.dir_map
                .get(&to)
                .copied()
                .unwrap_or_else(|| panic!("message addressed to unknown node {to}"))
        };
        self.ctx.send(idx, SimMsg::Proto { from: self.me, msg });
    }

    fn set_timer(&mut self, id: TimerId, delay_hint: u64) {
        self.ctx.set_timer(id, delay_hint);
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.ctx.cancel_timer(id);
    }
}

impl Actor for SimNode {
    type Msg = SimMsg;
    type Timer = TimerId;

    fn on_message(&mut self, ctx: &mut Context<'_, SimMsg, TimerId>, from_idx: usize, msg: SimMsg) {
        let reply_to = match &msg {
            SimMsg::Proto { from, .. } => Some(*from),
            _ => None,
        };
        let input = match msg {
            SimMsg::Start { gateway } => NodeInput::StartJoin { gateway },
            SimMsg::Leave => NodeInput::BeginLeave,
            SimMsg::Crash => {
                self.node.crash();
                return;
            }
            SimMsg::StartFd => NodeInput::StartFailureDetector,
            SimMsg::Proto { from, msg } => NodeInput::Deliver { from, msg },
        };
        self.dispatch(ctx, from_idx, reply_to, input);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SimMsg, TimerId>, timer: TimerId) {
        self.dispatch(ctx, usize::MAX, None, NodeInput::TimerFired(timer));
    }
}

/// Builder for a [`SimNetwork`].
#[derive(Debug)]
pub struct SimNetworkBuilder {
    space: IdSpace,
    opts: ProtocolOptions,
    members: Vec<NodeId>,
    member_tables: Option<Vec<NeighborTable>>,
    joiners: Vec<(NodeId, NodeId, Time)>,
    trace: Option<Arc<Mutex<TraceStream>>>,
    shards: usize,
}

impl SimNetworkBuilder {
    /// Starts a builder over `space` with default protocol options.
    pub fn new(space: IdSpace) -> Self {
        SimNetworkBuilder {
            space,
            opts: ProtocolOptions::default(),
            members: Vec::new(),
            member_tables: None,
            joiners: Vec::new(),
            trace: None,
            shards: 1,
        }
    }

    /// Partitions the simulator's event queue into `n` shards
    /// ([`Simulator::set_shards`]). Results are bit-identical for every
    /// shard count; more shards let batch delivery run on more cores.
    ///
    /// # Panics
    ///
    /// Panics at [`build`](Self::build) time if `n` is zero.
    pub fn shards(&mut self, n: usize) -> &mut Self {
        self.shards = n;
        self
    }

    /// Sets the protocol options for every node.
    pub fn options(&mut self, opts: ProtocolOptions) -> &mut Self {
        self.opts = opts;
        self
    }

    /// Attaches a [`TraceSink`] that will receive every node's protocol
    /// events, stamped with virtual time and a run-global sequence number.
    /// Implies [`ProtocolOptions::trace`] for every node (regardless of the
    /// order of `options` and `trace` calls).
    pub fn trace(&mut self, sink: Box<dyn TraceSink + Send>) -> &mut Self {
        self.trace = Some(Arc::new(Mutex::new(TraceStream::new(sink))));
        self
    }

    /// Adds a member of the initial consistent network `V`. Tables for all
    /// members are built by the oracle at [`build`](Self::build) time.
    pub fn add_member(&mut self, id: NodeId) -> &mut Self {
        assert!(
            self.member_tables.is_none(),
            "cannot mix add_member with preset tables"
        );
        self.members.push(id);
        self
    }

    /// Uses pre-built member tables instead of the oracle (e.g. tables that
    /// came out of a previous run).
    pub fn with_member_tables(&mut self, tables: Vec<NeighborTable>) -> &mut Self {
        assert!(
            self.members.is_empty(),
            "cannot mix preset tables with add_member"
        );
        self.member_tables = Some(tables);
        self
    }

    /// Adds a node that joins through `gateway`, starting at virtual time
    /// `at` (the paper starts all joins at time 0).
    pub fn add_joiner(&mut self, id: NodeId, gateway: NodeId, at: Time) -> &mut Self {
        self.joiners.push((id, gateway, at));
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if there are no members, if identifiers collide, or if a
    /// joiner's gateway is not a member or joiner.
    pub fn build<D: DelayModel>(&mut self, delay: D, seed: u64) -> SimNetwork<D> {
        let member_tables = match self.member_tables.take() {
            Some(t) => t,
            None => build_consistent_tables(self.space, &self.members),
        };
        assert!(
            !member_tables.is_empty(),
            "network needs at least one member"
        );
        let mut opts = self.opts;
        if self.trace.is_some() {
            opts = opts.with_trace();
        }

        let mut ids: Vec<NodeId> = member_tables.iter().map(|t| t.owner()).collect();
        ids.extend(self.joiners.iter().map(|(id, _, _)| *id));
        let mut map = HashMap::with_capacity(ids.len());
        for (i, id) in ids.iter().enumerate() {
            assert!(map.insert(*id, i).is_none(), "duplicate node identifier");
        }
        let dir = Arc::new(Directory::new(map));

        let mut actors: Vec<SimNode> = member_tables
            .into_iter()
            .map(|t| {
                SimNode::new(
                    JoinEngine::new_member(self.space, opts, t),
                    &dir,
                    self.trace.clone(),
                )
            })
            .collect();
        for (id, _, _) in &self.joiners {
            actors.push(SimNode::new(
                JoinEngine::new_joiner(self.space, opts, *id),
                &dir,
                self.trace.clone(),
            ));
        }

        let mut sim = Simulator::new(actors, delay, seed);
        // Repartitioning requires an idle simulator, so shard before any
        // build-time injections land in the queues.
        sim.set_shards(self.shards);
        if opts.failure_detector().is_some() {
            // Initial members are already in_system, so nothing would ever
            // arm their detectors; kick them off at time 0.
            let members = ids.len() - self.joiners.len();
            for idx in 0..members {
                sim.inject_at(0, idx, idx, SimMsg::StartFd);
            }
        }
        for (id, gateway, at) in &self.joiners {
            assert!(dir.resolve(gateway).is_some(), "gateway {gateway} unknown");
            assert_ne!(id, gateway, "node cannot join via itself");
            let idx = dir.resolve(id).expect("joiner registered above");
            sim.inject_at(*at, idx, idx, SimMsg::Start { gateway: *gateway });
        }
        SimNetwork {
            space: self.space,
            opts,
            sim,
            dir,
            ids,
            joiner_count: self.joiners.len(),
            trace: self.trace.clone(),
        }
    }
}

/// A simulated overlay network running the join protocol.
#[derive(Debug)]
pub struct SimNetwork<D: DelayModel> {
    space: IdSpace,
    opts: ProtocolOptions,
    sim: Simulator<SimNode, D>,
    dir: Arc<Directory>,
    ids: Vec<NodeId>,
    joiner_count: usize,
    trace: Option<Arc<Mutex<TraceStream>>>,
}

impl<D: DelayModel> SimNetwork<D> {
    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// All node identifiers (members first, then joiners).
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of joiners configured.
    pub fn joiner_count(&self) -> usize {
        self.joiner_count
    }

    /// Runs to quiescence and returns the simulator's report.
    pub fn run(&mut self) -> RunReport {
        let report = self.sim.run();
        self.stamp_trace(report)
    }

    /// Runs, but aborts after `max_deliveries` — for liveness tests.
    pub fn run_limited(&mut self, max_deliveries: u64) -> RunReport {
        let report = self.sim.run_limited(max_deliveries);
        self.stamp_trace(report)
    }

    /// Runs until the next live event lies past virtual time `until` (or
    /// the queue drains). With a failure detector configured the probe
    /// tick re-arms forever, so [`run`](Self::run) would never return;
    /// crash-churn drivers advance the clock in horizons instead.
    pub fn run_until(&mut self, until: Time) -> RunReport {
        let report = self.sim.run_until(until);
        self.stamp_trace(report)
    }

    /// Copies the trace stream's emission count into the report, and
    /// flushes the sink so file-backed traces are complete at return.
    fn stamp_trace(&self, mut report: RunReport) -> RunReport {
        if let Some(stream) = &self.trace {
            let mut stream = stream.lock().unwrap();
            stream.flush();
            report.traced = stream.emitted();
        }
        report
    }

    /// The engine of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn engine(&self, id: &NodeId) -> &JoinEngine {
        let idx = self.dir.resolve(id).expect("unknown node id");
        self.sim.actor(idx).engine()
    }

    /// Iterates over all engines (members first, then joiners).
    pub fn engines(&self) -> impl Iterator<Item = &JoinEngine> {
        self.sim.actors().map(|a| a.engine())
    }

    /// Iterates over the joiners' engines only.
    pub fn joiners(&self) -> impl Iterator<Item = &JoinEngine> {
        let members = self.ids.len() - self.joiner_count;
        self.sim.actors().skip(members).map(|a| a.engine())
    }

    /// Whether every node (member and joiner) is an S-node.
    pub fn all_in_system(&self) -> bool {
        self.engines().all(|e| e.status() == Status::InSystem)
    }

    /// Checks Definition 3.8 over the tables of *live* (neither departed
    /// nor crashed) nodes — the survivor-restricted checker. Streams over
    /// the engines' arena-backed tables in place
    /// ([`tables_iter`](Self::tables_iter)); no table is cloned.
    pub fn check_consistency(&self) -> ConsistencyReport {
        check_consistency_streaming(self.space, self.tables_iter())
    }

    /// Borrows the tables of live (neither departed nor crashed) nodes in
    /// engine order — the zero-copy view every digest/consistency path
    /// feeds from. Each item is the engine's arena-backed table in place.
    pub fn tables_iter(&self) -> impl Iterator<Item = &NeighborTable> {
        self.engines()
            .filter(|e| !matches!(e.status(), Status::Departed | Status::Crashed))
            .map(|e| e.table())
    }

    /// Visits each live node's table in engine order — the closure form of
    /// [`tables_iter`](Self::tables_iter) for callers that only need a
    /// single pass (e.g. folding a digest).
    pub fn for_each_table(&self, mut f: impl FnMut(&NeighborTable)) {
        for t in self.tables_iter() {
            f(t);
        }
    }

    /// Clones out the tables of live (neither departed nor crashed) nodes.
    ///
    /// **Tests and table hand-off only**: this materializes `O(n · d · b)`
    /// memory (every entry and reverse set of every live node). Checking,
    /// digesting, and counting should borrow via
    /// [`tables_iter`](Self::tables_iter) /
    /// [`for_each_table`](Self::for_each_table) instead.
    pub fn tables(&self) -> Vec<NeighborTable> {
        self.tables_iter().cloned().collect()
    }

    /// Schedules a graceful leave of `id` at the current virtual time,
    /// then runs the simulation to quiescence (extension; sequential-churn
    /// scope — call between waves, not during one).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the leave fails to complete.
    pub fn depart(&mut self, id: &NodeId) -> RunReport {
        let idx = self.dir.resolve(id).expect("unknown node id");
        let now = self.sim.now();
        self.sim.inject_at(now, idx, idx, SimMsg::Leave);
        let report = self.sim.run();
        assert_eq!(
            self.engine(id).status(),
            Status::Departed,
            "{id} failed to depart"
        );
        self.stamp_trace(report)
    }

    /// Whether every node is an S-node, cleanly departed, or crashed.
    pub fn all_settled(&self) -> bool {
        self.engines().all(|e| {
            matches!(
                e.status(),
                Status::InSystem | Status::Departed | Status::Crashed
            )
        })
    }

    /// Schedules a graceful leave of `id` at absolute virtual time `at`
    /// *without* running the simulation — unlike [`depart`](Self::depart),
    /// which is the sequential-churn entry point. Combining overlapping
    /// `leave_at` calls is exactly the unarbitrated territory
    /// [`JoinEngine::begin_leave`] documents as out of scope; the
    /// regression test below pins what happens there.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn leave_at(&mut self, id: &NodeId, at: Time) {
        let idx = self.dir.resolve(id).expect("unknown node id");
        self.sim.inject_at(at, idx, idx, SimMsg::Leave);
    }

    /// Schedules a crash failure of `id` at absolute virtual time `at`
    /// (crash-churn extension). The node goes silent at that instant —
    /// no goodbye, no replacement — and is excluded from
    /// [`tables`](Self::tables) / [`check_consistency`](Self::check_consistency)
    /// thereafter. Drive the survivors with [`run_until`](Self::run_until).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or `at` is in the past.
    pub fn crash_at(&mut self, id: &NodeId, at: Time) {
        let idx = self.dir.resolve(id).expect("unknown node id");
        self.sim.inject_at(at, idx, idx, SimMsg::Crash);
    }

    /// Virtual time (µs).
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Number of event-queue shards driving this network.
    pub fn shards(&self) -> usize {
        self.sim.shards()
    }

    /// Injects a fresh joiner into the *live* network: registers it in
    /// the shared [`Directory`], appends an actor to the running
    /// simulator, and schedules its `Start` through `gateway` at the
    /// current virtual time. Returns the new actor's dense index.
    ///
    /// Existing actors, queued events, and tables are untouched — this is
    /// the O(1)-per-join path that [`bootstrap_sequential`] uses instead
    /// of rebuilding the whole network for every join.
    ///
    /// # Panics
    ///
    /// Panics if `id` duplicates an existing node, equals `gateway`, or
    /// `gateway` is unknown.
    pub fn add_joiner_live(&mut self, id: NodeId, gateway: NodeId) -> usize {
        assert!(
            self.dir.resolve(&gateway).is_some(),
            "gateway {gateway} unknown"
        );
        assert_ne!(id, gateway, "node cannot join via itself");
        let idx = self.sim.len();
        assert!(self.dir.insert(id, idx), "duplicate node identifier");
        self.ids.push(id);
        self.joiner_count += 1;
        let added = self.sim.add_actor(SimNode::new(
            JoinEngine::new_joiner(self.space, self.opts, id),
            &self.dir,
            self.trace.clone(),
        ));
        debug_assert_eq!(added, idx);
        let now = self.sim.now();
        self.sim.inject_at(now, idx, idx, SimMsg::Start { gateway });
        idx
    }

    /// Injects a whole wave of joiners at once, all starting through
    /// `gateway` at the current virtual time. Equivalent to calling
    /// [`add_joiner_live`](Self::add_joiner_live) for each id in order
    /// (same actor indices, same event order, bit-identical runs), but the
    /// shared [`Directory`] is grown in ONE copy-on-write step instead of
    /// one per joiner — per-id inserts leave every intermediate map
    /// version alive in some actor's snapshot, which is O(n²) peak memory
    /// over a large bootstrap. Returns the first new actor index.
    ///
    /// # Panics
    ///
    /// As [`add_joiner_live`](Self::add_joiner_live).
    pub fn add_joiners_live(&mut self, ids: &[NodeId], gateway: NodeId) -> usize {
        assert!(
            self.dir.resolve(&gateway).is_some(),
            "gateway {gateway} unknown"
        );
        let base = self.sim.len();
        for id in ids {
            assert_ne!(*id, gateway, "node cannot join via itself");
        }
        self.dir.insert_batch(ids, base);
        self.ids.extend_from_slice(ids);
        self.joiner_count += ids.len();
        let now = self.sim.now();
        for (off, &id) in ids.iter().enumerate() {
            let added = self.sim.add_actor(SimNode::new(
                JoinEngine::new_joiner(self.space, self.opts, id),
                &self.dir,
                self.trace.clone(),
            ));
            debug_assert_eq!(added, base + off);
            self.sim
                .inject_at(now, base + off, base + off, SimMsg::Start { gateway });
        }
        base
    }
}

/// Initializes a network per §6.1: `ids[0]` becomes the seed node, the rest
/// join **sequentially** (each join runs to quiescence before the next
/// starts). Returns the final consistent tables.
///
/// Sequential joins are timing-insensitive (Lemma 5.2 holds for any
/// latencies), so a fixed 1 µs delay is used internally.
///
/// The network is grown *incrementally*: one simulator lives for the whole
/// bootstrap and each joiner is injected into it through
/// [`SimNetwork::add_joiner_live`], so per join the work is O(one join)
/// instead of O(rebuild everything). The result is identical to the
/// original rebuild-per-join path, kept as
/// [`bootstrap_sequential_rebuild`] and equivalence-tested against this
/// one: a completed joiner's engine differs from a freshly constructed
/// member only in history bookkeeping (`Q_n`, `Q_sn`, `noti_level`,
/// statistics) that no *in_system*-status code path reads, and in a
/// sequential bootstrap no join traffic crosses a quiescence boundary.
///
/// # Panics
///
/// Panics if `ids` is empty or contains duplicates.
pub fn bootstrap_sequential(
    space: IdSpace,
    opts: ProtocolOptions,
    ids: &[NodeId],
) -> Vec<NeighborTable> {
    assert!(!ids.is_empty());
    let seed_node = ids[0];
    let mut b = SimNetworkBuilder::new(space);
    let seed_table = JoinEngine::new_seed(space, opts, seed_node).table().clone();
    b.options(opts).with_member_tables(vec![seed_table]);
    let mut net = b.build(hyperring_sim::ConstantDelay(1), 0);
    for id in &ids[1..] {
        net.add_joiner_live(*id, seed_node);
        net.run();
        assert!(net.all_in_system(), "sequential join failed to terminate");
    }
    net.tables()
}

/// Initializes a network like [`bootstrap_sequential`], but injects
/// joiners in concurrent **waves** of up to `batch` nodes: every joiner
/// of a wave starts at the same virtual instant (through the seed-node
/// gateway, assumption (ii) of §3.1) and the wave runs to quiescence
/// before the next begins. This is the scaling path for large `n`:
///
/// - one simulator lives for the whole bootstrap (no rebuilds), so peak
///   queue memory is bounded by one wave's traffic rather than by `n`;
/// - with `shards > 1` each wave's deliveries are processed by the
///   sharded batch scheduler — results are bit-identical for every shard
///   count, so a sharded bootstrap can be digest-checked against a
///   sequential one.
///
/// Concurrent joins make the resulting tables differ from (while staying
/// just as consistent as) the sequential bootstrap's: within a wave,
/// which sharer a joiner copies from depends on message interleaving.
///
/// # Panics
///
/// Panics if `ids` is empty or contains duplicates, `batch` or `shards`
/// is zero, or a wave fails to reach quiescence with all nodes in system.
pub fn bootstrap_batched(
    space: IdSpace,
    opts: ProtocolOptions,
    ids: &[NodeId],
    batch: usize,
    shards: usize,
) -> Vec<NeighborTable> {
    bootstrap_batched_net(space, opts, ids, batch, shards).tables()
}

/// [`bootstrap_batched`], returning the live network instead of cloning
/// its tables out. This is the memory-lean endpoint for large `n`: the
/// caller streams digests and Definition-3.8 checks straight off the
/// engines' arena-backed tables via [`SimNetwork::tables_iter`] — the
/// `Vec<NeighborTable>` materialization that used to double peak RSS at
/// the check never happens.
///
/// # Panics
///
/// As [`bootstrap_batched`].
pub fn bootstrap_batched_net(
    space: IdSpace,
    opts: ProtocolOptions,
    ids: &[NodeId],
    batch: usize,
    shards: usize,
) -> SimNetwork<hyperring_sim::ConstantDelay> {
    assert!(!ids.is_empty());
    assert!(batch > 0, "batch size must be positive");
    let seed_node = ids[0];
    let mut b = SimNetworkBuilder::new(space);
    let seed_table = JoinEngine::new_seed(space, opts, seed_node).table().clone();
    b.options(opts)
        .with_member_tables(vec![seed_table])
        .shards(shards);
    let mut net = b.build(hyperring_sim::ConstantDelay(1), 0);
    for wave in ids[1..].chunks(batch) {
        net.add_joiners_live(wave, seed_node);
        net.run();
        assert!(net.all_in_system(), "join wave failed to terminate");
    }
    net
}

/// The original rebuild-per-join implementation of
/// [`bootstrap_sequential`]: after every join the simulator is torn down
/// and a new network is built from clones of all tables so far — O(n²)
/// table clones over a full bootstrap. Kept as the behavioral baseline
/// that the incremental path is equivalence-tested and benchmarked
/// against; prefer [`bootstrap_sequential`] everywhere else.
///
/// # Panics
///
/// Panics if `ids` is empty or contains duplicates.
pub fn bootstrap_sequential_rebuild(
    space: IdSpace,
    opts: ProtocolOptions,
    ids: &[NodeId],
) -> Vec<NeighborTable> {
    assert!(!ids.is_empty());
    let seed_node = ids[0];
    let mut tables = {
        let e = JoinEngine::new_seed(space, opts, seed_node);
        vec![e.table().clone()]
    };
    for id in &ids[1..] {
        let mut b = SimNetworkBuilder::new(space);
        b.options(opts).with_member_tables(tables);
        b.add_joiner(*id, seed_node, 0);
        let mut net = b.build(hyperring_sim::ConstantDelay(1), 0);
        net.run();
        assert!(net.all_in_system(), "sequential join failed to terminate");
        tables = net.tables();
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency;
    use hyperring_sim::{ConstantDelay, UniformDelay};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> IdSpace {
        IdSpace::new(8, 5).unwrap()
    }

    fn paper_members(b: &mut SimNetworkBuilder) -> Vec<NodeId> {
        ["72430", "10353", "62332", "13141", "31701"]
            .iter()
            .map(|s| {
                let id = space().parse_id(s).unwrap();
                b.add_member(id);
                id
            })
            .collect()
    }

    #[test]
    fn paper_figure2_scenario_converges_consistently() {
        let mut b = SimNetworkBuilder::new(space());
        let v = paper_members(&mut b);
        for s in ["10261", "47051", "00261"] {
            b.add_joiner(space().parse_id(s).unwrap(), v[0], 0);
        }
        let mut net = b.build(UniformDelay::new(1_000, 80_000), 1234);
        let report = net.run();
        assert!(!report.truncated);
        assert!(net.all_in_system());
        let c = net.check_consistency();
        assert!(c.is_consistent(), "{c}");
    }

    #[test]
    fn many_seeds_always_consistent() {
        for seed in 0..20 {
            let mut b = SimNetworkBuilder::new(space());
            let v = paper_members(&mut b);
            for s in ["10261", "47051", "00261", "20261", "57051"] {
                b.add_joiner(space().parse_id(s).unwrap(), v[seed as usize % v.len()], 0);
            }
            let mut net = b.build(UniformDelay::new(1, 1_000_000), seed);
            net.run_limited(10_000_000);
            assert!(net.all_in_system(), "seed {seed}: not all in system");
            let c = net.check_consistency();
            assert!(c.is_consistent(), "seed {seed}: {c}");
        }
    }

    /// Draws `n` distinct ids, preserving the draw order (a `HashSet`
    /// guard instead of the old O(n²) `Vec::contains` scan; the accepted
    /// sequence — and thus every seeded test — is unchanged).
    fn distinct_ids(sp: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        while ids.len() < n {
            let id = sp.random_id(&mut rng);
            if seen.insert(id) {
                ids.push(id);
            }
        }
        ids
    }

    #[test]
    fn random_concurrent_joins_consistent() {
        let sp = IdSpace::new(4, 6).unwrap();
        let ids = distinct_ids(sp, 40, 5);
        let (v, w) = ids.split_at(25);
        let mut b = SimNetworkBuilder::new(sp);
        for id in v {
            b.add_member(*id);
        }
        for id in w {
            b.add_joiner(*id, v[0], 0);
        }
        let mut net = b.build(UniformDelay::new(100, 200_000), 99);
        net.run();
        assert!(net.all_in_system());
        let c = net.check_consistency();
        assert!(c.is_consistent(), "{c}");
        assert_eq!(net.joiners().count(), 15);
    }

    #[test]
    fn staggered_start_times_also_consistent() {
        let mut b = SimNetworkBuilder::new(space());
        let v = paper_members(&mut b);
        for (i, s) in ["10261", "47051", "00261"].iter().enumerate() {
            b.add_joiner(space().parse_id(s).unwrap(), v[0], (i as u64) * 30_000);
        }
        let mut net = b.build(UniformDelay::new(1_000, 60_000), 7);
        net.run();
        assert!(net.all_in_system());
        assert!(net.check_consistency().is_consistent());
    }

    #[test]
    fn bootstrap_sequential_builds_consistent_network() {
        let sp = IdSpace::new(4, 4).unwrap();
        let ids = distinct_ids(sp, 12, 17);
        let tables = bootstrap_sequential(sp, ProtocolOptions::new(), &ids);
        assert_eq!(tables.len(), 12);
        let report = check_consistency(sp, &tables);
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    fn incremental_bootstrap_matches_rebuild_baseline() {
        // The zero-copy core's incremental bootstrap must be
        // behavior-identical to the original rebuild-per-join path:
        // same owners in the same order, same entries, same recorded
        // states, same reverse-neighbor sets.
        let sp = IdSpace::new(4, 5).unwrap();
        let ids = distinct_ids(sp, 18, 23);
        let fast = bootstrap_sequential(sp, ProtocolOptions::new(), &ids);
        let slow = bootstrap_sequential_rebuild(sp, ProtocolOptions::new(), &ids);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.owner(), b.owner());
            assert_eq!(
                a.iter().collect::<Vec<_>>(),
                b.iter().collect::<Vec<_>>(),
                "entries of {} differ",
                a.owner()
            );
            for level in 0..sp.digit_count() {
                for digit in 0..sp.base() as u8 {
                    assert_eq!(
                        a.reverse_of(level, digit).collect::<Vec<_>>(),
                        b.reverse_of(level, digit).collect::<Vec<_>>(),
                        "reverse sets of {} at ({level}, {digit}) differ",
                        a.owner()
                    );
                }
            }
        }
    }

    #[test]
    fn add_joiner_live_after_deliveries() {
        // Inject a joiner into a network that has already run to
        // quiescence (the incremental-bootstrap path), then another.
        let mut b = SimNetworkBuilder::new(space());
        let v = paper_members(&mut b);
        b.add_joiner(space().parse_id("10261").unwrap(), v[0], 0);
        let mut net = b.build(ConstantDelay(50), 3);
        let first = net.run();
        assert!(first.delivered > 0);
        assert!(net.all_in_system());

        let late = space().parse_id("47051").unwrap();
        let idx = net.add_joiner_live(late, v[1]);
        assert_eq!(idx, 6);
        let second = net.run();
        assert!(second.delivered > first.delivered);
        assert!(second.finished_at >= first.finished_at);
        assert!(net.all_in_system());
        assert_eq!(net.engine(&late).status(), Status::InSystem);
        assert_eq!(net.joiner_count(), 2);
        assert_eq!(net.ids().len(), 7);
        assert!(net.check_consistency().is_consistent());
    }

    #[test]
    fn traced_run_records_transitions_without_perturbing_the_run() {
        use crate::trace::{RingTrace, SharedSink};

        let build = |traced: bool| {
            let mut b = SimNetworkBuilder::new(space());
            let v = paper_members(&mut b);
            for s in ["10261", "47051", "00261"] {
                b.add_joiner(space().parse_id(s).unwrap(), v[0], 0);
            }
            let sink = SharedSink::new(RingTrace::new(4096));
            if traced {
                b.trace(Box::new(sink.clone()));
            }
            let mut net = b.build(UniformDelay::new(1_000, 80_000), 1234);
            let report = net.run();
            (report, sink)
        };

        let (plain, _) = build(false);
        let (traced, sink) = build(true);
        // Tracing is observation only: same deliveries, same virtual time.
        assert_eq!(plain.delivered, traced.delivered);
        assert_eq!(plain.finished_at, traced.finished_at);
        assert_eq!(plain.traced, 0);
        assert!(traced.traced > 0);

        let ring = sink.lock();
        assert_eq!(ring.total(), traced.traced);
        let mut prev = None;
        for r in ring.records() {
            assert!(prev.is_none_or(|p| r.seq > p), "seq not increasing");
            prev = Some(r.seq);
        }
        let lines: Vec<String> = ring.records().map(|r| r.to_jsonl()).collect();
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"join_started\"")));
        assert!(lines.iter().any(|l| l.contains("\"to\":\"in_system\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"entry_filled\"")));
    }

    #[test]
    fn crashed_nodes_are_detected_evicted_and_repaired() {
        use crate::options::FailureDetector;

        // 14 members; crash 3 mid-run. With the detector + repair on,
        // survivors must converge back to Definition-3.8 consistency; the
        // control arm (repair off) must evict but stay inconsistent
        // (false negatives: vacated slots whose suffix is still covered).
        let run = |repair: bool| {
            let sp = IdSpace::new(4, 6).unwrap();
            let ids = distinct_ids(sp, 14, 11);
            let fd = FailureDetector {
                probe_interval_us: 100_000,
                suspicion_threshold: 3,
                repair,
                ..FailureDetector::default()
            };
            let mut b = SimNetworkBuilder::new(sp);
            b.options(ProtocolOptions::new().with_failure_detector(fd));
            for id in &ids {
                b.add_member(*id);
            }
            let mut net = b.build(ConstantDelay(500), 7);
            for id in &ids[..3] {
                net.crash_at(id, 50_000);
            }
            // Several detection cycles past the crash instant.
            net.run_until(3_000_000);
            assert_eq!(net.tables().len(), 11);
            // Every survivor evicted every crashed node.
            for e in net.engines() {
                if e.status() == Status::Crashed {
                    continue;
                }
                for dead in &ids[..3] {
                    assert!(
                        !e.table().iter().any(|(_, _, en)| en.node == *dead),
                        "{} still stores crashed {dead}",
                        e.id()
                    );
                }
            }
            net.check_consistency()
        };

        let repaired = run(true);
        assert!(repaired.is_consistent(), "{repaired}");
        let control = run(false);
        assert!(
            !control.is_consistent(),
            "eviction without repair should leave false negatives"
        );
    }

    #[test]
    fn responsive_network_suffers_no_false_positives() {
        use crate::options::FailureDetector;

        // Detector on, nobody crashes: pongs answer every probe, so no
        // neighbor is ever evicted and consistency is undisturbed.
        let sp = IdSpace::new(4, 6).unwrap();
        let ids = distinct_ids(sp, 10, 13);
        let mut b = SimNetworkBuilder::new(sp);
        b.options(
            ProtocolOptions::new().with_failure_detector(FailureDetector {
                probe_interval_us: 100_000,
                suspicion_threshold: 3,
                repair: true,
                ..FailureDetector::default()
            }),
        );
        for id in &ids {
            b.add_member(*id);
        }
        let mut net = b.build(ConstantDelay(500), 3);
        let before: Vec<usize> = net.tables().iter().map(|t| t.filled()).collect();
        net.run_until(2_000_000);
        let after: Vec<usize> = net.tables().iter().map(|t| t.filled()).collect();
        assert_eq!(before, after, "a live neighbor was evicted");
        assert!(net.check_consistency().is_consistent());
    }

    #[test]
    fn concurrent_adjacent_leaves_remain_out_of_scope() {
        // Regression pin for the documented limitation on
        // `JoinEngine::begin_leave`: concurrent leaves of *adjacent*
        // nodes (each other's replacement candidates) are not arbitrated.
        // Sequential leaves are safe (`depart`), but when two mutual
        // neighbors leave at the same instant each may hand the other out
        // as its replacement, so across seeds some run must end broken —
        // a stalled leaver or survivor tables violating Definition 3.8.
        // If this assertion ever trips the other way, adjacent leaves
        // have become arbitrated and the `begin_leave` doc (and the
        // failure-model section of DESIGN.md) are stale.
        let sp = IdSpace::new(4, 4).unwrap();
        let mut attempted = 0;
        let mut broken = 0;
        for seed in 0..12u64 {
            let ids = distinct_ids(sp, 8, seed);
            let mut b = SimNetworkBuilder::new(sp);
            for id in &ids {
                b.add_member(*id);
            }
            let mut net = b.build(UniformDelay::new(500, 5_000), seed);
            // Members start from consistent tables: find a mutual pair.
            let pair = {
                let engines: Vec<_> = net.engines().collect();
                let stores =
                    |a: &JoinEngine, id: NodeId| a.table().iter().any(|(_, _, e)| e.node == id);
                engines
                    .iter()
                    .flat_map(|u| engines.iter().map(move |v| (u, v)))
                    .find(|(u, v)| u.id() != v.id() && stores(u, v.id()) && stores(v, u.id()))
                    .map(|(u, v)| (u.id(), v.id()))
            };
            let Some((u, v)) = pair else { continue };
            attempted += 1;
            net.leave_at(&u, 0);
            net.leave_at(&v, 0);
            net.run_limited(60_000_000);
            let stalled = !net.all_settled();
            let consistent = net.check_consistency().is_consistent();
            if stalled || !consistent {
                broken += 1;
            }
        }
        assert!(attempted > 0, "no seed produced a mutually-adjacent pair");
        assert!(
            broken > 0,
            "all {attempted} concurrent adjacent-leave runs settled consistently; \
             the documented limitation no longer reproduces"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate node identifier")]
    fn add_joiner_live_rejects_duplicates() {
        let mut b = SimNetworkBuilder::new(space());
        let v = paper_members(&mut b);
        let mut net = b.build(ConstantDelay(1), 0);
        net.run();
        net.add_joiner_live(v[2], v[0]);
    }

    #[test]
    #[should_panic(expected = "gateway")]
    fn unknown_gateway_rejected() {
        let mut b = SimNetworkBuilder::new(space());
        paper_members(&mut b);
        let ghost = space().parse_id("77777").unwrap();
        b.add_joiner(space().parse_id("10261").unwrap(), ghost, 0);
        b.build(ConstantDelay(1), 0);
    }
}
