//! Glue between the sans-io [`JoinEngine`] and the deterministic
//! discrete-event simulator: build a network of members and joiners, run
//! the join protocol to quiescence, inspect the result.
//!
//! # Examples
//!
//! Five members (oracle-built consistent tables) plus three concurrent
//! joiners, the paper's Figure 2 scenario:
//!
//! ```
//! use hyperring_core::SimNetworkBuilder;
//! use hyperring_sim::UniformDelay;
//! use hyperring_id::IdSpace;
//!
//! let space = IdSpace::new(8, 5)?;
//! let mut b = SimNetworkBuilder::new(space);
//! for s in ["72430", "10353", "62332", "13141", "31701"] {
//!     b.add_member(space.parse_id(s)?);
//! }
//! for s in ["10261", "47051", "00261"] {
//!     b.add_joiner(space.parse_id(s)?, space.parse_id("72430")?, 0);
//! }
//! let mut net = b.build(UniformDelay::new(1_000, 50_000), 7);
//! net.run();
//! assert!(net.all_in_system());
//! assert!(net.check_consistency().is_consistent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::{Actor, Context, DelayModel, RunReport, Simulator, Time};

use crate::consistency::{check_consistency, ConsistencyReport};
use crate::engine::{JoinEngine, Outbox, Status};
use crate::messages::Message;
use crate::options::ProtocolOptions;
use crate::oracle::build_consistent_tables;
use crate::table::NeighborTable;

/// Message wrapper carried by the simulator.
#[derive(Debug, Clone)]
pub enum SimMsg {
    /// A protocol message from `from`.
    Proto {
        /// The overlay-level sender.
        from: NodeId,
        /// The protocol message.
        msg: Message,
    },
    /// Control: begin joining through `gateway` (delivered to the joiner
    /// itself at its start time).
    Start {
        /// The known member to join through (assumption (ii) of §3.1).
        gateway: NodeId,
    },
    /// Control: begin a graceful leave (extension).
    Leave,
}

/// One simulated overlay node: an engine plus the shared address directory.
#[derive(Debug)]
pub struct SimNode {
    engine: JoinEngine,
    dir: Arc<HashMap<NodeId, usize>>,
    outbox: Outbox,
}

impl SimNode {
    /// The wrapped protocol engine.
    pub fn engine(&self) -> &JoinEngine {
        &self.engine
    }
}

impl Actor for SimNode {
    type Msg = SimMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, SimMsg>, _from: usize, msg: SimMsg) {
        match msg {
            SimMsg::Start { gateway } => self.engine.start_join(gateway, &mut self.outbox),
            SimMsg::Leave => self.engine.begin_leave(&mut self.outbox),
            SimMsg::Proto { from, msg } => self.engine.handle(from, msg, &mut self.outbox),
        }
        let me = self.engine.id();
        for (to, msg) in self.outbox.drain() {
            let idx = *self
                .dir
                .get(&to)
                .unwrap_or_else(|| panic!("message addressed to unknown node {to}"));
            ctx.send(idx, SimMsg::Proto { from: me, msg });
        }
    }
}

/// Builder for a [`SimNetwork`].
#[derive(Debug)]
pub struct SimNetworkBuilder {
    space: IdSpace,
    opts: ProtocolOptions,
    members: Vec<NodeId>,
    member_tables: Option<Vec<NeighborTable>>,
    joiners: Vec<(NodeId, NodeId, Time)>,
}

impl SimNetworkBuilder {
    /// Starts a builder over `space` with default protocol options.
    pub fn new(space: IdSpace) -> Self {
        SimNetworkBuilder {
            space,
            opts: ProtocolOptions::default(),
            members: Vec::new(),
            member_tables: None,
            joiners: Vec::new(),
        }
    }

    /// Sets the protocol options for every node.
    pub fn options(&mut self, opts: ProtocolOptions) -> &mut Self {
        self.opts = opts;
        self
    }

    /// Adds a member of the initial consistent network `V`. Tables for all
    /// members are built by the oracle at [`build`](Self::build) time.
    pub fn add_member(&mut self, id: NodeId) -> &mut Self {
        assert!(
            self.member_tables.is_none(),
            "cannot mix add_member with preset tables"
        );
        self.members.push(id);
        self
    }

    /// Uses pre-built member tables instead of the oracle (e.g. tables that
    /// came out of a previous run).
    pub fn with_member_tables(&mut self, tables: Vec<NeighborTable>) -> &mut Self {
        assert!(
            self.members.is_empty(),
            "cannot mix preset tables with add_member"
        );
        self.member_tables = Some(tables);
        self
    }

    /// Adds a node that joins through `gateway`, starting at virtual time
    /// `at` (the paper starts all joins at time 0).
    pub fn add_joiner(&mut self, id: NodeId, gateway: NodeId, at: Time) -> &mut Self {
        self.joiners.push((id, gateway, at));
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if there are no members, if identifiers collide, or if a
    /// joiner's gateway is not a member or joiner.
    pub fn build<D: DelayModel>(&mut self, delay: D, seed: u64) -> SimNetwork<D> {
        let member_tables = match self.member_tables.take() {
            Some(t) => t,
            None => build_consistent_tables(self.space, &self.members),
        };
        assert!(
            !member_tables.is_empty(),
            "network needs at least one member"
        );

        let mut ids: Vec<NodeId> = member_tables.iter().map(|t| t.owner()).collect();
        ids.extend(self.joiners.iter().map(|(id, _, _)| *id));
        let dir: HashMap<NodeId, usize> = ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        assert_eq!(dir.len(), ids.len(), "duplicate node identifier");
        let dir = Arc::new(dir);

        let mut actors: Vec<SimNode> = member_tables
            .into_iter()
            .map(|t| SimNode {
                engine: JoinEngine::new_member(self.space, self.opts, t),
                dir: Arc::clone(&dir),
                outbox: Outbox::new(),
            })
            .collect();
        for (id, _, _) in &self.joiners {
            actors.push(SimNode {
                engine: JoinEngine::new_joiner(self.space, self.opts, *id),
                dir: Arc::clone(&dir),
                outbox: Outbox::new(),
            });
        }

        let mut sim = Simulator::new(actors, delay, seed);
        for (id, gateway, at) in &self.joiners {
            assert!(dir.contains_key(gateway), "gateway {gateway} unknown");
            assert_ne!(id, gateway, "node cannot join via itself");
            let idx = dir[id];
            sim.inject_at(*at, idx, idx, SimMsg::Start { gateway: *gateway });
        }
        SimNetwork {
            space: self.space,
            sim,
            dir,
            ids,
            joiner_count: self.joiners.len(),
        }
    }
}

/// A simulated overlay network running the join protocol.
#[derive(Debug)]
pub struct SimNetwork<D: DelayModel> {
    space: IdSpace,
    sim: Simulator<SimNode, D>,
    dir: Arc<HashMap<NodeId, usize>>,
    ids: Vec<NodeId>,
    joiner_count: usize,
}

impl<D: DelayModel> SimNetwork<D> {
    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// All node identifiers (members first, then joiners).
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of joiners configured.
    pub fn joiner_count(&self) -> usize {
        self.joiner_count
    }

    /// Runs to quiescence and returns the simulator's report.
    pub fn run(&mut self) -> RunReport {
        self.sim.run()
    }

    /// Runs, but aborts after `max_deliveries` — for liveness tests.
    pub fn run_limited(&mut self, max_deliveries: u64) -> RunReport {
        self.sim.run_limited(max_deliveries)
    }

    /// The engine of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn engine(&self, id: &NodeId) -> &JoinEngine {
        self.sim.actor(self.dir[id]).engine()
    }

    /// Iterates over all engines (members first, then joiners).
    pub fn engines(&self) -> impl Iterator<Item = &JoinEngine> {
        self.sim.actors().map(|a| a.engine())
    }

    /// Iterates over the joiners' engines only.
    pub fn joiners(&self) -> impl Iterator<Item = &JoinEngine> {
        let members = self.ids.len() - self.joiner_count;
        self.sim.actors().skip(members).map(|a| a.engine())
    }

    /// Whether every node (member and joiner) is an S-node.
    pub fn all_in_system(&self) -> bool {
        self.engines().all(|e| e.status() == Status::InSystem)
    }

    /// Checks Definition 3.8 over the tables of *live* (non-departed)
    /// nodes.
    pub fn check_consistency(&self) -> ConsistencyReport {
        check_consistency(self.space, &self.tables())
    }

    /// Clones out the tables of live (non-departed) nodes.
    pub fn tables(&self) -> Vec<NeighborTable> {
        self.engines()
            .filter(|e| e.status() != Status::Departed)
            .map(|e| e.table().clone())
            .collect()
    }

    /// Schedules a graceful leave of `id` at the current virtual time,
    /// then runs the simulation to quiescence (extension; sequential-churn
    /// scope — call between waves, not during one).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the leave fails to complete.
    pub fn depart(&mut self, id: &NodeId) -> RunReport {
        let idx = self.dir[id];
        let now = self.sim.now();
        self.sim.inject_at(now, idx, idx, SimMsg::Leave);
        let report = self.sim.run();
        assert_eq!(
            self.engine(id).status(),
            Status::Departed,
            "{id} failed to depart"
        );
        report
    }

    /// Whether every node is either an S-node or cleanly departed.
    pub fn all_settled(&self) -> bool {
        self.engines()
            .all(|e| matches!(e.status(), Status::InSystem | Status::Departed))
    }

    /// Virtual time (µs).
    pub fn now(&self) -> Time {
        self.sim.now()
    }
}

/// Initializes a network per §6.1: `ids[0]` becomes the seed node, the rest
/// join **sequentially** (each join runs to quiescence before the next
/// starts). Returns the final consistent tables.
///
/// Sequential joins are timing-insensitive (Lemma 5.2 holds for any
/// latencies), so a fixed 1 µs delay is used internally.
///
/// # Panics
///
/// Panics if `ids` is empty or contains duplicates.
pub fn bootstrap_sequential(
    space: IdSpace,
    opts: ProtocolOptions,
    ids: &[NodeId],
) -> Vec<NeighborTable> {
    assert!(!ids.is_empty());
    let seed_node = ids[0];
    let mut tables = {
        let e = JoinEngine::new_seed(space, opts, seed_node);
        vec![e.table().clone()]
    };
    for id in &ids[1..] {
        let mut b = SimNetworkBuilder::new(space);
        b.options(opts).with_member_tables(tables);
        b.add_joiner(*id, seed_node, 0);
        let mut net = b.build(hyperring_sim::ConstantDelay(1), 0);
        net.run();
        assert!(net.all_in_system(), "sequential join failed to terminate");
        tables = net.tables();
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_sim::{ConstantDelay, UniformDelay};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> IdSpace {
        IdSpace::new(8, 5).unwrap()
    }

    fn paper_members(b: &mut SimNetworkBuilder) -> Vec<NodeId> {
        ["72430", "10353", "62332", "13141", "31701"]
            .iter()
            .map(|s| {
                let id = space().parse_id(s).unwrap();
                b.add_member(id);
                id
            })
            .collect()
    }

    #[test]
    fn paper_figure2_scenario_converges_consistently() {
        let mut b = SimNetworkBuilder::new(space());
        let v = paper_members(&mut b);
        for s in ["10261", "47051", "00261"] {
            b.add_joiner(space().parse_id(s).unwrap(), v[0], 0);
        }
        let mut net = b.build(UniformDelay::new(1_000, 80_000), 1234);
        let report = net.run();
        assert!(!report.truncated);
        assert!(net.all_in_system());
        let c = net.check_consistency();
        assert!(c.is_consistent(), "{c}");
    }

    #[test]
    fn many_seeds_always_consistent() {
        for seed in 0..20 {
            let mut b = SimNetworkBuilder::new(space());
            let v = paper_members(&mut b);
            for s in ["10261", "47051", "00261", "20261", "57051"] {
                b.add_joiner(space().parse_id(s).unwrap(), v[seed as usize % v.len()], 0);
            }
            let mut net = b.build(UniformDelay::new(1, 1_000_000), seed);
            net.run_limited(10_000_000);
            assert!(net.all_in_system(), "seed {seed}: not all in system");
            let c = net.check_consistency();
            assert!(c.is_consistent(), "seed {seed}: {c}");
        }
    }

    #[test]
    fn random_concurrent_joins_consistent() {
        let sp = IdSpace::new(4, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ids = Vec::new();
        while ids.len() < 40 {
            let id = sp.random_id(&mut rng);
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        let (v, w) = ids.split_at(25);
        let mut b = SimNetworkBuilder::new(sp);
        for id in v {
            b.add_member(*id);
        }
        for id in w {
            b.add_joiner(*id, v[0], 0);
        }
        let mut net = b.build(UniformDelay::new(100, 200_000), 99);
        net.run();
        assert!(net.all_in_system());
        let c = net.check_consistency();
        assert!(c.is_consistent(), "{c}");
        assert_eq!(net.joiners().count(), 15);
    }

    #[test]
    fn staggered_start_times_also_consistent() {
        let mut b = SimNetworkBuilder::new(space());
        let v = paper_members(&mut b);
        for (i, s) in ["10261", "47051", "00261"].iter().enumerate() {
            b.add_joiner(space().parse_id(s).unwrap(), v[0], (i as u64) * 30_000);
        }
        let mut net = b.build(UniformDelay::new(1_000, 60_000), 7);
        net.run();
        assert!(net.all_in_system());
        assert!(net.check_consistency().is_consistent());
    }

    #[test]
    fn bootstrap_sequential_builds_consistent_network() {
        let sp = IdSpace::new(4, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut ids = Vec::new();
        while ids.len() < 12 {
            let id = sp.random_id(&mut rng);
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        let tables = bootstrap_sequential(sp, ProtocolOptions::new(), &ids);
        assert_eq!(tables.len(), 12);
        let report = check_consistency(sp, &tables);
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    #[should_panic(expected = "gateway")]
    fn unknown_gateway_rejected() {
        let mut b = SimNetworkBuilder::new(space());
        paper_members(&mut b);
        let ghost = space().parse_id("77777").unwrap();
        b.add_joiner(space().parse_id("10261").unwrap(), ghost, 0);
        b.build(ConstantDelay(1), 0);
    }
}
