//! Neighbor-table optimization — the paper's problem 3 (§1), deferred
//! there to future work and provided here as an extension.
//!
//! Consistency (Definition 3.8) constrains only *which suffix* an entry's
//! node must carry, never *which node* among the candidates; PRR's
//! locality results additionally want each entry to hold the **nearest**
//! such node. This module performs rounds of local optimization: each node
//! considers the nodes visible in its own table and its primary neighbors'
//! tables (exactly what a node could learn from one message exchange) and
//! swaps any entry for a strictly closer candidate with the same desired
//! suffix. Replacements preserve consistency by construction — an entry is
//! only ever replaced by another node that fits it.

use std::collections::HashMap;

use hyperring_id::NodeId;

use crate::table::{Entry, NeighborTable, NodeState};

/// Outcome of an optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeReport {
    /// Gossip rounds executed.
    pub rounds: usize,
    /// Total entry replacements across all rounds.
    pub replacements: usize,
}

/// Optimizes `tables` in place for `rounds` rounds against the given
/// symmetric latency oracle. Returns the work done.
///
/// Candidates per node per round: every node stored in its own table or in
/// any table of a node its table stores. All entries keep state `S` (the
/// optimization runs on settled networks).
///
/// # Examples
///
/// ```
/// use hyperring_core::{build_consistent_tables, check_consistency, optimize_tables};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(4, 4)?;
/// let ids: Vec<_> = ["0123", "3210", "1111", "2221", "0001", "1001"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let mut tables = build_consistent_tables(space, &ids);
/// // Any symmetric metric works; here, difference of leading digits.
/// let report = optimize_tables(&mut tables, |a, b| {
///     (a.digit(3) as i32 - b.digit(3) as i32).unsigned_abs() as u64 + 1
/// }, 2);
/// assert_eq!(report.rounds, 2);
/// assert!(check_consistency(space, &tables).is_consistent());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `tables` contains duplicate owners.
pub fn optimize_tables<L>(tables: &mut [NeighborTable], latency: L, rounds: usize) -> OptimizeReport
where
    L: Fn(&NodeId, &NodeId) -> u64,
{
    let mut report = OptimizeReport {
        rounds,
        ..Default::default()
    };
    for _ in 0..rounds {
        // Snapshot the current tables for candidate discovery (reads see
        // the previous round, like a synchronous gossip round).
        let by_owner: HashMap<NodeId, Vec<NodeId>> = tables
            .iter()
            .map(|t| {
                (
                    t.owner(),
                    t.iter().map(|(_, _, e)| e.node).collect::<Vec<_>>(),
                )
            })
            .collect();
        assert_eq!(by_owner.len(), tables.len(), "duplicate table owners");

        for t in tables.iter_mut() {
            let me = t.owner();
            // Candidate pool: my neighbors plus my neighbors' neighbors.
            let mut pool: Vec<NodeId> = Vec::new();
            for (_, _, e) in t.iter() {
                pool.push(e.node);
                if let Some(theirs) = by_owner.get(&e.node) {
                    pool.extend(theirs.iter().copied());
                }
            }
            pool.sort();
            pool.dedup();
            for candidate in pool {
                if candidate == me {
                    continue;
                }
                let k = me.csuf_len(&candidate);
                let digit = candidate.digit(k);
                match t.get(k, digit) {
                    Some(current) if current.node == me || current.node == candidate => {}
                    Some(current) => {
                        if latency(&me, &candidate) < latency(&me, &current.node) {
                            t.set(
                                k,
                                digit,
                                Entry {
                                    node: candidate,
                                    state: NodeState::S,
                                },
                            );
                            report.replacements += 1;
                        }
                    }
                    None => {
                        // Consistency says this suffix is unpopulated, yet a
                        // candidate carries it — cannot happen with
                        // consistent input tables.
                        debug_assert!(false, "candidate for an empty entry");
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency;
    use crate::oracle::build_consistent_tables;
    use hyperring_id::IdSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(space.random_id(&mut rng));
        }
        set.into_iter().collect()
    }

    /// A deterministic fake latency: hash of the unordered pair.
    fn fake_latency(a: &NodeId, b: &NodeId) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        if a < b {
            (a, b).hash(&mut h);
        } else {
            (b, a).hash(&mut h);
        }
        1 + h.finish() % 100_000
    }

    #[test]
    fn optimization_preserves_consistency() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, 60, 5);
        let mut tables = build_consistent_tables(space, &v);
        let report = optimize_tables(&mut tables, fake_latency, 3);
        assert!(report.replacements > 0, "dense network must find swaps");
        let c = check_consistency(space, &tables);
        assert!(c.is_consistent(), "{c}");
    }

    #[test]
    fn optimization_never_increases_entry_latency() {
        let space = IdSpace::new(8, 4).unwrap();
        let v = ids(space, 40, 6);
        let mut tables = build_consistent_tables(space, &v);
        let before: Vec<u64> = tables
            .iter()
            .flat_map(|t| {
                let me = t.owner();
                t.iter()
                    .filter(move |(_, _, e)| e.node != me)
                    .map(move |(_, _, e)| fake_latency(&me, &e.node))
            })
            .collect();
        optimize_tables(&mut tables, fake_latency, 2);
        let after: Vec<u64> = tables
            .iter()
            .flat_map(|t| {
                let me = t.owner();
                t.iter()
                    .filter(move |(_, _, e)| e.node != me)
                    .map(move |(_, _, e)| fake_latency(&me, &e.node))
            })
            .collect();
        assert_eq!(before.len(), after.len(), "no entry appears or vanishes");
        let sum_before: u64 = before.iter().sum();
        let sum_after: u64 = after.iter().sum();
        assert!(sum_after <= sum_before);
    }

    #[test]
    fn second_pass_converges() {
        let space = IdSpace::new(4, 5).unwrap();
        let v = ids(space, 50, 7);
        let mut tables = build_consistent_tables(space, &v);
        optimize_tables(&mut tables, fake_latency, 4);
        // Once candidates stop changing, further rounds do nothing.
        let r = optimize_tables(&mut tables, fake_latency, 1);
        let r2 = optimize_tables(&mut tables, fake_latency, 1);
        assert!(r2.replacements <= r.replacements);
        let r3 = optimize_tables(&mut tables, fake_latency, 1);
        assert_eq!(r3.replacements, 0, "fixed point not reached");
    }

    #[test]
    fn zero_rounds_is_a_noop() {
        let space = IdSpace::new(4, 4).unwrap();
        let v = ids(space, 10, 8);
        let mut tables = build_consistent_tables(space, &v);
        let r = optimize_tables(&mut tables, fake_latency, 0);
        assert_eq!(r.replacements, 0);
        assert_eq!(r.rounds, 0);
    }
}
