use hyperring_id::{IdSpace, NodeId};

use crate::table::{NodeState, TableSnapshot};

/// Every message type of the join protocol (the paper's Figure 4), plus the
/// reverse-neighbor notifications whose sending the paper's pseudo-code
/// elides "for clarity of presentation" but whose behavior it specifies.
#[derive(Debug, Clone)]
pub enum Message {
    /// `CpRstMsg` — request a copy of the receiver's neighbor table
    /// (status *copying*). `level` is the level the joining node is
    /// currently constructing; it is echoed in the reply so the reply can
    /// be matched to the copy cursor.
    CpRst {
        /// Level the sender is constructing.
        level: u8,
    },
    /// `CpRlyMsg(x.table)` — response to a `CpRstMsg`.
    CpRly {
        /// Echo of the request level.
        level: u8,
        /// Snapshot of the replier's table.
        table: TableSnapshot,
    },
    /// `JoinWaitMsg` — the joining node asks the receiver to store it
    /// (status *waiting*).
    JoinWait,
    /// `JoinWaitRlyMsg(r, u, y.table)` — response to a `JoinWaitMsg`.
    JoinWaitRly {
        /// `r`: whether the receiver stored the sender (`positive`).
        positive: bool,
        /// `u`: on a negative reply, the node already occupying the entry;
        /// on a positive reply, the joining node itself.
        next: NodeId,
        /// Snapshot of the replier's table.
        table: TableSnapshot,
    },
    /// `JoinNotiMsg(x.table)` — notify the receiver of the sender's
    /// existence (status *notifying*).
    JoinNoti {
        /// Snapshot of the notifier's table (possibly level-restricted,
        /// §6.2).
        table: TableSnapshot,
        /// In [`PayloadMode::BitVector`](crate::PayloadMode::BitVector)
        /// mode, the bit vector of the sender's filled slots and its
        /// notification level; otherwise `None`.
        filled_bits: Option<BitVec>,
    },
    /// `JoinNotiRlyMsg(r, y.table, f)` — response to a `JoinNotiMsg`.
    JoinNotiRly {
        /// `r`: whether the receiver newly stored (or had stored) the
        /// sender.
        positive: bool,
        /// Snapshot of the replier's table.
        table: TableSnapshot,
        /// `f`: set when the replier is an S-node and the notifier's table
        /// held some other node in the replier's slot — triggers a
        /// `SpeNotiMsg`.
        flag: bool,
    },
    /// `InSysNotiMsg` — the sender has become an S-node.
    InSysNoti,
    /// `SpeNotiMsg(x, y)` — inform the receiver of the existence of `y`;
    /// `x` is the initial sender awaiting the reply. Forwarded up to `d`
    /// times.
    SpeNoti {
        /// The node that originated the special notification.
        initiator: NodeId,
        /// The node whose existence is being announced.
        subject: NodeId,
    },
    /// `SpeNotiRlyMsg(x, y)` — terminal response to a `SpeNotiMsg`, sent to
    /// the initiator `x`.
    SpeNotiRly {
        /// The announced node `y` (so the initiator can clear `Q_sr`).
        subject: NodeId,
    },
    /// `RvNghNotiMsg(y, s)` — the sender stored the receiver as a primary
    /// neighbor with recorded state `s`; the receiver now has the sender as
    /// a reverse neighbor.
    RvNghNoti {
        /// State the sender recorded for the receiver.
        recorded: NodeState,
    },
    /// `RvNghNotiRlyMsg(s)` — correction sent only when the recorded state
    /// disagrees with the replier's status.
    RvNghNotiRly {
        /// The replier's actual state (`S` iff status *in_system*).
        actual: NodeState,
    },
    /// `LeaveNotiMsg(r)` — **extension** (the paper defers the leave
    /// protocol to future work): the sender is leaving gracefully and
    /// offers `replacement` for the entry in which the receiver stores it
    /// (a node with the entry's desired suffix, or `None` when the sender
    /// was the last such node).
    LeaveNoti {
        /// Substitute neighbor for the receiver's entry, if any exists.
        replacement: Option<crate::table::Entry>,
    },
    /// `LeaveNotiRlyMsg` — **extension**: acknowledges a `LeaveNotiMsg`;
    /// the leaver departs once all reverse neighbors have acknowledged.
    LeaveNotiRly,
    /// `RvNghForgetMsg` — **extension**: the sender (who had the receiver
    /// in its table) is leaving; the receiver drops it from its
    /// reverse-neighbor sets.
    RvNghForget,
    /// `PingMsg` — **extension** (crash-churn): liveness probe from the
    /// failure detector; any non-crashed receiver answers with `PongMsg`.
    Ping,
    /// `PongMsg` — **extension**: reply to a `PingMsg`; resets the
    /// sender's missed-probe count at the prober.
    Pong,
    /// `RepairQryMsg` — **extension**: the failure detector at `origin`
    /// evicted a dead neighbor from entry `(level, digit)` and asks for a
    /// surviving replacement. Suffix-routed toward `target` (a synthetic
    /// identifier carrying the vacated entry's desired suffix); a receiver
    /// that itself carries the suffix replies, otherwise it forwards one
    /// hop closer.
    RepairQry {
        /// The node whose table entry is being repaired.
        origin: NodeId,
        /// Synthetic routing target carrying the desired suffix.
        target: NodeId,
        /// Level of the vacated entry at `origin`.
        level: u8,
        /// Digit of the vacated entry at `origin`.
        digit: u8,
    },
    /// `RepairRlyMsg` — **extension**: terminal response to a
    /// `RepairQryMsg`, sent directly to the query's origin. `found` names
    /// a node carrying the desired suffix, or `None` when routing
    /// dead-ended (no reachable survivor carries it).
    RepairRly {
        /// Echo of the query's level.
        level: u8,
        /// Echo of the query's digit.
        digit: u8,
        /// A surviving carrier of the desired suffix, if one was reached.
        found: Option<crate::table::Entry>,
    },
}

/// A bit vector over table slots (level-major), used by the §6.2
/// bit-vector enhancement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    /// Notification level of the sender (bits below this level matter).
    pub noti_level: u8,
    /// One bit per slot, level-major, packed in `u64` words.
    pub words: Vec<u64>,
}

/// Discriminant of [`Message`], used for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum MessageKind {
    CpRst,
    CpRly,
    JoinWait,
    JoinWaitRly,
    JoinNoti,
    JoinNotiRly,
    InSysNoti,
    SpeNoti,
    SpeNotiRly,
    RvNghNoti,
    RvNghNotiRly,
    LeaveNoti,
    LeaveNotiRly,
    RvNghForget,
    Ping,
    Pong,
    RepairQry,
    RepairRly,
}

impl MessageKind {
    /// All kinds, in declaration order.
    pub const ALL: [MessageKind; 18] = [
        MessageKind::CpRst,
        MessageKind::CpRly,
        MessageKind::JoinWait,
        MessageKind::JoinWaitRly,
        MessageKind::JoinNoti,
        MessageKind::JoinNotiRly,
        MessageKind::InSysNoti,
        MessageKind::SpeNoti,
        MessageKind::SpeNotiRly,
        MessageKind::RvNghNoti,
        MessageKind::RvNghNotiRly,
        MessageKind::LeaveNoti,
        MessageKind::LeaveNotiRly,
        MessageKind::RvNghForget,
        MessageKind::Ping,
        MessageKind::Pong,
        MessageKind::RepairQry,
        MessageKind::RepairRly,
    ];

    /// Whether the paper counts this type as a "big" message (it may carry
    /// a copy of a neighbor table — §5.2).
    pub fn is_big(&self) -> bool {
        matches!(
            self,
            MessageKind::CpRly
                | MessageKind::JoinWaitRly
                | MessageKind::JoinNoti
                | MessageKind::JoinNotiRly
        )
    }

    /// Short display name matching the paper's message names.
    pub fn name(&self) -> &'static str {
        match self {
            MessageKind::CpRst => "CpRstMsg",
            MessageKind::CpRly => "CpRlyMsg",
            MessageKind::JoinWait => "JoinWaitMsg",
            MessageKind::JoinWaitRly => "JoinWaitRlyMsg",
            MessageKind::JoinNoti => "JoinNotiMsg",
            MessageKind::JoinNotiRly => "JoinNotiRlyMsg",
            MessageKind::InSysNoti => "InSysNotiMsg",
            MessageKind::SpeNoti => "SpeNotiMsg",
            MessageKind::SpeNotiRly => "SpeNotiRlyMsg",
            MessageKind::RvNghNoti => "RvNghNotiMsg",
            MessageKind::RvNghNotiRly => "RvNghNotiRlyMsg",
            MessageKind::LeaveNoti => "LeaveNotiMsg",
            MessageKind::LeaveNotiRly => "LeaveNotiRlyMsg",
            MessageKind::RvNghForget => "RvNghForgetMsg",
            MessageKind::Ping => "PingMsg",
            MessageKind::Pong => "PongMsg",
            MessageKind::RepairQry => "RepairQryMsg",
            MessageKind::RepairRly => "RepairRlyMsg",
        }
    }
}

impl Message {
    /// The kind of this message.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::CpRst { .. } => MessageKind::CpRst,
            Message::CpRly { .. } => MessageKind::CpRly,
            Message::JoinWait => MessageKind::JoinWait,
            Message::JoinWaitRly { .. } => MessageKind::JoinWaitRly,
            Message::JoinNoti { .. } => MessageKind::JoinNoti,
            Message::JoinNotiRly { .. } => MessageKind::JoinNotiRly,
            Message::InSysNoti => MessageKind::InSysNoti,
            Message::SpeNoti { .. } => MessageKind::SpeNoti,
            Message::SpeNotiRly { .. } => MessageKind::SpeNotiRly,
            Message::RvNghNoti { .. } => MessageKind::RvNghNoti,
            Message::RvNghNotiRly { .. } => MessageKind::RvNghNotiRly,
            Message::LeaveNoti { .. } => MessageKind::LeaveNoti,
            Message::LeaveNotiRly => MessageKind::LeaveNotiRly,
            Message::RvNghForget => MessageKind::RvNghForget,
            Message::Ping => MessageKind::Ping,
            Message::Pong => MessageKind::Pong,
            Message::RepairQry { .. } => MessageKind::RepairQry,
            Message::RepairRly { .. } => MessageKind::RepairRly,
        }
    }

    /// Modeled wire size of the message in bytes, for the §6.2 ablation.
    ///
    /// The model: a 16-byte header (type, sequence, checksum), 4-byte IPv4
    /// address + packed digit string per node reference, and per table row a
    /// level byte, digit byte, state byte and a node reference.
    pub fn wire_size(&self, space: &IdSpace) -> usize {
        const HEADER: usize = 16;
        let id_bytes = packed_id_bytes(space);
        let node_ref = id_bytes + 4;
        let row = 3 + node_ref;
        let table = |t: &TableSnapshot| node_ref + 2 + t.len() * row;
        HEADER
            + match self {
                Message::CpRst { .. } => 1,
                Message::CpRly { table: t, .. } => 1 + table(t),
                Message::JoinWait => 0,
                Message::JoinWaitRly { table: t, .. } => 1 + node_ref + table(t),
                Message::JoinNoti {
                    table: t,
                    filled_bits,
                } => table(t) + filled_bits.as_ref().map_or(0, |b| 1 + b.words.len() * 8),
                Message::JoinNotiRly { table: t, .. } => 2 + table(t),
                Message::InSysNoti => 0,
                Message::SpeNoti { .. } => 2 * node_ref,
                Message::SpeNotiRly { .. } => node_ref,
                Message::RvNghNoti { .. } => 1,
                Message::RvNghNotiRly { .. } => 1,
                Message::LeaveNoti { replacement } => 1 + replacement.map_or(0, |_| node_ref + 1),
                Message::LeaveNotiRly => 0,
                Message::RvNghForget => 0,
                Message::Ping => 0,
                Message::Pong => 0,
                Message::RepairQry { .. } => 2 * node_ref + 2,
                Message::RepairRly { found, .. } => 3 + found.map_or(0, |_| node_ref + 1),
            }
    }
}

/// Bytes needed to pack one `d`-digit base-`b` identifier.
pub fn packed_id_bytes(space: &IdSpace) -> usize {
    let bits_per_digit = (space.base() as f64).log2().ceil() as usize;
    (space.digit_count() * bits_per_digit).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{NeighborTable, NodeState};

    fn snap(n: usize) -> TableSnapshot {
        let space = IdSpace::new(4, 5).unwrap();
        let owner = space.parse_id("21233").unwrap();
        let mut t = NeighborTable::new(space, owner);
        t.set_self_entries(NodeState::S);
        assert!(n <= 5);
        t.snapshot_levels(0, n)
    }

    #[test]
    fn kinds_cover_all_variants() {
        let space = IdSpace::new(4, 5).unwrap();
        let id = space.parse_id("21233").unwrap();
        let msgs = vec![
            Message::CpRst { level: 0 },
            Message::CpRly {
                level: 0,
                table: snap(5),
            },
            Message::JoinWait,
            Message::JoinWaitRly {
                positive: true,
                next: id,
                table: snap(5),
            },
            Message::JoinNoti {
                table: snap(5),
                filled_bits: None,
            },
            Message::JoinNotiRly {
                positive: false,
                table: snap(5),
                flag: false,
            },
            Message::InSysNoti,
            Message::SpeNoti {
                initiator: id,
                subject: id,
            },
            Message::SpeNotiRly { subject: id },
            Message::RvNghNoti {
                recorded: NodeState::T,
            },
            Message::RvNghNotiRly {
                actual: NodeState::S,
            },
            Message::LeaveNoti { replacement: None },
            Message::LeaveNotiRly,
            Message::RvNghForget,
            Message::Ping,
            Message::Pong,
            Message::RepairQry {
                origin: id,
                target: id,
                level: 1,
                digit: 2,
            },
            Message::RepairRly {
                level: 1,
                digit: 2,
                found: None,
            },
        ];
        let kinds: Vec<MessageKind> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds, MessageKind::ALL.to_vec());
    }

    #[test]
    fn big_messages_match_paper_section_5_2() {
        // §5.2: CpRstMsg, JoinWaitMsg, JoinNotiMsg "and their corresponding
        // replies could be big in size since a copy of a neighbor table may
        // be included". Of those six, the four that actually carry a table
        // are big.
        let big: Vec<&str> = MessageKind::ALL
            .iter()
            .filter(|k| k.is_big())
            .map(|k| k.name())
            .collect();
        assert_eq!(
            big,
            vec![
                "CpRlyMsg",
                "JoinWaitRlyMsg",
                "JoinNotiMsg",
                "JoinNotiRlyMsg"
            ]
        );
    }

    #[test]
    fn wire_size_grows_with_table_rows() {
        let space = IdSpace::new(4, 5).unwrap();
        let small = Message::JoinNoti {
            table: snap(1),
            filled_bits: None,
        };
        let large = Message::JoinNoti {
            table: snap(5),
            filled_bits: None,
        };
        assert!(large.wire_size(&space) > small.wire_size(&space));
        assert!(Message::JoinWait.wire_size(&space) < small.wire_size(&space));
    }

    #[test]
    fn packed_id_bytes_examples() {
        // b=16, d=40: 160 bits = 20 bytes (SHA-1 id).
        assert_eq!(packed_id_bytes(&IdSpace::new(16, 40).unwrap()), 20);
        // b=16, d=8: 32 bits.
        assert_eq!(packed_id_bytes(&IdSpace::new(16, 8).unwrap()), 4);
        // b=4, d=5: 10 bits -> 2 bytes.
        assert_eq!(packed_id_bytes(&IdSpace::new(4, 5).unwrap()), 2);
    }

    #[test]
    fn bitvec_adds_wire_size() {
        let space = IdSpace::new(16, 8).unwrap();
        let plain = Message::JoinNoti {
            table: snap(0),
            filled_bits: None,
        };
        let with_bits = Message::JoinNoti {
            table: snap(0),
            filled_bits: Some(BitVec {
                noti_level: 2,
                words: vec![0; 2],
            }),
        };
        assert_eq!(
            with_bits.wire_size(&space),
            plain.wire_size(&space) + 1 + 16
        );
    }
}
