//! Adaptive neighbor selection — proximity-aware slot filling and
//! demand-driven promotion of secondary neighbors.
//!
//! Definition 3.8 constrains only *which suffix* a table entry's node must
//! carry, never *which node* among the suffix-equivalent candidates, so the
//! choice is a pure performance knob (see
//! [`NeighborSelection`](crate::NeighborSelection)). This module provides
//! the two adaptive mechanisms the lookup-storm experiment drives:
//!
//! 1. **Fill-time proximity** ([`build_proximate_tables`]): like the
//!    omniscient oracle, but each `(level, digit)` slot takes the
//!    *lowest-delay* candidate for its owner rather than the globally
//!    smallest id. This is the static, all-knowing bound on what PRR-style
//!    locality can buy.
//! 2. **Demand-driven promotion** ([`promote_secondaries`]): a running
//!    network only observes the nodes that appear in its forwarding
//!    traffic. A [`DemandProfile`] accumulates, per `(owner, level,
//!    digit)` slot, how often the slot forwarded a lookup and which lookup
//!    sources the owner thereby observed; `promote_secondaries` then
//!    swaps hot slots to strictly closer observed candidates — the
//!    "locally self-adjusting" discipline, using only information a real
//!    node would have.
//!
//! Both mechanisms replace entries only with nodes that fit the slot's
//! suffix constraint, so consistency is preserved by construction (the
//! tests double-check with the Definition 3.8 checker).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hyperring_id::{IdSpace, NodeId, Suffix};

use crate::table::{Entry, NeighborTable, NodeState};

/// Builds a consistent table for every node in `ids` where each slot holds
/// the candidate with the lowest latency to the table's owner (ties broken
/// by smallest id, so construction is deterministic for a deterministic
/// oracle).
///
/// Differs from [`build_consistent_tables`](crate::build_consistent_tables)
/// only in the choice among suffix-equivalent candidates; the result
/// satisfies Definition 3.8 exactly as the oracle's does.
///
/// # Examples
///
/// ```
/// use hyperring_core::{build_proximate_tables, check_consistency};
/// use hyperring_id::IdSpace;
///
/// let space = IdSpace::new(8, 5)?;
/// let v: Vec<_> = ["72430", "10353", "62332", "13141", "31701"]
///     .iter().map(|s| space.parse_id(s).unwrap()).collect();
/// let tables = build_proximate_tables(space, &v, |a, b| {
///     (a.digit(4) as i64 - b.digit(4) as i64).unsigned_abs()
/// });
/// assert!(check_consistency(space, &tables).is_consistent());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Panics
///
/// Panics if `ids` is empty, contains duplicates, or contains an
/// identifier outside `space`.
pub fn build_proximate_tables<L>(space: IdSpace, ids: &[NodeId], latency: L) -> Vec<NeighborTable>
where
    L: Fn(&NodeId, &NodeId) -> u64,
{
    build_tables_with(space, ids, |x, _, _, cands| {
        // First-wins min over a sorted list = smallest id among the
        // latency minimizers.
        cands
            .iter()
            .copied()
            .min_by_key(|c| (latency(x, c), *c))
            .expect("picker called with candidates")
    })
}

/// Like [`build_proximate_tables`], but each slot examines only a bounded
/// pseudo-random subset of at most `sample` suffix-equivalent candidates —
/// the information a joining node that probes a handful of advertised
/// peers would actually have, rather than the omniscient argmin.
///
/// The subset is derived deterministically from `(owner, level, digit,
/// seed)`, so a fixed seed yields a fixed network. Any candidate carries
/// the slot's required suffix, so consistency holds regardless of which
/// subset is drawn; what varies is only locality — the slack that
/// [`promote_secondaries`] later recovers from observed traffic.
///
/// # Panics
///
/// Panics if `sample` is 0, or on the same degenerate inputs as
/// [`build_proximate_tables`].
pub fn build_proximate_tables_sampled<L>(
    space: IdSpace,
    ids: &[NodeId],
    latency: L,
    sample: usize,
    seed: u64,
) -> Vec<NeighborTable>
where
    L: Fn(&NodeId, &NodeId) -> u64,
{
    assert!(sample > 0, "sample size must be positive");
    build_tables_with(space, ids, |x, i, j, cands| {
        if cands.len() <= sample {
            return cands
                .iter()
                .copied()
                .min_by_key(|c| (latency(x, c), *c))
                .expect("picker called with candidates");
        }
        // FNV-1a over the slot coordinates seeds a splitmix-style stream
        // of candidate indices; stable across platforms and releases so
        // goldens can pin the resulting tables.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
        let mix = |v: u64, h: &mut u64| {
            *h ^= v;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for &d in x.digits_lsd() {
            mix(d as u64 + 1, &mut h);
        }
        mix(i as u64 + 1, &mut h);
        mix(j as u64 + 1, &mut h);
        let mut best: Option<(u64, NodeId)> = None;
        for _ in 0..sample {
            h = h
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let c = cands[((h >> 33) as usize) % cands.len()];
            let key = (latency(x, &c), c);
            if best.is_none_or(|(l, id)| key < (l, id)) {
                best = Some(key);
            }
        }
        best.expect("sample is positive").1
    })
}

/// Shared construction: bucket all candidates by suffix slot, fill every
/// table with `pick`'s choice among the slot's suffix-equivalent
/// candidates (self entries fixed by Definition 3.8), then register
/// reverse neighbors exactly as the oracle does.
fn build_tables_with<P>(space: IdSpace, ids: &[NodeId], pick: P) -> Vec<NeighborTable>
where
    P: Fn(&NodeId, usize, u8, &[NodeId]) -> NodeId,
{
    assert!(!ids.is_empty(), "cannot build an empty network");
    for id in ids {
        assert!(space.contains(id), "id {id} not in space");
    }
    {
        let mut sorted: Vec<&NodeId> = ids.iter().collect();
        sorted.sort();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate node identifier"
        );
    }

    // Bucket *all* candidates by (parent suffix, extending digit) — the
    // oracle keeps only the smallest per bucket, but proximity needs the
    // full list because the argmin depends on the table's owner. The
    // bucket lists are built in sorted-id order (ids scanned after a
    // sort), which makes the min-by tie-break deterministic.
    let b = space.base() as usize;
    let mut sorted_ids: Vec<NodeId> = ids.to_vec();
    sorted_ids.sort_unstable();
    let mut repr: HashMap<Suffix, Vec<Vec<NodeId>>> = HashMap::new();
    for &id in &sorted_ids {
        for k in 0..space.digit_count() {
            let row = repr
                .entry(id.suffix(k))
                .or_insert_with(|| vec![Vec::new(); b]);
            row[id.digit(k) as usize].push(id);
        }
    }

    let mut tables: Vec<NeighborTable> = ids
        .iter()
        .map(|&x| {
            let mut t = NeighborTable::new(space, x);
            for i in 0..space.digit_count() {
                let row = repr.get(&x.suffix(i));
                for j in 0..space.base() as u8 {
                    let node = if x.digit(i) == j {
                        // The primary (i, x[i])-neighbor of x is x itself.
                        Some(x)
                    } else {
                        row.and_then(|r| {
                            let cands = &r[j as usize];
                            if cands.is_empty() {
                                None
                            } else {
                                Some(pick(&x, i, j, cands))
                            }
                        })
                    };
                    if let Some(node) = node {
                        t.set(
                            i,
                            j,
                            Entry {
                                node,
                                state: NodeState::S,
                            },
                        );
                    }
                }
            }
            t
        })
        .collect();

    // Reverse-neighbor registration, exactly as the oracle's second pass.
    let mut index: Vec<(NodeId, usize)> = ids.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    index.sort_unstable_by_key(|p| p.0);
    let mut neighbors: Vec<NodeId> = Vec::new();
    for xi in 0..tables.len() {
        let x = tables[xi].owner();
        neighbors.clear();
        neighbors.extend(
            tables[xi]
                .iter()
                .map(|(_, _, e)| e.node)
                .filter(|&y| y != x),
        );
        for &y in &neighbors {
            let k = x.csuf_len(&y);
            let yi = index[index
                .binary_search_by(|p| p.0.cmp(&y))
                .expect("every neighbor is a member")]
            .1;
            tables[yi].add_reverse(k, y.digit(k), x);
        }
    }
    tables
}

/// Forwarding-traffic observations accumulated during a lookup storm.
///
/// Every time node `forwarder`'s `(level, digit)` entry advances a lookup
/// that originated at `source`, the storm calls
/// [`record_hop`](Self::record_hop). The profile then knows (a) which
/// slots are hot and (b) which nodes the forwarder has *observed* — the
/// candidate pool a real node could promote from without any omniscient
/// oracle.
#[derive(Debug, Clone, Default)]
pub struct DemandProfile {
    /// Lookups forwarded through each `(owner, level, digit)` slot.
    slot_traffic: BTreeMap<(NodeId, usize, u8), u64>,
    /// Lookup sources each forwarder has seen traffic from.
    observed: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl DemandProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `forwarder`'s `(level, digit)` entry advanced a lookup
    /// originated by `source`.
    pub fn record_hop(&mut self, forwarder: NodeId, level: usize, digit: u8, source: NodeId) {
        *self
            .slot_traffic
            .entry((forwarder, level, digit))
            .or_insert(0) += 1;
        if source != forwarder {
            self.observed.entry(forwarder).or_default().insert(source);
        }
    }

    /// Lookups forwarded through `owner`'s `(level, digit)` slot.
    pub fn slot_traffic(&self, owner: &NodeId, level: usize, digit: u8) -> u64 {
        self.slot_traffic
            .get(&(*owner, level, digit))
            .copied()
            .unwrap_or(0)
    }

    /// The lookup sources `owner` has observed, in id order.
    pub fn observed(&self, owner: &NodeId) -> impl Iterator<Item = &NodeId> + '_ {
        self.observed.get(owner).into_iter().flatten()
    }

    /// Total hops recorded.
    pub fn total_hops(&self) -> u64 {
        self.slot_traffic.values().sum()
    }
}

/// Outcome of a [`promote_secondaries`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PromotionReport {
    /// `(owner, candidate)` pairs examined.
    pub examined: usize,
    /// Entries swapped to a strictly closer observed candidate.
    pub promoted: usize,
}

/// Promotes observed secondary neighbors into hot table slots.
///
/// For each table owner `me` and each lookup source `c` that `me` observed
/// forwarding traffic from, `c` legally fits exactly one slot of `me`'s
/// table: `(k, c[k])` with `k = |csuf(me, c)|`. If that slot forwarded at
/// least `min_traffic` lookups and `c` is strictly closer to `me` than the
/// slot's current occupant, the slot is swapped to `c` (state `S`, like
/// [`optimize_tables`](crate::optimize_tables)). Iteration order is
/// deterministic (id order), so a fixed storm yields a fixed outcome.
///
/// Consistency is preserved: an entry is only replaced by another node
/// carrying the slot's desired suffix.
pub fn promote_secondaries<L>(
    tables: &mut [NeighborTable],
    demand: &DemandProfile,
    latency: L,
    min_traffic: u64,
) -> PromotionReport
where
    L: Fn(&NodeId, &NodeId) -> u64,
{
    let mut report = PromotionReport::default();
    for t in tables.iter_mut() {
        let me = t.owner();
        for &c in demand.observed(&me) {
            if c == me {
                continue;
            }
            report.examined += 1;
            let k = me.csuf_len(&c);
            let digit = c.digit(k);
            if demand.slot_traffic(&me, k, digit) < min_traffic {
                continue;
            }
            match t.get(k, digit) {
                Some(current) if current.node == me || current.node == c => {}
                Some(current) => {
                    if latency(&me, &c) < latency(&me, &current.node) {
                        t.set(
                            k,
                            digit,
                            Entry {
                                node: c,
                                state: NodeState::S,
                            },
                        );
                        report.promoted += 1;
                    }
                }
                // The slot can be empty only if no member carries the
                // suffix — but `c` does, so with consistent input tables
                // this cannot happen.
                None => debug_assert!(false, "observed candidate for an empty entry"),
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency;
    use crate::oracle::build_consistent_tables;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(space.random_id(&mut rng));
        }
        set.into_iter().collect()
    }

    /// A deterministic fake latency: hash of the unordered pair.
    fn fake_latency(a: &NodeId, b: &NodeId) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        if a < b {
            (a, b).hash(&mut h);
        } else {
            (b, a).hash(&mut h);
        }
        1 + h.finish() % 100_000
    }

    #[test]
    fn proximate_tables_pass_the_checker() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, 60, 5);
        let tables = build_proximate_tables(space, &v, fake_latency);
        let report = check_consistency(space, &tables);
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    fn proximate_fill_never_loses_to_the_oracle() {
        let space = IdSpace::new(8, 4).unwrap();
        let v = ids(space, 50, 9);
        let oracle = build_consistent_tables(space, &v);
        let prox = build_proximate_tables(space, &v, fake_latency);
        let total = |tables: &[NeighborTable]| -> u64 {
            tables
                .iter()
                .map(|t| {
                    let me = t.owner();
                    t.iter()
                        .filter(|(_, _, e)| e.node != me)
                        .map(|(_, _, e)| fake_latency(&me, &e.node))
                        .sum::<u64>()
                })
                .sum()
        };
        assert!(total(&prox) <= total(&oracle));
        // Same slots are populated in both builds (consistency dictates
        // which suffixes exist, not which carrier fills them).
        for (a, b) in oracle.iter().zip(prox.iter()) {
            assert_eq!(a.owner(), b.owner());
            assert_eq!(a.filled(), b.filled());
        }
    }

    #[test]
    fn proximate_build_is_deterministic() {
        let space = IdSpace::new(4, 5).unwrap();
        let v = ids(space, 40, 11);
        let a = build_proximate_tables(space, &v, fake_latency);
        let b = build_proximate_tables(space, &v, fake_latency);
        assert_eq!(
            crate::digest::tables_digest(&a),
            crate::digest::tables_digest(&b)
        );
    }

    #[test]
    fn sampled_fill_is_consistent_deterministic_and_promotable() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, 60, 21);
        let a = build_proximate_tables_sampled(space, &v, fake_latency, 2, 7);
        let b = build_proximate_tables_sampled(space, &v, fake_latency, 2, 7);
        assert_eq!(
            crate::digest::tables_digest(&a),
            crate::digest::tables_digest(&b)
        );
        let report = check_consistency(space, &a);
        assert!(report.is_consistent(), "{report}");
        // Bounded knowledge leaves slack that dense demand recovers: with
        // every node observed, promotion must close some of the gap to
        // the omniscient fill.
        let total = |tables: &[NeighborTable]| -> u64 {
            tables
                .iter()
                .map(|t| {
                    let me = t.owner();
                    t.iter()
                        .filter(|(_, _, e)| e.node != me)
                        .map(|(_, _, e)| fake_latency(&me, &e.node))
                        .sum::<u64>()
                })
                .sum()
        };
        let full = build_proximate_tables(space, &v, fake_latency);
        assert!(total(&full) < total(&a), "sampling left no slack");
        let mut promoted = a.clone();
        let mut demand = DemandProfile::new();
        for t in promoted.iter() {
            let me = t.owner();
            for &src in &v {
                if src == me {
                    continue;
                }
                let k = me.csuf_len(&src);
                demand.record_hop(me, k, src.digit(k), src);
            }
        }
        let rep = promote_secondaries(&mut promoted, &demand, fake_latency, 1);
        assert!(rep.promoted > 0);
        assert!(total(&promoted) < total(&a));
        let report = check_consistency(space, &promoted);
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    fn promotion_swaps_hot_slots_and_preserves_consistency() {
        let space = IdSpace::new(8, 5).unwrap();
        let v = ids(space, 60, 13);
        let mut tables = build_consistent_tables(space, &v);
        // Synthesize demand: every node observes every other, every slot
        // is hot — promotion should then reach the fill-time optimum for
        // all slots whose best candidate appeared as a source.
        let mut demand = DemandProfile::new();
        for t in tables.iter() {
            let me = t.owner();
            for &src in &v {
                if src == me {
                    continue;
                }
                let k = me.csuf_len(&src);
                demand.record_hop(me, k, src.digit(k), src);
            }
        }
        let before: u64 = tables
            .iter()
            .map(|t| {
                let me = t.owner();
                t.iter()
                    .filter(|(_, _, e)| e.node != me)
                    .map(|(_, _, e)| fake_latency(&me, &e.node))
                    .sum::<u64>()
            })
            .sum();
        let report = promote_secondaries(&mut tables, &demand, fake_latency, 1);
        assert!(report.promoted > 0, "dense demand must promote something");
        let after: u64 = tables
            .iter()
            .map(|t| {
                let me = t.owner();
                t.iter()
                    .filter(|(_, _, e)| e.node != me)
                    .map(|(_, _, e)| fake_latency(&me, &e.node))
                    .sum::<u64>()
            })
            .sum();
        assert!(after < before);
        let c = check_consistency(space, &tables);
        assert!(c.is_consistent(), "{c}");
    }

    #[test]
    fn promotion_respects_the_traffic_threshold() {
        let space = IdSpace::new(8, 4).unwrap();
        let v = ids(space, 30, 17);
        let mut tables = build_consistent_tables(space, &v);
        let mut demand = DemandProfile::new();
        // One observation per slot, threshold of two: nothing may move.
        for t in tables.iter() {
            let me = t.owner();
            for &src in &v {
                if src == me {
                    continue;
                }
                let k = me.csuf_len(&src);
                demand.record_hop(me, k, src.digit(k), src);
            }
        }
        let digest = crate::digest::tables_digest(&tables);
        let report = promote_secondaries(&mut tables, &demand, fake_latency, u64::MAX);
        assert_eq!(report.promoted, 0);
        assert_eq!(crate::digest::tables_digest(&tables), digest);
    }

    #[test]
    fn demand_profile_counts_hops() {
        let space = IdSpace::new(4, 3).unwrap();
        let a = space.parse_id("012").unwrap();
        let b = space.parse_id("311").unwrap();
        let mut d = DemandProfile::new();
        d.record_hop(a, 0, 1, b);
        d.record_hop(a, 0, 1, b);
        d.record_hop(a, 1, 2, b);
        assert_eq!(d.slot_traffic(&a, 0, 1), 2);
        assert_eq!(d.slot_traffic(&a, 1, 2), 1);
        assert_eq!(d.slot_traffic(&b, 0, 1), 0);
        assert_eq!(d.total_hops(), 3);
        assert_eq!(d.observed(&a).collect::<Vec<_>>(), vec![&b]);
        assert_eq!(d.observed(&b).count(), 0);
    }
}
