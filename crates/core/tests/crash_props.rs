//! Property tests of the crash-churn subsystem: under *random* crash
//! schedules — population size, victim count, and per-victim crash
//! instants all drawn by proptest — survivors with the failure detector
//! and repair enabled must evict every dead neighbor and converge to
//! tables free of false negatives (the reachability-breaking violation
//! class), with consistency checked over survivors only.

use hyperring_core::{FailureDetector, ProtocolOptions, SimNetworkBuilder, Status, Violation};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::UniformDelay;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random membership, random victims, random (possibly overlapping)
    /// crash instants inside a 0.8 s window: after detection and repair
    /// run their course, every survivor has dropped every dead node and
    /// no vacated slot is left empty while a live node could fill it.
    #[test]
    fn survivors_reach_false_negative_free_tables(
        seed in 0u64..100_000,
        members in 8usize..16,
        crashes in 1usize..4,
    ) {
        let crashes = crashes.min(members / 3);
        let space = IdSpace::new(4, 6).unwrap();
        let ids = distinct(space, members, seed.rotate_left(23) | 1);
        let fd = FailureDetector {
            probe_interval_us: 100_000,
            suspicion_threshold: 3,
            repair: true,
            ..FailureDetector::default()
        };
        let mut b = SimNetworkBuilder::new(space);
        b.options(ProtocolOptions::new().with_failure_detector(fd));
        for id in &ids {
            b.add_member(*id);
        }
        let mut net = b.build(UniformDelay::new(500, 5_000), seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03);
        let victims = &ids[..crashes];
        for id in victims {
            net.crash_at(id, rng.gen_range(0..800_000));
        }
        // Crash window + suspicion build-up + several repair rounds.
        net.run_until(5_000_000);

        prop_assert_eq!(net.tables().len(), members - crashes);
        for e in net.engines() {
            if e.status() == Status::Crashed {
                continue;
            }
            for dead in victims {
                prop_assert!(
                    !e.table().iter().any(|(_, _, en)| en.node == *dead),
                    "{} still stores crashed {}", e.id(), dead
                );
            }
        }
        let report = net.check_consistency();
        let false_negatives = report
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::FalseNegative { .. }))
            .count();
        prop_assert_eq!(false_negatives, 0, "survivor tables: {}", report);
    }
}
