//! White-box tests of every protocol action, figure by figure: each test
//! drives a `JoinEngine` with hand-crafted messages and asserts the exact
//! state transition and outgoing messages the paper's pseudo-code
//! prescribes.

use hyperring_core::{
    build_consistent_tables, Effects, Entry, JoinEngine, Message, NeighborTable, NodeState,
    ProtocolOptions, Status,
};
use hyperring_id::{IdSpace, NodeId};

fn space() -> IdSpace {
    IdSpace::new(4, 4).unwrap()
}

fn id(s: &str) -> NodeId {
    space().parse_id(s).unwrap()
}

fn member(ids: &[&str], who: &str) -> JoinEngine {
    let ids: Vec<NodeId> = ids.iter().map(|s| id(s)).collect();
    let me = id(who);
    let table = build_consistent_tables(space(), &ids)
        .into_iter()
        .find(|t| t.owner() == me)
        .expect("member id present");
    JoinEngine::new_member(space(), ProtocolOptions::new(), table)
}

fn joiner(who: &str) -> JoinEngine {
    JoinEngine::new_joiner(space(), ProtocolOptions::new(), id(who))
}

fn sent(out: &mut Effects) -> Vec<(NodeId, Message)> {
    out.drain_sends().collect()
}

/// Delivers every queued message from `from`'s outbox that is addressed to
/// one specific engine, returning the rest.
fn snapshot_of(e: &JoinEngine) -> hyperring_core::TableSnapshot {
    e.table().snapshot()
}

// ---------------------------------------------------------------------
// Figure 5 — status copying
// ---------------------------------------------------------------------

#[test]
fn fig5_copying_walks_levels_and_stops_at_null() {
    // g0 = 0000 in V = {0000, 3210, 1110}; joiner x = 2110.
    // Copy chain: level 0 from 0000 -> N(0, 0) of 0000 ... x[0] = 0, so
    // next = N_g(0, 0) = 0000 itself (self entry) — chain stays at g0?
    // Choose x = 2113 instead: x[0] = 3; 0000's (0,3) entry covers 3210's
    // suffix "3"? 3210 ends in 0. Use V where the chain is interesting.
    let v = ["0000", "3213", "1113"];
    let g0 = member(&v, "0000");
    let mut g0 = g0;
    let mut x = joiner("2113");
    let mut out = Effects::new();
    x.start_join(id("0000"), &mut out);
    let msgs = sent(&mut out);
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].0, id("0000"));
    assert!(matches!(msgs[0].1, Message::CpRst { level: 0 }));

    // g0 replies with its full table.
    let mut out = Effects::new();
    g0.handle(id("2113"), Message::CpRst { level: 0 }, &mut out);
    let msgs = sent(&mut out);
    assert_eq!(msgs.len(), 1);
    let (to, reply) = &msgs[0];
    assert_eq!(*to, id("2113"));
    assert!(matches!(reply, Message::CpRly { level: 0, .. }));

    // x copies level 0; next hop = g0's (0, 3)-neighbor (suffix "3"),
    // which the oracle filled with 1113 (smallest of {3213, 1113}).
    let mut out = Effects::new();
    x.handle(id("0000"), reply.clone(), &mut out);
    assert_eq!(x.status(), Status::Copying);
    let msgs = sent(&mut out);
    // x copied entries -> RvNghNoti to each copied neighbor, plus the next
    // CpRst to 1113 at level 1.
    let cprsts: Vec<_> = msgs
        .iter()
        .filter(|(_, m)| matches!(m, Message::CpRst { .. }))
        .collect();
    assert_eq!(cprsts.len(), 1);
    assert_eq!(cprsts[0].0, id("1113"));
    assert!(matches!(cprsts[0].1, Message::CpRst { level: 1 }));
    assert!(msgs
        .iter()
        .any(|(_, m)| matches!(m, Message::RvNghNoti { .. })));
}

#[test]
fn fig5_copying_enters_waiting_when_no_deeper_node() {
    // V = {0000}: the chain ends immediately for any joiner whose last
    // digit differs; x waits on g0 itself (g = null case).
    let mut g0 = member(&["0000"], "0000");
    let mut x = joiner("3213");
    let mut out = Effects::new();
    x.start_join(id("0000"), &mut out);
    let (_, cprst) = sent(&mut out).pop().unwrap();
    let mut out = Effects::new();
    g0.handle(id("3213"), cprst, &mut out);
    let (_, cprly) = sent(&mut out).pop().unwrap();

    let mut out = Effects::new();
    x.handle(id("0000"), cprly, &mut out);
    assert_eq!(x.status(), Status::Waiting);
    // Self entries are installed on the transition (Figure 5's last loop).
    for i in 0..4 {
        let e = x.table().get(i, id("3213").digit(i)).unwrap();
        assert_eq!(e.node, id("3213"));
        assert_eq!(e.state, NodeState::T);
    }
    let msgs = sent(&mut out);
    let joinwaits: Vec<_> = msgs
        .iter()
        .filter(|(_, m)| matches!(m, Message::JoinWait))
        .collect();
    assert_eq!(joinwaits.len(), 1);
    assert_eq!(joinwaits[0].0, id("0000"));
}

#[test]
fn fig5_copying_waits_on_t_node() {
    // x copies a level whose (i, x[i]) entry records a T-node: x must send
    // the JoinWaitMsg to that T-node (the "g_{k+1} is still a T-node"
    // branch), not continue copying from it.
    let mut x = joiner("3213");
    // Hand-craft a reply from a fake g0 whose (0,3) entry is a T-state
    // node 1113.
    let mut g0_table = NeighborTable::new(space(), id("0000"));
    g0_table.set_self_entries(NodeState::S);
    g0_table.set(
        0,
        3,
        Entry {
            node: id("1113"),
            state: NodeState::T,
        },
    );
    let mut out = Effects::new();
    x.start_join(id("0000"), &mut out);
    out.drain_sends().count();
    let mut out = Effects::new();
    x.handle(
        id("0000"),
        Message::CpRly {
            level: 0,
            table: g0_table.snapshot(),
        },
        &mut out,
    );
    assert_eq!(x.status(), Status::Waiting);
    let msgs = sent(&mut out);
    let (to, _) = msgs
        .iter()
        .find(|(_, m)| matches!(m, Message::JoinWait))
        .expect("JoinWaitMsg sent");
    assert_eq!(*to, id("1113"), "must wait on the T-node, not copy from it");
}

// ---------------------------------------------------------------------
// Figure 6 — receiving JoinWaitMsg
// ---------------------------------------------------------------------

#[test]
fn fig6_s_node_with_empty_entry_replies_positive_and_stores() {
    let mut y = member(&["0000", "1110"], "0000");
    let x = id("3213");
    let mut out = Effects::new();
    y.handle(x, Message::JoinWait, &mut out);
    // k = |csuf(0000, 3213)| = 0; entry (0, 3) was empty.
    let e = y.table().get(0, 3).unwrap();
    assert_eq!(e.node, x);
    assert_eq!(e.state, NodeState::T);
    let msgs = sent(&mut out);
    assert_eq!(msgs.len(), 1);
    match &msgs[0].1 {
        Message::JoinWaitRly { positive, next, .. } => {
            assert!(*positive);
            assert_eq!(*next, x);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn fig6_s_node_with_occupied_entry_replies_negative_with_occupant() {
    let mut y = member(&["0000", "1113"], "0000");
    // (0, 3) already holds 1113; joiner 3213 must be redirected there.
    let mut out = Effects::new();
    y.handle(id("3213"), Message::JoinWait, &mut out);
    let msgs = sent(&mut out);
    match &msgs[0].1 {
        Message::JoinWaitRly { positive, next, .. } => {
            assert!(!*positive);
            assert_eq!(*next, id("1113"));
        }
        other => panic!("unexpected {other:?}"),
    }
    // The entry is untouched.
    assert_eq!(y.table().get(0, 3).unwrap().node, id("1113"));
}

#[test]
fn fig6_t_node_queues_the_request_until_switching() {
    // A joiner in waiting status receives JoinWaitMsg: no reply now (Q_j).
    let mut x = joiner("3213");
    let mut g0 = member(&["0000"], "0000");
    // Drive x into waiting via the usual exchange.
    let mut out = Effects::new();
    x.start_join(id("0000"), &mut out);
    let (_, m) = sent(&mut out).pop().unwrap();
    let mut out = Effects::new();
    g0.handle(id("3213"), m, &mut out);
    let (_, m) = sent(&mut out).pop().unwrap();
    let mut out = Effects::new();
    x.handle(id("0000"), m, &mut out);
    out.drain_sends().count();
    assert_eq!(x.status(), Status::Waiting);

    // Another joiner asks x to store it: silence.
    let mut out = Effects::new();
    x.handle(id("1113"), Message::JoinWait, &mut out);
    assert!(out.is_empty(), "T-node must delay its JoinWaitRlyMsg");

    // Now let x's own join finish: g0 replies positive; x has nobody to
    // notify, switches, and must answer the queued joiner (Figure 13).
    let mut out = Effects::new();
    g0.handle(id("3213"), Message::JoinWait, &mut out);
    let (_, rly) = sent(&mut out)
        .into_iter()
        .find(|(_, m)| matches!(m, Message::JoinWaitRly { .. }))
        .unwrap();
    let mut out = Effects::new();
    x.handle(id("0000"), rly, &mut out);
    assert_eq!(x.status(), Status::InSystem);
    let msgs = sent(&mut out);
    let queued_reply = msgs
        .iter()
        .find(|(to, m)| *to == id("1113") && matches!(m, Message::JoinWaitRly { .. }))
        .expect("queued joiner must get a reply on switch");
    match &queued_reply.1 {
        Message::JoinWaitRly { positive, .. } => assert!(*positive),
        _ => unreachable!(),
    }
    // And x stored the queued joiner: csuf(3213, 1113) = 2 ⇒ entry (2, 1).
    assert_eq!(x.table().get(2, 1).unwrap().node, id("1113"));
}

// ---------------------------------------------------------------------
// Figures 7 + 8 — JoinWaitRlyMsg and Check_Ngh_Table
// ---------------------------------------------------------------------

#[test]
fn fig7_negative_reply_extends_the_wait_chain() {
    let mut x = joiner("3213");
    let mut g0 = member(&["0000"], "0000");
    let mut out = Effects::new();
    x.start_join(id("0000"), &mut out);
    let (_, m) = sent(&mut out).pop().unwrap();
    let mut out = Effects::new();
    g0.handle(id("3213"), m, &mut out);
    let (_, m) = sent(&mut out).pop().unwrap();
    let mut out = Effects::new();
    x.handle(id("0000"), m, &mut out);
    out.drain_sends().count();

    // Craft a negative reply pointing at 1113.
    let mut holder = NeighborTable::new(space(), id("0000"));
    holder.set_self_entries(NodeState::S);
    let mut out = Effects::new();
    x.handle(
        id("0000"),
        Message::JoinWaitRly {
            positive: false,
            next: id("1113"),
            table: holder.snapshot(),
        },
        &mut out,
    );
    assert_eq!(x.status(), Status::Waiting, "still waiting after negative");
    let msgs = sent(&mut out);
    let (to, _) = msgs
        .iter()
        .find(|(_, m)| matches!(m, Message::JoinWait))
        .expect("chained JoinWaitMsg");
    assert_eq!(*to, id("1113"));
}

#[test]
fn fig7_positive_reply_sets_noti_level_and_fig8_notifies() {
    let mut x = joiner("3213");
    let g = member(&["0000"], "0000");
    // Pretend the chain ran; deliver a positive reply from a member whose
    // table contains another node sharing >= noti_level digits with x.
    let mut gt = NeighborTable::new(space(), id("0000"));
    gt.set_self_entries(NodeState::S);
    gt.set(
        0,
        3,
        Entry {
            node: id("1113"), // shares suffix "3" with x (k = 1... csuf(3213,1113)=2)
            state: NodeState::S,
        },
    );
    drop(g);
    let mut out = Effects::new();
    x.start_join(id("0000"), &mut out);
    out.drain_sends().count();
    // Skip the copy: deliver CpRly with an empty-ish table to reach waiting.
    let mut out = Effects::new();
    x.handle(
        id("0000"),
        Message::CpRly {
            level: 0,
            table: NeighborTable::new(space(), id("0000")).snapshot(),
        },
        &mut out,
    );
    out.drain_sends().count();
    assert_eq!(x.status(), Status::Waiting);

    let mut out = Effects::new();
    x.handle(
        id("0000"),
        Message::JoinWaitRly {
            positive: true,
            next: id("3213"),
            table: gt.snapshot(),
        },
        &mut out,
    );
    // noti_level = |csuf(3213, 0000)| = 0.
    assert_eq!(x.noti_level(), 0);
    // Check_Ngh_Table saw 1113 (csuf 2 >= 0, not yet notified): JoinNoti.
    let msgs = sent(&mut out);
    let notis: Vec<_> = msgs
        .iter()
        .filter(|(_, m)| matches!(m, Message::JoinNoti { .. }))
        .collect();
    assert_eq!(notis.len(), 1);
    assert_eq!(notis[0].0, id("1113"));
    // x filled its (2, 1) entry with 1113 and is now notifying.
    assert_eq!(x.status(), Status::Notifying);
    assert_eq!(x.table().get(2, 1).unwrap().node, id("1113"));
}

// ---------------------------------------------------------------------
// Figures 9 + 10 — JoinNotiMsg / JoinNotiRlyMsg and the f-flag
// ---------------------------------------------------------------------

#[test]
fn fig9_s_node_sets_flag_when_notifier_stored_someone_else() {
    // y (S-node 1113) receives JoinNoti from x (3213) whose table maps
    // y's slot (k=2, digit y[2]=1) to a *different* node 2113: f = true.
    let mut y = member(&["1113", "0000"], "1113");
    let mut xt = NeighborTable::new(space(), id("3213"));
    xt.set_self_entries(NodeState::T);
    xt.set(
        2,
        1,
        Entry {
            node: id("2113"),
            state: NodeState::T,
        },
    );
    let mut out = Effects::new();
    y.handle(
        id("3213"),
        Message::JoinNoti {
            table: xt.snapshot(),
            filled_bits: None,
        },
        &mut out,
    );
    let msgs = sent(&mut out);
    let rly = msgs
        .iter()
        .find(|(_, m)| matches!(m, Message::JoinNotiRly { .. }))
        .unwrap();
    match &rly.1 {
        Message::JoinNotiRly { positive, flag, .. } => {
            assert!(*positive, "y stored x (entry was empty)");
            assert!(*flag, "f must be set: x's table held 2113, not y");
        }
        _ => unreachable!(),
    }
    // y stores x at (k = 2, x[2] = 2).
    assert_eq!(y.table().get(2, 2).unwrap().node, id("3213"));
}

#[test]
fn fig10_flag_triggers_spenoti_toward_the_occupant() {
    // x in notifying with noti_level 0 has entry (2,1) = 2113; a flagged
    // reply from 1113 (k = 2 > 0) must trigger SpeNoti(x, 1113) to 2113.
    let mut x = joiner("3213");
    let mut out = Effects::new();
    x.start_join(id("0000"), &mut out);
    out.drain_sends().count();
    let mut out = Effects::new();
    x.handle(
        id("0000"),
        Message::CpRly {
            level: 0,
            table: NeighborTable::new(space(), id("0000")).snapshot(),
        },
        &mut out,
    );
    out.drain_sends().count();
    // Positive wait-reply whose table contains 2113, so x fills (2,1).
    let mut gt = NeighborTable::new(space(), id("0000"));
    gt.set_self_entries(NodeState::S);
    gt.set(
        0,
        3,
        Entry {
            node: id("2113"),
            state: NodeState::S,
        },
    );
    let mut out = Effects::new();
    x.handle(
        id("0000"),
        Message::JoinWaitRly {
            positive: true,
            next: id("3213"),
            table: gt.snapshot(),
        },
        &mut out,
    );
    out.drain_sends().count();
    assert_eq!(x.status(), Status::Notifying);
    assert_eq!(x.table().get(2, 1).unwrap().node, id("2113"));

    // Flagged JoinNotiRly from 1113.
    let mut yt = NeighborTable::new(space(), id("1113"));
    yt.set_self_entries(NodeState::S);
    let mut out = Effects::new();
    x.handle(
        id("1113"),
        Message::JoinNotiRly {
            positive: true,
            table: yt.snapshot(),
            flag: true,
        },
        &mut out,
    );
    let msgs = sent(&mut out);
    let spe = msgs
        .iter()
        .find(|(_, m)| matches!(m, Message::SpeNoti { .. }))
        .expect("SpeNotiMsg must be sent");
    assert_eq!(spe.0, id("2113"), "sent to the slot's occupant");
    match &spe.1 {
        Message::SpeNoti { initiator, subject } => {
            assert_eq!(*initiator, id("3213"));
            assert_eq!(*subject, id("1113"));
        }
        _ => unreachable!(),
    }
    // x must not switch while the SpeNoti is outstanding (Q_sr nonempty).
    assert_eq!(x.status(), Status::Notifying);

    // 2113's own JoinNotiRly drains Q_r, but Q_sr still holds 1113.
    let mut zt = NeighborTable::new(space(), id("2113"));
    zt.set_self_entries(NodeState::S);
    x.handle(
        id("2113"),
        Message::JoinNotiRly {
            positive: true,
            table: zt.snapshot(),
            flag: false,
        },
        &mut Effects::new(),
    );
    assert_eq!(x.status(), Status::Notifying, "Q_sr still outstanding");

    // The flagged reply's Check_Ngh_Table also made x notify 1113 itself
    // (it appeared in the reply table); answer that too.
    let mut yt2 = NeighborTable::new(space(), id("1113"));
    yt2.set_self_entries(NodeState::S);
    x.handle(
        id("1113"),
        Message::JoinNotiRly {
            positive: true,
            table: yt2.snapshot(),
            flag: false,
        },
        &mut Effects::new(),
    );
    assert_eq!(x.status(), Status::Notifying, "Q_sr still outstanding");

    // The SpeNotiRly releases it.
    let mut out = Effects::new();
    x.handle(
        id("2113"),
        Message::SpeNotiRly {
            subject: id("1113"),
        },
        &mut out,
    );
    assert_eq!(x.status(), Status::InSystem);
}

// ---------------------------------------------------------------------
// Figure 11 — SpeNotiMsg forwarding
// ---------------------------------------------------------------------

#[test]
fn fig11_receiver_stores_subject_or_forwards() {
    // u = 2113 with empty (3, 1): stores subject 1113 (state S) and
    // replies to the initiator.
    let mut u = member(&["2113", "0000"], "2113");
    let mut out = Effects::new();
    u.handle(
        id("0000"), // transport sender is irrelevant
        Message::SpeNoti {
            initiator: id("3213"),
            subject: id("1113"),
        },
        &mut out,
    );
    // csuf(2113, 1113) = 3; subject digit(3) = 1 ⇒ entry (3, 1).
    let e = u.table().get(3, 1).unwrap();
    assert_eq!(e.node, id("1113"));
    assert_eq!(e.state, NodeState::S);
    let msgs = sent(&mut out);
    let rly = msgs
        .iter()
        .find(|(_, m)| matches!(m, Message::SpeNotiRly { .. }))
        .expect("reply to initiator");
    assert_eq!(rly.0, id("3213"));

    // Occupied-slot case: u's (2, 0) entry (desired suffix "013") holds
    // member 3013; a SpeNoti about subject 0013 (csuf(2113, 0013) = 2,
    // digit 0) must be *forwarded* to the occupant, not answered.
    let mut u2 = member(&["2113", "0000", "3013"], "2113");
    assert_eq!(u2.table().get(2, 0).unwrap().node, id("3013"));
    let mut out = Effects::new();
    u2.handle(
        id("0000"),
        Message::SpeNoti {
            initiator: id("3213"),
            subject: id("0013"),
        },
        &mut out,
    );
    let msgs = sent(&mut out);
    assert!(
        !msgs
            .iter()
            .any(|(_, m)| matches!(m, Message::SpeNotiRly { .. })),
        "must not reply while the slot holds another node"
    );
    let fwd = msgs
        .iter()
        .find(|(_, m)| matches!(m, Message::SpeNoti { .. }))
        .expect("forwarded SpeNoti");
    assert_eq!(fwd.0, id("3013"));
    match &fwd.1 {
        Message::SpeNoti { initiator, subject } => {
            assert_eq!(*initiator, id("3213"));
            assert_eq!(*subject, id("0013"));
        }
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------------
// Figure 14 + RvNghNoti — state upgrades
// ---------------------------------------------------------------------

#[test]
fn fig14_insysnoti_upgrades_t_to_s() {
    let mut y = member(&["0000"], "0000");
    // Store a T-state neighbor by receiving its JoinWait.
    y.handle(id("3213"), Message::JoinWait, &mut Effects::new());
    assert_eq!(y.table().get(0, 3).unwrap().state, NodeState::T);
    y.handle(id("3213"), Message::InSysNoti, &mut Effects::new());
    assert_eq!(y.table().get(0, 3).unwrap().state, NodeState::S);
}

#[test]
fn rvnghnoti_mismatch_gets_corrected() {
    // An S-node member receives RvNghNoti recording it as T: it must
    // immediately reply with its actual state S.
    let mut y = member(&["0000"], "0000");
    let mut out = Effects::new();
    y.handle(
        id("3213"),
        Message::RvNghNoti {
            recorded: NodeState::T,
        },
        &mut out,
    );
    let msgs = sent(&mut out);
    assert_eq!(msgs.len(), 1);
    match &msgs[0].1 {
        Message::RvNghNotiRly { actual } => assert_eq!(*actual, NodeState::S),
        other => panic!("unexpected {other:?}"),
    }
    // Consistent recording: silence.
    let mut out = Effects::new();
    y.handle(
        id("1110"),
        Message::RvNghNoti {
            recorded: NodeState::S,
        },
        &mut out,
    );
    assert!(out.is_empty());
    // And the reverse-neighbor set now holds both senders.
    let rv = y.table().reverse_neighbors();
    assert!(rv.contains(&id("3213")));
    assert!(rv.contains(&id("1110")));
}

#[test]
fn rvnghnotirly_updates_recorded_state() {
    let mut x = joiner("3213");
    // Seed x's table with a stale T-state record of 0001 at slot (0, 1)
    // through a crafted CpRly. (0, 1) is not one of x's self slots, so it
    // survives the transition to waiting.
    let mut gt = NeighborTable::new(space(), id("0000"));
    gt.set_self_entries(NodeState::S);
    gt.set(
        0,
        1,
        Entry {
            node: id("0001"),
            state: NodeState::T,
        },
    );
    let mut out = Effects::new();
    x.start_join(id("0000"), &mut out);
    out.drain_sends().count();
    x.handle(
        id("0000"),
        Message::CpRly {
            level: 0,
            table: gt.snapshot(),
        },
        &mut Effects::new(),
    );
    // next = gt(0, 3) is empty, so x entered waiting; the copied record
    // remains, still marked T.
    assert_eq!(x.status(), Status::Waiting);
    let before = x.table().get(0, 1).unwrap();
    assert_eq!(before.node, id("0001"));
    assert_eq!(before.state, NodeState::T);

    // 0001's corrective RvNghNotiRly (it is actually an S-node) upgrades
    // the record: csuf(3213, 0001) = 0 targets slot (0, 0001[0]) = (0, 1).
    x.handle(
        id("0001"),
        Message::RvNghNotiRly {
            actual: NodeState::S,
        },
        &mut Effects::new(),
    );
    assert_eq!(x.table().get(0, 1).unwrap().state, NodeState::S);
    let _ = snapshot_of(&x);
}
