//! End-to-end fault injection: the join protocol must still reach
//! Definition 3.8 consistency when the network drops and duplicates
//! messages, with recovery driven entirely by the engine's timer retries
//! (`RetryPolicy`). The paper assumes reliable delivery; these tests show
//! the timeout/retransmission layer restores that assumption on top of a
//! lossy substrate.

use hyperring_core::{ProtocolOptions, RetryPolicy, SimNetworkBuilder};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::{FaultyDelay, UniformDelay};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// 64 nodes (16 members, 48 concurrent joiners) on a network that drops
/// 10% and duplicates 2% of all messages. Every joiner must still reach
/// `in_system` and the final tables must satisfy Definition 3.8 — losses
/// repaired by timer-driven retransmission, duplicates absorbed by the
/// engine's reply guards.
#[test]
fn sixty_four_nodes_join_through_ten_percent_drop() {
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct(space, 64, 42);
    let (v, w) = ids.split_at(16);
    let mut b = SimNetworkBuilder::new(space);
    for id in v {
        b.add_member(*id);
    }
    for id in w {
        b.add_joiner(*id, v[0], 0);
    }
    b.options(ProtocolOptions::new().with_retry(RetryPolicy {
        timeout_us: 300_000,
        max_retries: 30,
        noti_repeats: 6,
        ..RetryPolicy::default()
    }));
    let delay = FaultyDelay::new(UniformDelay::new(1_000, 50_000), 0.10, 0.02);
    let mut net = b.build(delay, 4242);
    let report = net.run();
    assert!(!report.truncated, "run failed to quiesce");
    assert!(report.dropped > 0, "fault injection never fired");
    assert!(report.duplicated > 0, "duplication never fired");
    assert!(
        report.timers_fired > 0,
        "recovery must have come from timer retries"
    );
    assert!(
        net.all_in_system(),
        "a joiner stalled despite retries ({} drops, {} timer fires)",
        report.dropped,
        report.timers_fired
    );
    let rep = net.check_consistency();
    assert!(rep.is_consistent(), "{rep}");
}

/// Without a retry policy the same lossy network strands joiners: the
/// control experiment showing the timers are what Theorem 2's liveness
/// rides on once delivery is unreliable.
#[test]
fn drops_without_retries_strand_joiners() {
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct(space, 32, 42);
    let (v, w) = ids.split_at(16);
    let mut stranded = 0;
    for seed in 0..4 {
        let mut b = SimNetworkBuilder::new(space);
        for id in v {
            b.add_member(*id);
        }
        for id in w {
            b.add_joiner(*id, v[0], 0);
        }
        let delay = FaultyDelay::new(UniformDelay::new(1_000, 50_000), 0.10, 0.02);
        let mut net = b.build(delay, seed);
        let report = net.run();
        assert!(!report.truncated);
        if !net.all_in_system() {
            stranded += 1;
        }
    }
    assert!(
        stranded > 0,
        "10% drop over 4 seeds never stranded a retry-less joiner"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random loss rates up to 15% (and duplication up to 10%), random
    /// seeds: bounded retries always reach `all_in_system` and a table set
    /// satisfying Definition 3.8.
    #[test]
    fn retries_recover_from_random_drops(
        seed in 0u64..10_000,
        drop_pct in 0u32..16,
        dup_pct in 0u32..11,
    ) {
        let space = IdSpace::new(4, 4).unwrap();
        let ids = distinct(space, 10, seed ^ 0xD1CE);
        let (v, w) = ids.split_at(6);
        let mut b = SimNetworkBuilder::new(space);
        for id in v {
            b.add_member(*id);
        }
        for id in w {
            b.add_joiner(*id, v[0], 0);
        }
        b.options(ProtocolOptions::new().with_retry(RetryPolicy {
            timeout_us: 200_000,
            max_retries: 40,
            noti_repeats: 8,
            ..RetryPolicy::default()
        }));
        let delay = FaultyDelay::new(
            UniformDelay::new(1_000, 40_000),
            f64::from(drop_pct) / 100.0,
            f64::from(dup_pct) / 100.0,
        );
        let mut net = b.build(delay, seed);
        let report = net.run();
        prop_assert!(!report.truncated);
        prop_assert!(net.all_in_system(), "stranded at drop={drop_pct}% seed={seed}");
        let rep = net.check_consistency();
        prop_assert!(rep.is_consistent(), "{}", rep);
    }
}
