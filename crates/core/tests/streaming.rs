//! Equivalence pins for the streaming Definition-3.8 verification stack:
//! the compact-index streaming checker, the combined digest+check pass,
//! the dirty-set incremental checker, and sampled reachability must all
//! agree — violation for violation, in order — with the reference
//! implementations (`check_consistency`, `check_consistency_naive`,
//! `tables_digest`, `check_reachability`) on random memberships, after
//! random table corruption, and across crash/repair waves.

use hyperring_core::{
    build_consistent_tables, check_consistency, check_consistency_naive,
    check_consistency_streaming, check_reachability, check_reachability_refs,
    check_reachability_sampled, digest_and_check_streaming, tables_digest, tables_digest_iter,
    Entry, FailureDetector, IncrementalChecker, NeighborTable, NodeState, ProtocolOptions,
    SimNetworkBuilder,
};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::UniformDelay;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// Applies `count` random mutations — blanked entries, stale-T states,
/// and (with `ghosts`) non-member neighbors that *fit* their slot, so
/// only the membership test can reject them — seeding every
/// Definition-3.8 violation class. Ghosts are skipped for workloads that
/// go on to *route* over the tables: `route` (rightly) panics on a hop to
/// a node that has no table.
fn corrupt_tables(
    space: IdSpace,
    tables: &mut [NeighborTable],
    count: usize,
    seed: u64,
    ghosts: bool,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let members: std::collections::HashSet<NodeId> = tables.iter().map(|t| t.owner()).collect();
    let (d, b) = (space.digit_count(), space.base() as u8);
    let kinds = if ghosts { 3u8 } else { 2 };
    for _ in 0..count {
        let ti = rng.gen_range(0..tables.len());
        let level = rng.gen_range(0..d);
        let digit = rng.gen_range(0..b);
        match rng.gen_range(0..kinds) {
            0 => tables[ti].clear(level, digit),
            1 => {
                if let Some(e) = tables[ti].get(level, digit) {
                    tables[ti].set(
                        level,
                        digit,
                        Entry {
                            node: e.node,
                            state: NodeState::T,
                        },
                    );
                }
            }
            _ => {
                // A ghost that carries the desired suffix but is no member.
                let desired = tables[ti].desired_suffix(level, digit);
                let mut digits = desired.digits_lsd().to_vec();
                while digits.len() < d {
                    digits.push(rng.gen_range(0..b));
                }
                let ghost = NodeId::from_digits_lsd(&digits);
                if !members.contains(&ghost) {
                    tables[ti].set(
                        level,
                        digit,
                        Entry {
                            node: ghost,
                            state: NodeState::S,
                        },
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// On clean oracle tables over a random membership, all three checkers
    /// report the same (empty) result and the same entry counts, and the
    /// combined pass reproduces the canonical digest byte for byte.
    #[test]
    fn streaming_equals_indexed_equals_naive_on_clean_tables(
        seed in 0u64..100_000,
        n in 2usize..24,
    ) {
        let space = IdSpace::new(4, 5).unwrap();
        let ids = distinct(space, n, seed | 1);
        let tables = build_consistent_tables(space, &ids);

        let indexed = check_consistency(space, &tables);
        let naive = check_consistency_naive(space, &tables);
        let streaming = check_consistency_streaming(space, tables.iter());
        prop_assert_eq!(indexed.violations(), naive.violations());
        prop_assert_eq!(streaming.violations(), indexed.violations());
        prop_assert_eq!(streaming.nodes(), indexed.nodes());
        prop_assert_eq!(streaming.entries_checked(), indexed.entries_checked());
        prop_assert!(streaming.is_consistent());

        let (digest, combined) = digest_and_check_streaming(space, tables.iter());
        prop_assert_eq!(digest, tables_digest(&tables));
        prop_assert_eq!(combined.violations(), indexed.violations());
    }

    /// After random blanking/staling/ghost-insertion, the three checkers
    /// still agree on the exact violation list — same order, same
    /// witnesses — and the combined pass still matches both halves.
    #[test]
    fn streaming_equals_indexed_equals_naive_after_corruption(
        seed in 0u64..100_000,
        n in 2usize..20,
        mutations in 1usize..12,
    ) {
        let space = IdSpace::new(4, 5).unwrap();
        let ids = distinct(space, n, seed.rotate_left(17) | 1);
        let mut tables = build_consistent_tables(space, &ids);
        corrupt_tables(space, &mut tables, mutations, seed ^ 0x0bad_5eed, true);

        let indexed = check_consistency(space, &tables);
        let naive = check_consistency_naive(space, &tables);
        let streaming = check_consistency_streaming(space, tables.iter());
        prop_assert_eq!(indexed.violations(), naive.violations());
        prop_assert_eq!(streaming.violations(), indexed.violations());

        let (digest, combined) = digest_and_check_streaming(space, tables.iter());
        prop_assert_eq!(digest, tables_digest(&tables));
        prop_assert_eq!(combined.violations(), streaming.violations());

        // The incremental checker, fed the corrupted set cold then again
        // warm, agrees both times.
        let mut inc = IncrementalChecker::new(space);
        let cold = inc.check(tables.iter());
        prop_assert_eq!(cold.violations(), streaming.violations());
        let warm = inc.check(tables.iter());
        prop_assert_eq!(warm.violations(), streaming.violations());
        prop_assert_eq!(inc.last_reverified(), 0, "unchanged tables re-verified");
    }

    /// Sampled reachability failures are a subset of the all-pairs
    /// failures, deterministic for a fixed seed, and empty on consistent
    /// tables.
    #[test]
    fn sampled_reachability_is_a_sound_sample(
        seed in 0u64..100_000,
        n in 3usize..14,
        mutations in 0usize..6,
    ) {
        let space = IdSpace::new(4, 5).unwrap();
        let ids = distinct(space, n, seed.rotate_left(9) | 1);
        let mut tables = build_consistent_tables(space, &ids);
        corrupt_tables(space, &mut tables, mutations, seed ^ 0x005a_11ed, false);

        let all: std::collections::HashSet<(NodeId, NodeId)> =
            check_reachability(&tables).into_iter().collect();
        let refs: Vec<&NeighborTable> = tables.iter().collect();
        let sampled = check_reachability_sampled(&refs, 64, seed);
        for pair in &sampled {
            prop_assert!(all.contains(pair), "sampled failure {pair:?} not in all-pairs");
        }
        prop_assert_eq!(&check_reachability_sampled(&refs, 64, seed), &sampled);
        if all.is_empty() {
            prop_assert!(sampled.is_empty());
        }
    }
}

/// Dirty-set incremental checking across a crash/repair wave must match a
/// from-scratch streaming pass at every horizon step, in both the
/// repair-on arm (which converges) and the repair-off control (which ends
/// with persistent violations).
#[test]
fn incremental_matches_full_pass_across_crash_repair_wave() {
    for repair in [true, false] {
        let space = IdSpace::new(4, 6).unwrap();
        let ids = distinct(space, 14, 11);
        let fd = FailureDetector {
            probe_interval_us: 100_000,
            suspicion_threshold: 3,
            repair,
            ..FailureDetector::default()
        };
        let mut b = SimNetworkBuilder::new(space);
        b.options(ProtocolOptions::new().with_failure_detector(fd));
        for id in &ids {
            b.add_member(*id);
        }
        let mut net = b.build(UniformDelay::new(500, 5_000), 7);
        let mut rng = StdRng::seed_from_u64(41);
        for id in &ids[..3] {
            net.crash_at(id, rng.gen_range(0..800_000));
        }

        let mut checker = IncrementalChecker::new(space).with_full_every(3);
        let mut saw_violations = false;
        for step in 1..=10u64 {
            net.run_until(step * 500_000);
            let incremental = checker.check(net.tables_iter());
            let full = check_consistency_streaming(space, net.tables_iter());
            assert_eq!(
                incremental.violations(),
                full.violations(),
                "repair={repair} step={step}: dirty-set check diverged from full pass"
            );
            saw_violations |= !incremental.is_consistent();
        }
        let end = checker.check(net.tables_iter());
        if repair {
            assert!(end.is_consistent(), "repair arm failed to converge: {end}");
        } else {
            assert!(
                !end.is_consistent(),
                "control arm should retain false negatives"
            );
        }
        assert!(
            saw_violations,
            "repair={repair}: the wave never surfaced a violation to track"
        );
    }
}

/// `tables_iter` exposes exactly the tables `tables()` clones — same
/// owners, same order, same canonical digest — so every ported call site
/// sees identical data.
#[test]
fn tables_iter_matches_materialized_tables() {
    let space = IdSpace::new(8, 5).unwrap();
    let ids = distinct(space, 20, 3);
    let mut b = SimNetworkBuilder::new(space);
    for id in &ids[..12] {
        b.add_member(*id);
    }
    for id in &ids[12..] {
        b.add_joiner(*id, ids[0], 0);
    }
    let mut net = b.build(UniformDelay::new(1_000, 50_000), 9);
    net.run();
    assert!(net.all_in_system());

    let cloned = net.tables();
    let borrowed_owners: Vec<NodeId> = net.tables_iter().map(|t| t.owner()).collect();
    let cloned_owners: Vec<NodeId> = cloned.iter().map(|t| t.owner()).collect();
    assert_eq!(borrowed_owners, cloned_owners);
    assert_eq!(
        tables_digest_iter(net.tables_iter()),
        tables_digest(&cloned)
    );

    let mut visited = 0;
    net.for_each_table(|t| {
        assert_eq!(t.owner(), cloned[visited].owner());
        visited += 1;
    });
    assert_eq!(visited, cloned.len());
}

/// A concretely broken network: sampled reachability actually catches the
/// hole the blanked entry opens (not just vacuously empty).
#[test]
fn sampled_reachability_finds_a_real_hole() {
    let space = IdSpace::new(4, 3).unwrap();
    let ids: Vec<NodeId> = ["012", "230", "111"]
        .iter()
        .map(|s| space.parse_id(s).unwrap())
        .collect();
    let mut tables = build_consistent_tables(space, &ids);
    tables[0].clear(0, 1); // 012's only route toward 111 starts here
    let refs: Vec<&NeighborTable> = tables.iter().collect();
    let all = check_reachability_refs(&refs);
    assert!(!all.is_empty());
    // 64 draws over 6 ordered pairs: the failing pair is sampled w.h.p.
    let sampled = check_reachability_sampled(&refs, 64, 5);
    assert!(!sampled.is_empty(), "64 draws over 6 pairs missed the hole");
    for pair in &sampled {
        assert!(all.contains(pair));
    }
}
