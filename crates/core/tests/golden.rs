//! Golden determinism tests: fixed-seed scenarios must reproduce exactly
//! the `RunReport` and final tables recorded before the zero-copy
//! simulation-core refactor (snapshot memoization, directory interner,
//! incremental bootstrap). Any drift here means the optimization changed
//! protocol behavior, not just speed.
//!
//! Run with `GOLDEN_PRINT=1 cargo test -p hyperring-core --test golden
//! -- --nocapture` to print the observed values when (deliberately)
//! re-recording.

use hyperring_core::{
    bootstrap_sequential, check_consistency, DigestTrace, NeighborTable, ProtocolOptions,
    SharedSink, SimNetworkBuilder,
};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::UniformDelay;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over a canonical rendering of every table: owner, all entries
/// `(level, digit, node, state)`, and all reverse-neighbor sets. Spelled
/// out here (instead of `DefaultHasher`) so the digest is stable across
/// Rust releases.
fn tables_digest(tables: &[NeighborTable]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for t in tables {
        eat(&format!("T{}", t.owner()));
        for (level, digit, e) in t.iter() {
            eat(&format!(
                "E{level}.{digit}.{}.{}",
                e.node,
                if e.state == hyperring_core::NodeState::S {
                    'S'
                } else {
                    'T'
                }
            ));
        }
        for level in 0..t.space().digit_count() {
            for digit in 0..t.space().base() as u8 {
                for r in t.reverse_of(level, digit) {
                    eat(&format!("R{level}.{digit}.{r}"));
                }
            }
        }
    }
    h
}

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

fn check(name: &str, observed: (u64, u64, bool, u64), golden: (u64, u64, bool, u64)) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!(
            "{name}: ({}, {}, {}, 0x{:016x})",
            observed.0, observed.1, observed.2, observed.3
        );
        return;
    }
    assert_eq!(
        observed, golden,
        "{name} drifted from the recorded golden run"
    );
}

/// The paper's Figure 2 scenario: five members, three concurrent joiners.
#[test]
fn golden_figure2_concurrent_join() {
    let space = IdSpace::new(8, 5).unwrap();
    let mut b = SimNetworkBuilder::new(space);
    for s in ["72430", "10353", "62332", "13141", "31701"] {
        b.add_member(space.parse_id(s).unwrap());
    }
    let gateway = space.parse_id("72430").unwrap();
    for s in ["10261", "47051", "00261"] {
        b.add_joiner(space.parse_id(s).unwrap(), gateway, 0);
    }
    let mut net = b.build(UniformDelay::new(1_000, 80_000), 1234);
    let report = net.run();
    let observed = (
        report.delivered,
        report.finished_at,
        net.check_consistency().is_consistent(),
        tables_digest(&net.tables()),
    );
    check(
        "figure2",
        observed,
        (60, 520_793, true, 0xa060_6a01_b74e_1e11),
    );
}

/// 40 random nodes (b=4, d=6): 25 members, 15 concurrent joiners.
#[test]
fn golden_forty_node_concurrent_join() {
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct(space, 40, 5);
    let (v, w) = ids.split_at(25);
    let mut b = SimNetworkBuilder::new(space);
    for id in v {
        b.add_member(*id);
    }
    for id in w {
        b.add_joiner(*id, v[0], 0);
    }
    let mut net = b.build(UniformDelay::new(100, 200_000), 99);
    let report = net.run();
    let observed = (
        report.delivered,
        report.finished_at,
        net.check_consistency().is_consistent(),
        tables_digest(&net.tables()),
    );
    check(
        "forty_node",
        observed,
        (358, 1_495_051, true, 0x8b04_5360_ccdc_6dc7),
    );
}

/// The Figure 2 scenario again, with a digest sink attached: the ordered
/// stream of `ProtocolEvent`s is itself part of the golden fingerprint.
/// Two invariants at once — attaching a trace must not perturb the run
/// (delivered/finished_at equal the untraced golden above), and the trace
/// content must be bit-stable under a fixed seed.
#[test]
fn golden_figure2_trace_digest() {
    let space = IdSpace::new(8, 5).unwrap();
    let mut b = SimNetworkBuilder::new(space);
    for s in ["72430", "10353", "62332", "13141", "31701"] {
        b.add_member(space.parse_id(s).unwrap());
    }
    let gateway = space.parse_id("72430").unwrap();
    for s in ["10261", "47051", "00261"] {
        b.add_joiner(space.parse_id(s).unwrap(), gateway, 0);
    }
    let sink = SharedSink::new(DigestTrace::new());
    b.trace(Box::new(sink.clone()));
    let mut net = b.build(UniformDelay::new(1_000, 80_000), 1234);
    let report = net.run();
    assert_eq!(
        (report.delivered, report.finished_at),
        (60, 520_793),
        "tracing perturbed the run itself"
    );
    let digest = *sink.lock();
    assert_eq!(digest.count(), report.traced, "sink missed records");
    let observed = (
        digest.count(),
        report.finished_at,
        net.check_consistency().is_consistent(),
        digest.digest(),
    );
    check(
        "figure2_trace",
        observed,
        (63, 520_793, true, 0xb38d_2be8_4c38_6573),
    );
}

/// §6.1 sequential bootstrap of 24 nodes (b=8, d=5).
#[test]
fn golden_sequential_bootstrap() {
    let space = IdSpace::new(8, 5).unwrap();
    let ids = distinct(space, 24, 17);
    let tables = bootstrap_sequential(space, ProtocolOptions::new(), &ids);
    let observed = (
        tables.len() as u64,
        0,
        check_consistency(space, &tables).is_consistent(),
        tables_digest(&tables),
    );
    check(
        "bootstrap24",
        observed,
        (24, 0, true, 0x171e_f58e_446d_553c),
    );
}
