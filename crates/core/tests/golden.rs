//! Golden determinism tests: fixed-seed scenarios must reproduce exactly
//! the `RunReport` and final tables recorded before the zero-copy
//! simulation-core refactor (snapshot memoization, directory interner,
//! incremental bootstrap). Any drift here means the optimization changed
//! protocol behavior, not just speed.
//!
//! Run with `GOLDEN_PRINT=1 cargo test -p hyperring-core --test golden
//! -- --nocapture` to print the observed values when (deliberately)
//! re-recording.

use hyperring_core::{
    bootstrap_batched, bootstrap_sequential, check_consistency, tables_digest, DigestTrace,
    ProtocolOptions, SharedSink, SimNetworkBuilder,
};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::UniformDelay;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

fn check(name: &str, observed: (u64, u64, bool, u64), golden: (u64, u64, bool, u64)) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!(
            "{name}: ({}, {}, {}, 0x{:016x})",
            observed.0, observed.1, observed.2, observed.3
        );
        return;
    }
    assert_eq!(
        observed, golden,
        "{name} drifted from the recorded golden run"
    );
}

/// The paper's Figure 2 scenario: five members, three concurrent joiners.
#[test]
fn golden_figure2_concurrent_join() {
    let space = IdSpace::new(8, 5).unwrap();
    let mut b = SimNetworkBuilder::new(space);
    for s in ["72430", "10353", "62332", "13141", "31701"] {
        b.add_member(space.parse_id(s).unwrap());
    }
    let gateway = space.parse_id("72430").unwrap();
    for s in ["10261", "47051", "00261"] {
        b.add_joiner(space.parse_id(s).unwrap(), gateway, 0);
    }
    let mut net = b.build(UniformDelay::new(1_000, 80_000), 1234);
    let report = net.run();
    let observed = (
        report.delivered,
        report.finished_at,
        net.check_consistency().is_consistent(),
        tables_digest(&net.tables()),
    );
    check(
        "figure2",
        observed,
        (60, 520_793, true, 0xa060_6a01_b74e_1e11),
    );
}

/// 40 random nodes (b=4, d=6): 25 members, 15 concurrent joiners.
#[test]
fn golden_forty_node_concurrent_join() {
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct(space, 40, 5);
    let (v, w) = ids.split_at(25);
    let mut b = SimNetworkBuilder::new(space);
    for id in v {
        b.add_member(*id);
    }
    for id in w {
        b.add_joiner(*id, v[0], 0);
    }
    let mut net = b.build(UniformDelay::new(100, 200_000), 99);
    let report = net.run();
    let observed = (
        report.delivered,
        report.finished_at,
        net.check_consistency().is_consistent(),
        tables_digest(&net.tables()),
    );
    check(
        "forty_node",
        observed,
        (358, 1_495_051, true, 0x8b04_5360_ccdc_6dc7),
    );
}

/// The Figure 2 scenario again, with a digest sink attached: the ordered
/// stream of `ProtocolEvent`s is itself part of the golden fingerprint.
/// Two invariants at once — attaching a trace must not perturb the run
/// (delivered/finished_at equal the untraced golden above), and the trace
/// content must be bit-stable under a fixed seed.
#[test]
fn golden_figure2_trace_digest() {
    let space = IdSpace::new(8, 5).unwrap();
    let mut b = SimNetworkBuilder::new(space);
    for s in ["72430", "10353", "62332", "13141", "31701"] {
        b.add_member(space.parse_id(s).unwrap());
    }
    let gateway = space.parse_id("72430").unwrap();
    for s in ["10261", "47051", "00261"] {
        b.add_joiner(space.parse_id(s).unwrap(), gateway, 0);
    }
    let sink = SharedSink::new(DigestTrace::new());
    b.trace(Box::new(sink.clone()));
    let mut net = b.build(UniformDelay::new(1_000, 80_000), 1234);
    let report = net.run();
    assert_eq!(
        (report.delivered, report.finished_at),
        (60, 520_793),
        "tracing perturbed the run itself"
    );
    let digest = *sink.lock();
    assert_eq!(digest.count(), report.traced, "sink missed records");
    let observed = (
        digest.count(),
        report.finished_at,
        net.check_consistency().is_consistent(),
        digest.digest(),
    );
    check(
        "figure2_trace",
        observed,
        (63, 520_793, true, 0xb38d_2be8_4c38_6573),
    );
}

/// §6.1 sequential bootstrap of 24 nodes (b=8, d=5).
#[test]
fn golden_sequential_bootstrap() {
    let space = IdSpace::new(8, 5).unwrap();
    let ids = distinct(space, 24, 17);
    let tables = bootstrap_sequential(space, ProtocolOptions::new(), &ids);
    let observed = (
        tables.len() as u64,
        0,
        check_consistency(space, &tables).is_consistent(),
        tables_digest(&tables),
    );
    check(
        "bootstrap24",
        observed,
        (24, 0, true, 0x171e_f58e_446d_553c),
    );
}

/// Runs the forty-node concurrent-join scenario on `shards` event-queue
/// shards and fingerprints the result.
fn forty_node_digest(shards: usize) -> (u64, u64, bool, u64) {
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct(space, 40, 5);
    let (v, w) = ids.split_at(25);
    let mut b = SimNetworkBuilder::new(space);
    for id in v {
        b.add_member(*id);
    }
    for id in w {
        b.add_joiner(*id, v[0], 0);
    }
    b.shards(shards);
    let mut net = b.build(UniformDelay::new(100, 200_000), 99);
    let report = net.run();
    (
        report.delivered,
        report.finished_at,
        net.check_consistency().is_consistent(),
        tables_digest(&net.tables()),
    )
}

/// Sharded execution is bit-identical to sequential: the forty-node
/// scenario on 2, 4, and 8 shards reproduces the recorded sequential
/// golden exactly (deliveries, finish time, and table digest).
#[test]
fn golden_forty_node_shard_parity() {
    for shards in [2, 4, 8] {
        let observed = forty_node_digest(shards);
        assert_eq!(
            observed,
            (358, 1_495_051, true, 0x8b04_5360_ccdc_6dc7),
            "{shards}-shard run drifted from the sequential golden"
        );
    }
}

/// Batched concurrent bootstrap at n=256: every shard count produces the
/// same tables, pinned by digest against the 1-shard run.
#[test]
fn golden_batched_bootstrap_shard_parity_n256() {
    let space = IdSpace::new(16, 8).unwrap();
    let ids = distinct(space, 256, 7);
    let base = tables_digest(&bootstrap_batched(
        space,
        ProtocolOptions::new(),
        &ids,
        32,
        1,
    ));
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("batched_bootstrap_n256: 0x{base:016x}");
    }
    for shards in [2, 4, 8] {
        let d = tables_digest(&bootstrap_batched(
            space,
            ProtocolOptions::new(),
            &ids,
            32,
            shards,
        ));
        assert_eq!(d, base, "{shards}-shard bootstrap diverged from 1-shard");
    }
}

/// Same parity at n=1024 — large enough that windowed batch scheduling
/// spans many waves. Ignored by default (seconds of debug-mode work);
/// exercised in CI's release-mode determinism step.
#[test]
#[ignore = "slow in debug builds; run with --ignored --release"]
fn golden_batched_bootstrap_shard_parity_n1024() {
    let space = IdSpace::new(16, 8).unwrap();
    let ids = distinct(space, 1024, 11);
    let base = tables_digest(&bootstrap_batched(
        space,
        ProtocolOptions::new(),
        &ids,
        128,
        1,
    ));
    for shards in [2, 4, 8] {
        let d = tables_digest(&bootstrap_batched(
            space,
            ProtocolOptions::new(),
            &ids,
            128,
            shards,
        ));
        assert_eq!(d, base, "{shards}-shard bootstrap diverged from 1-shard");
    }
}

/// 100k-scale smoke test: a 65 536-node batched concurrent bootstrap
/// completes on the sharded core. Release-only (`--ignored`); the
/// acceptance gate for the arena/sharding work.
#[test]
#[ignore = "large-n smoke test; run with --ignored --release"]
fn batched_bootstrap_n65536_completes() {
    let space = IdSpace::new(16, 8).unwrap();
    let ids = distinct(space, 65_536, 13);
    let tables = bootstrap_batched(space, ProtocolOptions::new(), &ids, 2048, 4);
    assert_eq!(tables.len(), 65_536);
}
