//! Tests of the graceful-leave extension: after a leave, the network of
//! remaining nodes must again satisfy Definition 3.8 (with `V' = V \ {x}`),
//! and joins must keep working afterwards.

use hyperring_core::{SimNetworkBuilder, Status};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::UniformDelay;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn distinct_ids(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert(space.random_id(&mut rng));
    }
    set.into_iter().collect()
}

#[test]
fn single_leave_keeps_consistency() {
    let space = IdSpace::new(8, 4).unwrap();
    let ids = distinct_ids(space, 24, 3);
    for victim in [1usize, 7, 23] {
        let mut b = SimNetworkBuilder::new(space);
        for id in &ids {
            b.add_member(*id);
        }
        let mut net = b.build(UniformDelay::new(1_000, 50_000), 5);
        net.run();
        net.depart(&ids[victim]);
        assert_eq!(net.engine(&ids[victim]).status(), Status::Departed);
        let c = net.check_consistency();
        assert!(c.is_consistent(), "victim {}: {c}", ids[victim]);
        assert_eq!(c.nodes(), 23);
    }
}

#[test]
fn sequential_leaves_down_to_one_node() {
    let space = IdSpace::new(4, 5).unwrap();
    let ids = distinct_ids(space, 16, 9);
    let mut b = SimNetworkBuilder::new(space);
    for id in &ids {
        b.add_member(*id);
    }
    let mut net = b.build(UniformDelay::new(500, 30_000), 2);
    net.run();
    // Peel off nodes one by one in a shuffled order; consistency must hold
    // after every single departure.
    let mut order: Vec<usize> = (0..ids.len()).collect();
    let mut rng = StdRng::seed_from_u64(4);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for (step, &v) in order.iter().take(ids.len() - 1).enumerate() {
        net.depart(&ids[v]);
        let c = net.check_consistency();
        assert!(c.is_consistent(), "after leave #{step} of {}: {c}", ids[v]);
    }
    assert_eq!(net.tables().len(), 1);
}

#[test]
fn join_after_leave_works() {
    let space = IdSpace::new(8, 4).unwrap();
    let ids = distinct_ids(space, 20, 11);
    let (members, extra) = ids.split_at(18);
    let mut b = SimNetworkBuilder::new(space);
    for id in members {
        b.add_member(*id);
    }
    // extra[0] joins through members[0] immediately.
    b.add_joiner(extra[0], members[0], 0);
    let mut net = b.build(UniformDelay::new(1_000, 40_000), 8);
    net.run();
    assert!(net.all_in_system());
    assert!(net.check_consistency().is_consistent());

    // Now a member leaves; the network (including the earlier joiner)
    // must stay consistent.
    net.depart(&members[3]);
    let c = net.check_consistency();
    assert!(c.is_consistent(), "{c}");

    // And a fresh network seeded from the survivors accepts another join.
    let survivors = net.tables();
    let mut b2 = SimNetworkBuilder::new(space);
    b2.with_member_tables(survivors);
    b2.add_joiner(extra[1], members[0], 0);
    let mut net2 = b2.build(UniformDelay::new(1_000, 40_000), 13);
    net2.run();
    assert!(net2.all_in_system());
    assert!(net2.check_consistency().is_consistent());
}

#[test]
fn leaver_with_no_substitute_leaves_entries_empty() {
    // Three nodes where the victim is the only one with its last digit:
    // after it leaves, the others' entries must be empty, not dangling.
    let space = IdSpace::new(4, 3).unwrap();
    let a = space.parse_id("000").unwrap();
    let b_ = space.parse_id("111").unwrap();
    let c = space.parse_id("222").unwrap();
    let mut b = SimNetworkBuilder::new(space);
    b.add_member(a).add_member(b_).add_member(c);
    let mut net = b.build(UniformDelay::new(100, 5_000), 1);
    net.run();
    net.depart(&b_);
    let report = net.check_consistency();
    assert!(report.is_consistent(), "{report}");
    // a's (0, 1) entry (suffix "1") must now be empty.
    let ta = net.engine(&a).table();
    assert!(ta.get(0, 1).is_none());
}

#[test]
fn concurrent_nonadjacent_leaves() {
    // Two leavers that are not each other's neighbors may leave in the
    // same wave (their LeaveNoti sets are disjoint from each other).
    let space = IdSpace::new(16, 4).unwrap();
    let ids = distinct_ids(space, 30, 17);
    let mut b = SimNetworkBuilder::new(space);
    for id in &ids {
        b.add_member(*id);
    }
    let mut net = b.build(UniformDelay::new(1_000, 30_000), 3);
    net.run();
    // Pick two victims that do not reference each other.
    let mut victims = Vec::new();
    'outer: for i in 0..ids.len() {
        for j in i + 1..ids.len() {
            let (x, y) = (ids[i], ids[j]);
            let tx = net.engine(&x).table();
            let ty = net.engine(&y).table();
            let x_refs_y =
                tx.iter().any(|(_, _, e)| e.node == y) || tx.reverse_neighbors().contains(&y);
            let y_refs_x =
                ty.iter().any(|(_, _, e)| e.node == x) || ty.reverse_neighbors().contains(&x);
            if !x_refs_y && !y_refs_x {
                victims = vec![x, y];
                break 'outer;
            }
        }
    }
    assert_eq!(victims.len(), 2, "no non-adjacent pair found");
    net.depart(&victims[0]);
    net.depart(&victims[1]);
    let c = net.check_consistency();
    assert!(c.is_consistent(), "{c}");
    assert_eq!(c.nodes(), 28);
}
