//! Mid-run dynamics regressions: failure-detector arming for nodes that
//! enter the system *after* t = 0, and the join-fallback path for
//! joiners whose contact crashes mid-handshake.
//!
//! Both close the same gap from opposite ends. A node only arms its
//! probe timers when it reaches *in_system*, so (a) a node injected into
//! a live network must still end up probing — and evicting — crashed
//! neighbors, and (b) a joiner whose gateway or awaited peer dies
//! mid-join must not strand forever in a pre-`in_system` status where no
//! detector will ever rescue it.

use std::sync::{Arc, Mutex};

use hyperring_core::{
    FailureDetector, ProtocolEvent, ProtocolOptions, RetryPolicy, SimNetworkBuilder, Status,
    TraceRecord, TraceSink,
};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::{ConstantDelay, UniformDelay};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// Counts the fallback trace events of a run.
#[derive(Debug, Default, Clone)]
struct FallbackCounter(Arc<Mutex<(u32, u32)>>);

impl TraceSink for FallbackCounter {
    fn record(&mut self, rec: &TraceRecord) {
        let mut c = self.0.lock().unwrap();
        match rec.event {
            ProtocolEvent::JoinRerouted { .. } => c.0 += 1,
            ProtocolEvent::JoinStranded { .. } => c.1 += 1,
            _ => {}
        }
    }
}

/// A node injected into an already-running network must arm its failure
/// detector on reaching *in_system*: when one of its neighbors later
/// crashes, the late joiner has to notice and evict it on its own.
#[test]
fn live_injected_joiner_detects_crashes() {
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct(space, 12, 11);
    let fd = FailureDetector {
        probe_interval_us: 100_000,
        suspicion_threshold: 3,
        repair: true,
        ..FailureDetector::default()
    };
    let mut b = SimNetworkBuilder::new(space);
    b.options(ProtocolOptions::new().with_failure_detector(fd));
    for id in &ids[..10] {
        b.add_member(*id);
    }
    let mut net = b.build(ConstantDelay(500), 7);
    net.crash_at(&ids[0], 50_000);
    net.run_until(2_000_000);

    // Inject a joiner into the live network after the crash wave settled.
    net.add_joiner_live(ids[10], ids[1]);
    net.run_until(5_000_000);
    assert_eq!(net.engine(&ids[10]).status(), Status::InSystem);

    // Now crash a neighbor the late joiner stores; only the joiner's own
    // detector can evict it from the joiner's table.
    let victim = net
        .engine(&ids[10])
        .table()
        .iter()
        .map(|(_, _, e)| e.node)
        .find(|n| *n != ids[10] && *n != ids[0])
        .unwrap();
    net.crash_at(&victim, 5_500_000);
    net.run_until(12_000_000);
    let still = net
        .engine(&ids[10])
        .table()
        .iter()
        .any(|(_, _, e)| e.node == victim);
    assert!(
        !still,
        "live-injected joiner never evicted crashed neighbor {victim} (FdProbe not armed?)"
    );
}

/// Runs the join-after-crash schedule: a joiner starts at t = 0 and its
/// gateway crashes `crash_at` in. The gateway is the only member sharing
/// the joiner's suffix digit, so it stays load-bearing for the whole
/// handshake (copy source *and* wait target) — a crash after the first
/// copy round leaves the joiner holding live contacts but depending on a
/// dead peer. Returns the joiner's final status and the (rerouted,
/// stranded) trace counts.
fn mid_join_crash(seed: u64, crash_at: u64, fallback: bool) -> (Status, u32, u32) {
    let space = IdSpace::new(4, 6).unwrap();
    let ids = distinct(space, 13, 77);
    let (members, joiner) = (&ids[..12], ids[12]);
    // members[1] = 031220 is the only member with digit(0) == 0, the
    // joiner's (113100) suffix digit — see the doc comment above.
    let gateway = members[1];
    let fd = FailureDetector {
        probe_interval_us: 100_000,
        suspicion_threshold: 3,
        repair: true,
        ..FailureDetector::default()
    };
    // A short retry budget so exhaustion (and with it the fallback)
    // happens well inside the horizon.
    let retry = RetryPolicy {
        timeout_us: 300_000,
        max_retries: 2,
        backoff_pct: 200,
        join_fallback: fallback,
        ..RetryPolicy::default()
    };
    let mut b = SimNetworkBuilder::new(space);
    b.options(
        ProtocolOptions::new()
            .with_failure_detector(fd)
            .with_retry(retry),
    );
    for id in members {
        b.add_member(*id);
    }
    b.add_joiner(joiner, gateway, 0);
    let counter = FallbackCounter::default();
    b.trace(Box::new(counter.clone()));
    let mut net = b.build(UniformDelay::new(1_000, 50_000), seed);
    net.crash_at(&gateway, crash_at);
    net.run_until(20_000_000);
    let (rerouted, stranded) = *counter.0.lock().unwrap();
    (net.engine(&joiner).status(), rerouted, stranded)
}

/// The regression this file exists for: without the fallback, a joiner
/// whose gateway crashes mid-handshake is stuck in a pre-`in_system`
/// status forever (no detector ever arms for it); with
/// [`RetryPolicy::join_fallback`] it reroutes through a contact learned
/// before the crash and completes the join.
#[test]
fn gateway_crash_mid_join_reroutes_with_fallback() {
    // Seeds where the crash verifiably lands while the gateway is still
    // load-bearing: the fallback-off arm strands (pinned below), so the
    // fallback-on arm completing is not vacuous.
    const CRASH_AT: u64 = 60_000;
    let mut rescued = 0;
    for seed in 0..12u64 {
        let (off_status, _, _) = mid_join_crash(seed, CRASH_AT, false);
        let (on_status, rerouted, stranded) = mid_join_crash(seed, CRASH_AT, true);
        if on_status == Status::InSystem {
            if off_status != Status::InSystem {
                // The interesting case: fallback-off strands, fallback-on
                // recovers — and says how in the trace.
                rescued += 1;
                assert!(
                    rerouted > 0,
                    "seed {seed}: fallback-on run recovered without tracing a reroute"
                );
            }
        } else {
            // The only legitimate way to stay stuck with the fallback on
            // is the documented dead end: the gateway died before the
            // joiner learned a single live contact, and the trace must
            // say so. Anything else is a silent strand — the regression.
            assert!(
                stranded > 0,
                "seed {seed}: joiner stuck in {on_status:?} with fallback on \
                 and no JoinStranded trace"
            );
        }
    }
    assert!(
        rescued >= 3,
        "only {rescued}/12 seeds were rescued by the fallback — the crash no longer lands \
         mid-join; retune the schedule so this regression keeps teeth"
    );
}
