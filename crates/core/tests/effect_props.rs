//! Property tests of the effect/event layer: the engine is a pure state
//! machine, so an engine clone fed the exact event sequence the original
//! saw must emit the exact effect sequence the original emitted — no
//! hidden state, no ambient randomness, no dependence on wall clock.

use std::collections::HashMap;

use hyperring_core::{
    build_consistent_tables, check_consistency, Effect, Effects, JoinEngine, Message,
    ProtocolOptions, Status,
};
use hyperring_id::{IdSpace, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// A minimal driver over raw engines: every in-flight `(from, to, msg)`
/// sits in one bag, and a seeded RNG picks which to deliver next — an
/// adversarial-ish interleaving without the full simulator.
struct Driver {
    engines: HashMap<NodeId, JoinEngine>,
    queue: Vec<(NodeId, NodeId, Message)>,
    rng: StdRng,
    /// Node whose deliveries and emitted effects are being recorded.
    watch: NodeId,
    /// `(from, msg, debug-of-effects)` for every delivery to `watch`.
    log: Vec<(NodeId, Message, String)>,
}

impl Driver {
    fn new(space: IdSpace, members: &[NodeId], joiners: &[(NodeId, NodeId)], seed: u64) -> Self {
        let opts = ProtocolOptions::new();
        let mut engines = HashMap::new();
        for t in build_consistent_tables(space, members) {
            engines.insert(t.owner(), JoinEngine::new_member(space, opts, t));
        }
        let mut queue = Vec::new();
        let mut out = Effects::new();
        for &(id, gw) in joiners {
            let mut e = JoinEngine::new_joiner(space, opts, id);
            e.start_join(gw, &mut out);
            for (to, msg) in out.drain_sends() {
                queue.push((id, to, msg));
            }
            engines.insert(id, e);
        }
        Driver {
            engines,
            queue,
            rng: StdRng::seed_from_u64(seed),
            watch: joiners[0].0,
            log: Vec::new(),
        }
    }

    /// Delivers one randomly chosen in-flight message. Returns false once
    /// quiescent.
    fn step(&mut self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        let i = self.rng.gen_range(0..self.queue.len());
        let (from, to, msg) = self.queue.swap_remove(i);
        let mut out = Effects::new();
        let engine = self.engines.get_mut(&to).expect("known destination");
        engine.handle(from, msg.clone(), &mut out);
        let effects: Vec<Effect> = out.drain().collect();
        if to == self.watch {
            self.log.push((from, msg, format!("{effects:?}")));
        }
        for eff in effects {
            if let Effect::Send { to: dest, msg } = eff {
                self.queue.push((to, dest, msg));
            }
        }
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Fork one joiner's engine mid-run by cloning it, let the original
    /// finish, then replay the recorded post-fork event sequence into the
    /// clone: the effect streams must match byte for byte, and the clone
    /// must land in the same terminal state.
    #[test]
    fn identical_events_yield_identical_effects(
        seed in 0u64..100_000,
        fork_after in 0usize..30,
    ) {
        let space = IdSpace::new(4, 4).unwrap();
        let ids = distinct(space, 9, seed.rotate_left(17) | 1);
        let (v, w) = ids.split_at(6);
        let joiners: Vec<(NodeId, NodeId)> = w.iter().map(|&id| (id, v[0])).collect();
        let mut driver = Driver::new(space, v, &joiners, seed);

        for _ in 0..fork_after {
            if !driver.step() {
                break;
            }
        }
        let forked = driver.engines[&driver.watch].clone();
        driver.log.clear();
        let mut steps = 0u32;
        while driver.step() {
            steps += 1;
            prop_assert!(steps < 100_000, "driver failed to quiesce");
        }

        // The full run must itself have converged (sanity on the driver).
        for e in driver.engines.values() {
            prop_assert_eq!(e.status(), Status::InSystem);
        }
        let tables: Vec<_> = driver.engines.values().map(|e| e.table().clone()).collect();
        prop_assert!(check_consistency(space, &tables).is_consistent());

        // Replay: same events in, same effects out.
        let mut clone = forked;
        for (from, msg, expected) in &driver.log {
            let mut out = Effects::new();
            clone.handle(*from, msg.clone(), &mut out);
            let effects: Vec<Effect> = out.drain().collect();
            prop_assert_eq!(&format!("{effects:?}"), expected);
        }
        let original = &driver.engines[&driver.watch];
        prop_assert_eq!(clone.status(), original.status());
        let fingerprint = |e: &JoinEngine| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            e.hash_state(&mut h);
            std::hash::Hasher::finish(&h)
        };
        prop_assert_eq!(fingerprint(&clone), fingerprint(original));
    }
}
