//! Internet-like router topologies and latency models.
//!
//! The paper's simulations run on transit-stub topologies produced by the
//! GT-ITM package (Calvert, Doar & Zegura) with 8320 routers, to which
//! end-hosts are attached at random. GT-ITM itself is a C program; this crate
//! re-implements the same *model* from scratch:
//!
//! * [`Graph`] — weighted undirected router graphs with shortest-path
//!   queries ([`dijkstra`], [`floyd_warshall`]);
//! * [`waxman`] — the Waxman random-graph model GT-ITM uses inside each
//!   domain;
//! * [`TransitStub`] — the hierarchical transit/stub generator, with exact
//!   hierarchical shortest-path evaluation so host-to-host latencies over an
//!   8320-router graph can be queried in O(1) after a cheap precomputation;
//! * [`HostMap`] — attachment of end-hosts (overlay nodes) to routers and a
//!   host-to-host [`host_latency`](TransitStub::host_latency) query.
//!
//! Latencies are abstract microseconds (`u32` per edge, `u64` per path).
//!
//! # Examples
//!
//! ```
//! use hyperring_topology::{TransitStub, TransitStubConfig, HostMap};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let ts = TransitStub::generate(&TransitStubConfig::small(), &mut rng);
//! let hosts = HostMap::attach(&ts, 64, &mut rng);
//! let l = ts.host_latency(&hosts, 0, 1);
//! assert!(l > 0);
//! assert_eq!(l, ts.host_latency(&hosts, 1, 0)); // symmetric
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod hosts;
mod shortest_path;
mod transit_stub;
mod waxman;

pub use graph::Graph;
pub use hosts::HostMap;
pub use shortest_path::{dijkstra, dijkstra_multi, floyd_warshall};
pub use transit_stub::{TransitStub, TransitStubConfig};
pub use waxman::{waxman, WaxmanConfig};
