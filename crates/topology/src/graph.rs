use std::collections::VecDeque;

/// A weighted undirected graph over routers `0..n`.
///
/// Edge weights are latencies in microseconds. Parallel edges are collapsed
/// to the minimum weight on insertion; self-loops are rejected.
///
/// # Examples
///
/// ```
/// use hyperring_topology::Graph;
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 10);
/// g.add_edge(1, 2, 5);
/// assert!(g.is_connected());
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(u32, u32)>>, // (neighbor, weight)
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds an undirected edge of weight `w` (µs). If the edge already
    /// exists, keeps the smaller weight.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range vertices, or zero weight (the
    /// shortest-path code treats 0 as "same router").
    pub fn add_edge(&mut self, a: u32, b: u32, w: u32) {
        assert!(a != b, "self-loop at {a}");
        assert!(w > 0, "zero-weight edge {a}-{b}");
        let n = self.adj.len() as u32;
        assert!(a < n && b < n, "edge {a}-{b} out of range for {n} vertices");
        if let Some(slot) = self.adj[a as usize].iter_mut().find(|(v, _)| *v == b) {
            slot.1 = slot.1.min(w);
            let s2 = self.adj[b as usize]
                .iter_mut()
                .find(|(v, _)| *v == a)
                .expect("undirected edge stored asymmetrically");
            s2.1 = s2.1.min(w);
            return;
        }
        self.adj[a as usize].push((b, w));
        self.adj[b as usize].push((a, w));
        self.edges += 1;
    }

    /// Whether an edge between `a` and `b` exists.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.adj
            .get(a as usize)
            .is_some_and(|v| v.iter().any(|(x, _)| *x == b))
    }

    /// Neighbors of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[(u32, u32)] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Whether the graph is connected (vacuously true for `n <= 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &(u, _) in self.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    queue.push_back(u);
                }
            }
        }
        count == n
    }

    /// Connected components as vertex lists.
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.vertex_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n as u32 {
            if seen[start as usize] {
                continue;
            }
            let mut comp = vec![start];
            seen[start as usize] = true;
            let mut queue = VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &(u, _) in self.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        comp.push(u);
                        queue.push_back(u);
                    }
                }
            }
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(!Graph::new(2).is_connected());
    }

    #[test]
    fn add_edge_collapses_parallel_edges() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 10);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 0, 20);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[(1, 5)]);
        assert_eq!(g.neighbors(1), &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        Graph::new(2).add_edge(1, 1, 3);
    }

    #[test]
    #[should_panic(expected = "zero-weight")]
    fn zero_weight_rejected() {
        Graph::new(2).add_edge(0, 1, 0);
    }

    #[test]
    fn components_partition_vertices() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let mut comps = g.components();
        comps.iter_mut().for_each(|c| c.sort_unstable());
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert!(!g.is_connected());
        g.add_edge(1, 2, 1);
        g.add_edge(3, 4, 1);
        assert!(g.is_connected());
    }
}
