use rand::Rng;

use crate::TransitStub;

/// Attachment of end-hosts (overlay nodes) to routers.
///
/// The paper attaches 4096 or 8192 end-hosts to the routers of its GT-ITM
/// topology at random. Following GT-ITM practice, hosts attach to *stub*
/// routers, each through an access link with a small random latency.
///
/// # Examples
///
/// ```
/// use hyperring_topology::{HostMap, TransitStub, TransitStubConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ts = TransitStub::generate(&TransitStubConfig::small(), &mut rng);
/// let hosts = HostMap::attach(&ts, 128, &mut rng);
/// assert_eq!(hosts.len(), 128);
/// assert!(ts.is_stub(hosts.router_of(0)));
/// ```
#[derive(Debug, Clone)]
pub struct HostMap {
    router: Vec<u32>,
    access: Vec<u32>,
}

/// Access-link latency range in microseconds (0.1–1 ms).
const ACCESS_RANGE: (u32, u32) = (100, 1000);

impl HostMap {
    /// Attaches `n` hosts to random stub routers of `ts`.
    ///
    /// Multiple hosts may share a router (the paper attaches 8192 hosts to
    /// 8320 routers, so collisions are expected).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no stub routers.
    pub fn attach<R: Rng + ?Sized>(ts: &TransitStub, n: usize, rng: &mut R) -> Self {
        let stubs: Vec<u32> = ts.stub_routers().collect();
        assert!(!stubs.is_empty(), "topology has no stub routers");
        let mut router = Vec::with_capacity(n);
        let mut access = Vec::with_capacity(n);
        for _ in 0..n {
            router.push(stubs[rng.gen_range(0..stubs.len())]);
            access.push(rng.gen_range(ACCESS_RANGE.0..=ACCESS_RANGE.1));
        }
        HostMap { router, access }
    }

    /// Number of hosts.
    #[inline]
    pub fn len(&self) -> usize {
        self.router.len()
    }

    /// Whether the map has no hosts.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.router.is_empty()
    }

    /// Router the host is attached to.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    #[inline]
    pub fn router_of(&self, host: usize) -> u32 {
        self.router[host]
    }

    /// Access-link latency of the host in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    #[inline]
    pub fn access_latency(&self, host: usize) -> u32 {
        self.access[host]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransitStubConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hosts_attach_to_stub_routers_only() {
        let mut rng = StdRng::seed_from_u64(10);
        let ts = TransitStub::generate(&TransitStubConfig::small(), &mut rng);
        let hosts = HostMap::attach(&ts, 500, &mut rng);
        for h in 0..hosts.len() {
            assert!(ts.is_stub(hosts.router_of(h)));
            let a = hosts.access_latency(h);
            assert!((ACCESS_RANGE.0..=ACCESS_RANGE.1).contains(&a));
        }
    }

    #[test]
    fn host_latency_composition() {
        let mut rng = StdRng::seed_from_u64(10);
        let ts = TransitStub::generate(&TransitStubConfig::small(), &mut rng);
        let hosts = HostMap::attach(&ts, 16, &mut rng);
        for h1 in 0..16 {
            for h2 in 0..16 {
                let l = ts.host_latency(&hosts, h1, h2);
                assert_eq!(l, ts.host_latency(&hosts, h2, h1));
                if h1 == h2 {
                    assert_eq!(l, 0);
                } else {
                    let expected = hosts.access_latency(h1) as u64
                        + ts.router_latency(hosts.router_of(h1), hosts.router_of(h2))
                        + hosts.access_latency(h2) as u64;
                    assert_eq!(l, expected);
                }
            }
        }
    }

    #[test]
    fn empty_host_map() {
        let mut rng = StdRng::seed_from_u64(10);
        let ts = TransitStub::generate(&TransitStubConfig::small(), &mut rng);
        let hosts = HostMap::attach(&ts, 0, &mut rng);
        assert!(hosts.is_empty());
        assert_eq!(hosts.len(), 0);
    }
}
