use rand::Rng;

use crate::Graph;

/// Parameters of the Waxman random-graph model.
///
/// Vertices are placed uniformly at random on a `scale × scale` grid and an
/// edge `(u, v)` is created with probability
/// `alpha * exp(-dist(u, v) / (beta * L))`, where `L` is the grid diagonal —
/// the model GT-ITM uses inside transit and stub domains. Edge weight is the
/// Euclidean distance scaled by `weight_per_unit`, with a floor of 1 µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxmanConfig {
    /// Edge-density parameter `alpha` in `(0, 1]`.
    pub alpha: f64,
    /// Distance-decay parameter `beta` in `(0, 1]`.
    pub beta: f64,
    /// Side of the placement grid.
    pub scale: f64,
    /// Microseconds of latency per grid distance unit.
    pub weight_per_unit: f64,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        WaxmanConfig {
            alpha: 0.25,
            beta: 0.2,
            scale: 100.0,
            weight_per_unit: 10.0,
        }
    }
}

/// Generates a *connected* Waxman graph with `n` vertices.
///
/// Connectivity is ensured the way GT-ITM does in practice: after the random
/// edge pass, components are stitched together with an edge between their
/// closest vertex pair.
///
/// # Panics
///
/// Panics if `alpha` or `beta` are outside `(0, 1]`.
pub fn waxman<R: Rng + ?Sized>(n: usize, cfg: &WaxmanConfig, rng: &mut R) -> Graph {
    assert!(
        cfg.alpha > 0.0 && cfg.alpha <= 1.0,
        "alpha {} not in (0, 1]",
        cfg.alpha
    );
    assert!(
        cfg.beta > 0.0 && cfg.beta <= 1.0,
        "beta {} not in (0, 1]",
        cfg.beta
    );
    let mut g = Graph::new(n);
    if n <= 1 {
        return g;
    }
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>() * cfg.scale, rng.gen::<f64>() * cfg.scale))
        .collect();
    let l = (2.0f64).sqrt() * cfg.scale;
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pts[a].0 - pts[b].0;
        let dy = pts[a].1 - pts[b].1;
        (dx * dx + dy * dy).sqrt()
    };
    let weight = |d: f64| -> u32 { (d * cfg.weight_per_unit).max(1.0) as u32 };

    for a in 0..n {
        for b in a + 1..n {
            let d = dist(a, b);
            let p = cfg.alpha * (-d / (cfg.beta * l)).exp();
            if rng.gen::<f64>() < p {
                g.add_edge(a as u32, b as u32, weight(d));
            }
        }
    }

    // Stitch components: connect each non-root component to the root
    // component through the closest cross pair.
    loop {
        let comps = g.components();
        if comps.len() == 1 {
            break;
        }
        let root = &comps[0];
        let other = &comps[1];
        let mut best: Option<(u32, u32, f64)> = None;
        for &a in root {
            for &b in other {
                let d = dist(a as usize, b as usize);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        let (a, b, d) = best.expect("two non-empty components");
        g.add_edge(a, b, weight(d));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_graphs_are_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 2, 3, 10, 50, 200] {
            let g = waxman(n, &WaxmanConfig::default(), &mut rng);
            assert_eq!(g.vertex_count(), n);
            assert!(g.is_connected(), "n = {n}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = waxman(40, &WaxmanConfig::default(), &mut StdRng::seed_from_u64(77));
        let g2 = waxman(40, &WaxmanConfig::default(), &mut StdRng::seed_from_u64(77));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in 0..40u32 {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn higher_alpha_gives_denser_graphs() {
        let sparse_cfg = WaxmanConfig {
            alpha: 0.05,
            ..WaxmanConfig::default()
        };
        let dense_cfg = WaxmanConfig {
            alpha: 0.9,
            ..WaxmanConfig::default()
        };
        let sparse = waxman(100, &sparse_cfg, &mut StdRng::seed_from_u64(3));
        let dense = waxman(100, &dense_cfg, &mut StdRng::seed_from_u64(3));
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let cfg = WaxmanConfig {
            alpha: 0.0,
            ..WaxmanConfig::default()
        };
        waxman(5, &cfg, &mut StdRng::seed_from_u64(0));
    }
}
