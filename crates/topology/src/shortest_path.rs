use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rayon::prelude::*;

use crate::Graph;

/// Single-source shortest path distances (Dijkstra).
///
/// Returns `dist[v]` in microseconds; unreachable vertices get `u64::MAX`.
///
/// # Examples
///
/// ```
/// use hyperring_topology::{dijkstra, Graph};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 10);
/// g.add_edge(1, 2, 5);
/// g.add_edge(0, 2, 100);
/// assert_eq!(dijkstra(&g, 0), vec![0, 10, 15]);
/// ```
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn dijkstra(g: &Graph, src: u32) -> Vec<u64> {
    let n = g.vertex_count();
    assert!((src as usize) < n, "source {src} out of range");
    let mut dist = vec![u64::MAX; n];
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &(u, w) in g.neighbors(v) {
            let nd = d + w as u64;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Batch single-source shortest paths: one [`dijkstra`] row per source,
/// fanned across cores.
///
/// The sources are independent, so the rows are computed in parallel;
/// `rows[k]` is exactly `dijkstra(g, sources[k])` regardless of thread
/// count. This is the building block the delay-matrix cache uses to fill
/// many rows at once instead of paying one traversal per lookup miss.
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn dijkstra_multi(g: &Graph, sources: &[u32]) -> Vec<Vec<u64>> {
    sources.par_iter().map(|&s| dijkstra(g, s)).collect()
}

/// All-pairs shortest paths (Floyd–Warshall), for small graphs.
///
/// Returns a row-major `n × n` matrix; unreachable pairs get `u64::MAX`.
/// Intended for cross-checking and for intra-domain matrices (tens of
/// vertices), not for full 8000-router graphs.
pub fn floyd_warshall(g: &Graph) -> Vec<u64> {
    let n = g.vertex_count();
    let mut dist = vec![u64::MAX; n * n];
    for v in 0..n {
        dist[v * n + v] = 0;
    }
    for v in 0..n as u32 {
        for &(u, w) in g.neighbors(v) {
            let slot = &mut dist[v as usize * n + u as usize];
            *slot = (*slot).min(w as u64);
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if dik == u64::MAX {
                continue;
            }
            for j in 0..n {
                let dkj = dist[k * n + j];
                if dkj == u64::MAX {
                    continue;
                }
                let via = dik + dkj;
                if via < dist[i * n + j] {
                    dist[i * n + j] = via;
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i as u32, i as u32 + 1, (i + 1) as u32);
        }
        g
    }

    #[test]
    fn dijkstra_on_line() {
        let g = line_graph(5);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 1, 3, 6, 10]);
        let d = dijkstra(&g, 4);
        assert_eq!(d, vec![10, 9, 7, 4, 0]);
    }

    #[test]
    fn dijkstra_unreachable_is_max() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], u64::MAX);
    }

    #[test]
    fn dijkstra_prefers_cheaper_detour() {
        let mut g = Graph::new(4);
        g.add_edge(0, 3, 100);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 10);
        g.add_edge(2, 3, 10);
        assert_eq!(dijkstra(&g, 0)[3], 30);
    }

    #[test]
    fn dijkstra_multi_matches_single_source_rows() {
        let g = line_graph(6);
        let sources = [0u32, 5, 2, 2];
        let rows = dijkstra_multi(&g, &sources);
        assert_eq!(rows.len(), 4);
        for (k, &s) in sources.iter().enumerate() {
            assert_eq!(rows[k], dijkstra(&g, s), "row for source {s}");
        }
    }

    #[test]
    fn floyd_warshall_matches_dijkstra_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(1234);
        for trial in 0..10 {
            let n = rng.gen_range(2..30usize);
            let mut g = Graph::new(n);
            // Random connected-ish graph: spanning chain + random extras.
            for i in 1..n {
                g.add_edge(i as u32, rng.gen_range(0..i) as u32, rng.gen_range(1..100));
            }
            for _ in 0..n {
                let a = rng.gen_range(0..n) as u32;
                let b = rng.gen_range(0..n) as u32;
                if a != b {
                    g.add_edge(a, b, rng.gen_range(1..100));
                }
            }
            let fw = floyd_warshall(&g);
            for src in 0..n as u32 {
                let d = dijkstra(&g, src);
                for v in 0..n {
                    assert_eq!(
                        d[v],
                        fw[src as usize * n + v],
                        "trial {trial} src {src} dst {v}"
                    );
                }
            }
        }
    }
}
