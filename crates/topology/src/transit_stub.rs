use std::collections::HashMap;

use rand::Rng;

use crate::{dijkstra_multi, floyd_warshall, waxman, Graph, HostMap, WaxmanConfig};

/// Parameters of the GT-ITM-style transit-stub generator.
///
/// A topology has `transit_domains` top-level domains of `transit_nodes`
/// routers each; every transit router sponsors `stubs_per_transit_node` stub
/// domains of `stub_nodes` routers, each stub domain attached to its transit
/// router through a single gateway edge. Intra-domain structure is Waxman.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitStubConfig {
    /// Number of transit domains `T`.
    pub transit_domains: usize,
    /// Routers per transit domain `Nt`.
    pub transit_nodes: usize,
    /// Stub domains per transit router `S`.
    pub stubs_per_transit_node: usize,
    /// Routers per stub domain `Ns`.
    pub stub_nodes: usize,
    /// Waxman parameters inside transit domains (long, fat links).
    pub transit_waxman: WaxmanConfig,
    /// Waxman parameters inside stub domains (short links).
    pub stub_waxman: WaxmanConfig,
    /// Weight range (µs) for transit-domain-to-transit-domain edges.
    pub interdomain_weight: (u32, u32),
    /// Weight range (µs) for transit-router-to-stub-gateway edges.
    pub transit_stub_weight: (u32, u32),
}

impl TransitStubConfig {
    /// The full-scale configuration used to regenerate the paper's Figure
    /// 15(b): exactly 8320 routers, as in the paper's GT-ITM topology
    /// (4 transit domains × 16 routers, 3 stub domains per transit router,
    /// 43 routers per stub domain: 64 + 64·3·43 = 8320).
    pub fn paper_8320() -> Self {
        TransitStubConfig {
            transit_domains: 4,
            transit_nodes: 16,
            stubs_per_transit_node: 3,
            stub_nodes: 43,
            transit_waxman: WaxmanConfig {
                alpha: 0.6,
                beta: 0.4,
                scale: 100.0,
                weight_per_unit: 200.0, // up to ~28 ms across a transit domain
            },
            stub_waxman: WaxmanConfig {
                alpha: 0.42,
                beta: 0.4,
                scale: 100.0,
                weight_per_unit: 20.0, // up to ~2.8 ms inside a stub domain
            },
            interdomain_weight: (20_000, 60_000), // 20–60 ms
            transit_stub_weight: (2_000, 10_000), // 2–10 ms
        }
    }

    /// A small configuration (72 routers) for tests and examples.
    pub fn small() -> Self {
        TransitStubConfig {
            transit_domains: 2,
            transit_nodes: 4,
            stubs_per_transit_node: 2,
            stub_nodes: 4,
            ..Self::paper_8320()
        }
    }

    /// Total number of routers the configuration produces.
    pub fn router_count(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes;
        transit + transit * self.stubs_per_transit_node * self.stub_nodes
    }
}

#[derive(Debug, Clone)]
struct StubDomain {
    /// First router id of this domain (routers are contiguous).
    first: u32,
    /// Number of routers in the domain.
    size: u32,
    /// Transit router the domain hangs off.
    transit_attach: u32,
    /// The domain router holding the gateway edge.
    gateway: u32,
    /// Weight of the gateway edge (µs).
    gateway_weight: u32,
    /// Intra-domain all-pairs distances, row-major over local indices.
    apsp: Vec<u64>,
}

impl StubDomain {
    #[inline]
    fn local(&self, router: u32) -> usize {
        debug_assert!(router >= self.first && router < self.first + self.size);
        (router - self.first) as usize
    }

    #[inline]
    fn dist(&self, a: u32, b: u32) -> u64 {
        self.apsp[self.local(a) * self.size as usize + self.local(b)]
    }

    /// Distance from `a` to the transit attachment, through the gateway.
    #[inline]
    fn dist_to_transit(&self, a: u32) -> u64 {
        self.dist(a, self.gateway) + self.gateway_weight as u64
    }
}

/// A generated transit-stub router topology with O(1) exact shortest-path
/// queries between any two routers.
///
/// Exactness relies on a structural property the generator enforces: each
/// stub domain attaches to the transit core through a *single* gateway edge,
/// so every inter-domain path must traverse that edge and hierarchical
/// decomposition (intra-stub APSP + transit-core distances) is exact. A test
/// cross-checks this against full-graph Dijkstra.
#[derive(Debug, Clone)]
pub struct TransitStub {
    graph: Graph,
    transit_count: u32,
    /// Distances between transit routers, row-major `transit_count²`.
    transit_dist: Vec<u64>,
    /// Stub domain of each router (`None` for transit routers).
    domain_of: Vec<Option<u32>>,
    domains: Vec<StubDomain>,
}

impl TransitStub {
    /// Generates a topology from `cfg` using `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `cfg` is zero.
    pub fn generate<R: Rng + ?Sized>(cfg: &TransitStubConfig, rng: &mut R) -> Self {
        assert!(
            cfg.transit_domains > 0
                && cfg.transit_nodes > 0
                && cfg.stubs_per_transit_node > 0
                && cfg.stub_nodes > 0,
            "all transit-stub dimensions must be positive"
        );
        let transit_count = (cfg.transit_domains * cfg.transit_nodes) as u32;
        let total = cfg.router_count();
        let mut graph = Graph::new(total);

        // 1. Intra-transit-domain Waxman graphs.
        for dom in 0..cfg.transit_domains {
            let base = (dom * cfg.transit_nodes) as u32;
            let sub = waxman(cfg.transit_nodes, &cfg.transit_waxman, rng);
            for v in 0..cfg.transit_nodes as u32 {
                for &(u, w) in sub.neighbors(v) {
                    if v < u {
                        graph.add_edge(base + v, base + u, w);
                    }
                }
            }
        }

        // 2. Inter-domain edges: a random spanning chain over domains plus a
        //    sprinkle of extra edges, each realized between random routers of
        //    the two domains.
        let inter = |graph: &mut Graph, rng: &mut R, d1: usize, d2: usize| {
            let a = (d1 * cfg.transit_nodes) as u32 + rng.gen_range(0..cfg.transit_nodes) as u32;
            let b = (d2 * cfg.transit_nodes) as u32 + rng.gen_range(0..cfg.transit_nodes) as u32;
            let w = rng.gen_range(cfg.interdomain_weight.0..=cfg.interdomain_weight.1);
            graph.add_edge(a, b, w);
        };
        for d in 1..cfg.transit_domains {
            inter(&mut graph, rng, d - 1, d);
        }
        for d1 in 0..cfg.transit_domains {
            for d2 in d1 + 2..cfg.transit_domains {
                if rng.gen::<f64>() < 0.5 {
                    inter(&mut graph, rng, d1, d2);
                }
            }
        }

        // 3. Stub domains, each a Waxman graph plus one gateway edge.
        let mut domains = Vec::new();
        let mut domain_of: Vec<Option<u32>> = vec![None; total];
        let mut next = transit_count;
        for t in 0..transit_count {
            for _ in 0..cfg.stubs_per_transit_node {
                let first = next;
                next += cfg.stub_nodes as u32;
                let sub = waxman(cfg.stub_nodes, &cfg.stub_waxman, rng);
                for v in 0..cfg.stub_nodes as u32 {
                    for &(u, w) in sub.neighbors(v) {
                        if v < u {
                            graph.add_edge(first + v, first + u, w);
                        }
                    }
                }
                let gateway = first + rng.gen_range(0..cfg.stub_nodes) as u32;
                let gw_w = rng.gen_range(cfg.transit_stub_weight.0..=cfg.transit_stub_weight.1);
                graph.add_edge(gateway, t, gw_w);

                let apsp = floyd_warshall(&sub);
                let idx = domains.len() as u32;
                for r in first..next {
                    domain_of[r as usize] = Some(idx);
                }
                domains.push(StubDomain {
                    first,
                    size: cfg.stub_nodes as u32,
                    transit_attach: t,
                    gateway,
                    gateway_weight: gw_w,
                    apsp,
                });
            }
        }
        debug_assert_eq!(next as usize, total);
        debug_assert!(graph.is_connected());

        // 4. Transit-core distance matrix: one full-graph Dijkstra per
        //    transit router, batched so independent sources run on
        //    separate cores.
        let sources: Vec<u32> = (0..transit_count).collect();
        let rows = dijkstra_multi(&graph, &sources);
        let mut transit_dist = vec![0u64; (transit_count * transit_count) as usize];
        for (t, d) in rows.iter().enumerate() {
            for u in 0..transit_count as usize {
                transit_dist[t * transit_count as usize + u] = d[u];
            }
        }

        TransitStub {
            graph,
            transit_count,
            transit_dist,
            domain_of,
            domains,
        }
    }

    /// The underlying router graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Total number of routers.
    pub fn router_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of transit routers (they occupy ids `0..transit_count`).
    pub fn transit_count(&self) -> u32 {
        self.transit_count
    }

    /// Whether `router` is a stub router.
    pub fn is_stub(&self, router: u32) -> bool {
        self.domain_of[router as usize].is_some()
    }

    #[inline]
    fn tdist(&self, a: u32, b: u32) -> u64 {
        self.transit_dist[(a * self.transit_count + b) as usize]
    }

    /// Exact shortest-path latency between two routers, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if either router id is out of range.
    pub fn router_latency(&self, a: u32, b: u32) -> u64 {
        assert!(
            (a as usize) < self.router_count() && (b as usize) < self.router_count(),
            "router out of range"
        );
        if a == b {
            return 0;
        }
        match (self.domain_of[a as usize], self.domain_of[b as usize]) {
            (None, None) => self.tdist(a, b),
            (Some(da), None) => {
                let da = &self.domains[da as usize];
                da.dist_to_transit(a) + self.tdist(da.transit_attach, b)
            }
            (None, Some(db)) => {
                let db = &self.domains[db as usize];
                self.tdist(a, db.transit_attach) + db.dist_to_transit(b)
            }
            (Some(da), Some(db)) if da == db => self.domains[da as usize].dist(a, b),
            (Some(da), Some(db)) => {
                let da = &self.domains[da as usize];
                let db = &self.domains[db as usize];
                da.dist_to_transit(a)
                    + self.tdist(da.transit_attach, db.transit_attach)
                    + db.dist_to_transit(b)
            }
        }
    }

    /// End-to-end latency between two hosts, including both access links.
    ///
    /// # Panics
    ///
    /// Panics if either host id is out of range for `hosts`.
    pub fn host_latency(&self, hosts: &HostMap, h1: usize, h2: usize) -> u64 {
        if h1 == h2 {
            return 0;
        }
        let r1 = hosts.router_of(h1);
        let r2 = hosts.router_of(h2);
        hosts.access_latency(h1) as u64
            + self.router_latency(r1, r2)
            + hosts.access_latency(h2) as u64
    }

    /// Stub router ids (hosts attach to these).
    pub fn stub_routers(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.router_count() as u32).filter(|&r| self.is_stub(r))
    }

    /// Exact direct (shortest-path) host-to-host latency rows for the
    /// given source hosts: `rows[i][h]` is the end-to-end latency from
    /// `sources[i]` to host `h`, including both access links (0 on the
    /// diagonal, as [`host_latency`](Self::host_latency)).
    ///
    /// One [`dijkstra_multi`] sweep over the deduplicated attachment
    /// routers serves every source host — the lookup-storm experiment's
    /// stretch denominator (and its per-hop routed-delay numerator) in a
    /// single pass, instead of `sources × hosts` hierarchical queries.
    ///
    /// # Panics
    ///
    /// Panics if a source host id is out of range for `hosts`.
    pub fn host_direct_rows(&self, hosts: &HostMap, sources: &[usize]) -> Vec<Vec<u64>> {
        // Dedupe the attachment routers; many hosts share a stub router.
        let mut router_slot: HashMap<u32, usize> = HashMap::new();
        let mut routers: Vec<u32> = Vec::new();
        for &s in sources {
            let r = hosts.router_of(s);
            router_slot.entry(r).or_insert_with(|| {
                routers.push(r);
                routers.len() - 1
            });
        }
        let router_rows = dijkstra_multi(&self.graph, &routers);
        sources
            .iter()
            .map(|&s| {
                let row = &router_rows[router_slot[&hosts.router_of(s)]];
                let s_access = hosts.access_latency(s) as u64;
                (0..hosts.len())
                    .map(|h| {
                        if h == s {
                            0
                        } else {
                            s_access
                                + row[hosts.router_of(h) as usize]
                                + hosts.access_latency(h) as u64
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_config_has_8320_routers() {
        assert_eq!(TransitStubConfig::paper_8320().router_count(), 8320);
    }

    #[test]
    fn generated_topology_is_connected_with_expected_counts() {
        let cfg = TransitStubConfig::small();
        let ts = TransitStub::generate(&cfg, &mut StdRng::seed_from_u64(11));
        assert_eq!(ts.router_count(), cfg.router_count());
        assert_eq!(ts.transit_count(), 8);
        assert!(ts.graph().is_connected());
        assert_eq!(ts.stub_routers().count(), 64);
    }

    #[test]
    fn hierarchical_latency_matches_full_dijkstra() {
        let cfg = TransitStubConfig::small();
        let ts = TransitStub::generate(&cfg, &mut StdRng::seed_from_u64(21));
        let n = ts.router_count();
        for src in 0..n as u32 {
            let d = dijkstra(ts.graph(), src);
            for dst in 0..n as u32 {
                assert_eq!(
                    ts.router_latency(src, dst),
                    d[dst as usize],
                    "src {src} dst {dst}"
                );
            }
        }
    }

    #[test]
    fn latency_is_symmetric_and_zero_on_diagonal() {
        let ts = TransitStub::generate(&TransitStubConfig::small(), &mut StdRng::seed_from_u64(2));
        for a in (0..ts.router_count() as u32).step_by(7) {
            assert_eq!(ts.router_latency(a, a), 0);
            for b in (0..ts.router_count() as u32).step_by(5) {
                assert_eq!(ts.router_latency(a, b), ts.router_latency(b, a));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = TransitStub::generate(&TransitStubConfig::small(), &mut StdRng::seed_from_u64(4));
        let b = TransitStub::generate(&TransitStubConfig::small(), &mut StdRng::seed_from_u64(4));
        assert_eq!(a.router_latency(3, 50), b.router_latency(3, 50));
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }

    #[test]
    fn host_direct_rows_match_pairwise_host_latency() {
        let cfg = TransitStubConfig::small();
        let ts = TransitStub::generate(&cfg, &mut StdRng::seed_from_u64(31));
        let mut rng = StdRng::seed_from_u64(32);
        let hosts = HostMap::attach(&ts, 20, &mut rng);
        let sources: Vec<usize> = vec![0, 3, 7, 19];
        let rows = ts.host_direct_rows(&hosts, &sources);
        assert_eq!(rows.len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rows[i].len(), hosts.len());
            for (h, &row) in rows[i].iter().enumerate() {
                assert_eq!(row, ts.host_latency(&hosts, s, h), "src {s} dst {h}");
            }
        }
    }

    #[test]
    fn stub_to_stub_goes_through_transit() {
        // Latency between stubs of different transit routers must be at
        // least the two gateway weights.
        let cfg = TransitStubConfig::small();
        let ts = TransitStub::generate(&cfg, &mut StdRng::seed_from_u64(8));
        let stubs: Vec<u32> = ts.stub_routers().collect();
        let (a, b) = (stubs[0], stubs[stubs.len() - 1]);
        let lat = ts.router_latency(a, b);
        assert!(
            lat >= 2 * cfg.transit_stub_weight.0 as u64,
            "latency {lat} suspiciously small"
        );
    }
}
