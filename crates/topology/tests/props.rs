//! Property-based tests of the transit-stub generator and its O(1)
//! hierarchical shortest-path evaluation.

use hyperring_topology::{dijkstra, HostMap, TransitStub, TransitStubConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_config() -> impl Strategy<Value = TransitStubConfig> {
    (1usize..=3, 2usize..=5, 1usize..=3, 2usize..=6).prop_map(|(t, nt, s, ns)| TransitStubConfig {
        transit_domains: t,
        transit_nodes: nt,
        stubs_per_transit_node: s,
        stub_nodes: ns,
        ..TransitStubConfig::small()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn generated_topology_is_well_formed(cfg in arb_config(), seed in 0u64..1_000) {
        let ts = TransitStub::generate(&cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(ts.router_count(), cfg.router_count());
        prop_assert!(ts.graph().is_connected());
        prop_assert_eq!(
            ts.transit_count() as usize,
            cfg.transit_domains * cfg.transit_nodes
        );
        let stubs = ts.stub_routers().count();
        prop_assert_eq!(
            stubs,
            cfg.router_count() - cfg.transit_domains * cfg.transit_nodes
        );
    }

    #[test]
    fn hierarchical_latency_is_exact(cfg in arb_config(), seed in 0u64..1_000) {
        let ts = TransitStub::generate(&cfg, &mut StdRng::seed_from_u64(seed));
        let n = ts.router_count() as u32;
        // Exactness against full-graph Dijkstra from a few sources.
        for src in [0u32, n / 3, n - 1] {
            let d = dijkstra(ts.graph(), src);
            for dst in (0..n).step_by(1 + n as usize / 17) {
                prop_assert_eq!(ts.router_latency(src, dst), d[dst as usize]);
            }
        }
    }

    #[test]
    fn latency_is_a_metric(cfg in arb_config(), seed in 0u64..1_000) {
        let ts = TransitStub::generate(&cfg, &mut StdRng::seed_from_u64(seed));
        let n = ts.router_count() as u32;
        let probe: Vec<u32> = (0..n).step_by(1 + n as usize / 7).collect();
        for &a in &probe {
            prop_assert_eq!(ts.router_latency(a, a), 0);
            for &b in &probe {
                prop_assert_eq!(ts.router_latency(a, b), ts.router_latency(b, a));
                for &c in &probe {
                    prop_assert!(
                        ts.router_latency(a, c)
                            <= ts.router_latency(a, b) + ts.router_latency(b, c),
                        "triangle inequality violated at ({a}, {b}, {c})"
                    );
                }
            }
        }
    }

    #[test]
    fn host_latency_composes_access_links(
        cfg in arb_config(),
        seed in 0u64..1_000,
        hosts in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = TransitStub::generate(&cfg, &mut rng);
        let map = HostMap::attach(&ts, hosts, &mut rng);
        for h1 in 0..hosts {
            prop_assert_eq!(ts.host_latency(&map, h1, h1), 0);
            for h2 in 0..hosts {
                let l = ts.host_latency(&map, h1, h2);
                prop_assert_eq!(l, ts.host_latency(&map, h2, h1));
                if h1 != h2 {
                    prop_assert!(l >= (map.access_latency(h1) + map.access_latency(h2)) as u64);
                }
            }
        }
    }
}
