//! Log-domain special functions: `ln Γ`, `ln n!`, `ln C(n, k)` — built from
//! scratch (no external math crates) and accurate enough to evaluate the
//! paper's Theorem 4/5 combinatorics, whose binomials have arguments as
//! large as `16^40 ≈ 1.5 × 10^48`.

/// Lanczos coefficients (g = 7, n = 9), double precision.
#[allow(clippy::excessive_precision)] // published literals, kept verbatim
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)] // published literals, kept verbatim
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~14 significant digits over the tested range.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed here).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma needs x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(r!)`.
pub fn ln_factorial(r: u64) -> f64 {
    ln_gamma(r as f64 + 1.0)
}

/// `ln C(x, r)` where `x` may be astronomically large (e.g. `16^40`) and
/// `r` is moderate (≤ a few hundred thousand).
///
/// For huge `x` the falling factorial `x(x-1)…(x-r+1)` is `x^r` to machine
/// precision; for moderate `x` it is accumulated term by term, which avoids
/// the catastrophic cancellation of `lnΓ(x+1) − lnΓ(x−r+1)` when both
/// arguments are enormous.
///
/// Returns `f64::NEG_INFINITY` when `r > x` (the binomial is zero).
///
/// # Panics
///
/// Panics if `x` is negative or not finite.
pub fn ln_choose_big(x: f64, r: u64) -> f64 {
    assert!(x.is_finite() && x >= 0.0, "bad binomial argument {x}");
    let rf = r as f64;
    if rf > x {
        return f64::NEG_INFINITY;
    }
    if r == 0 {
        return 0.0;
    }
    let ln_falling = if x > 1e22 {
        // Σ ln(x−t) = r·ln x + Σ ln(1−t/x); the correction is below f64
        // resolution (|Σ t/x| < r²/x ≤ 1e-12 for r ≤ 3·10^5).
        rf * x.ln()
    } else {
        let mut s = 0.0;
        for t in 0..r {
            s += (x - t as f64).ln();
        }
        s
    };
    ln_falling - ln_factorial(r)
}

/// `ln C(n, k)` for ordinary integer arguments.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    ln_choose_big(n as f64, k)
}

/// Numerically stable accumulator for `ln Σ exp(l_i)` over a stream of log
/// terms.
#[derive(Debug, Clone, Copy)]
pub struct LogSumExp {
    max: f64,
    sum: f64,
}

impl Default for LogSumExp {
    fn default() -> Self {
        Self::new()
    }
}

impl LogSumExp {
    /// An empty accumulator (`ln Σ` of nothing is `-∞`).
    pub fn new() -> Self {
        LogSumExp {
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds a term with logarithm `l`.
    pub fn push(&mut self, l: f64) {
        if l == f64::NEG_INFINITY {
            return;
        }
        if l <= self.max {
            self.sum += (l - self.max).exp();
        } else {
            self.sum = self.sum * (self.max - l).exp() + 1.0;
            self.max = l;
        }
    }

    /// The running maximum of pushed terms.
    pub fn max_term(&self) -> f64 {
        self.max
    }

    /// `ln Σ exp(l_i)` of everything pushed so far.
    pub fn value(&self) -> f64 {
        if self.max == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            self.max + self.sum.ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!(close(ln_gamma(5.0), 24.0f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(11) = 10! = 3628800.
        assert!(close(ln_gamma(11.0), 3_628_800.0f64.ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_matches_stirling_for_large_x() {
        for &x in &[1e6f64, 1e10, 1e15, 1e30, 1e48] {
            let stirling =
                (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
            assert!(close(ln_gamma(x), stirling, 1e-12), "x = {x}");
        }
    }

    #[test]
    fn ln_factorial_recurrence() {
        let mut acc = 0.0f64;
        for r in 1..500u64 {
            acc += (r as f64).ln();
            assert!(close(ln_factorial(r), acc, 1e-12), "r = {r}");
        }
    }

    #[test]
    fn ln_choose_matches_exact_u128() {
        fn exact(n: u64, k: u64) -> u128 {
            let mut num: u128 = 1;
            for t in 0..k {
                num = num * (n - t) as u128 / (t + 1) as u128;
            }
            num
        }
        for (n, k) in [(10u64, 3u64), (52, 5), (100, 50), (120, 7), (64, 32)] {
            let e = exact(n, k) as f64;
            assert!(close(ln_choose(n, k), e.ln(), 1e-10), "C({n},{k})");
        }
        assert_eq!(ln_choose(5, 6), f64::NEG_INFINITY);
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(0, 0), 0.0);
    }

    #[test]
    fn ln_choose_big_huge_arguments() {
        // C(16^40, 2) = x(x-1)/2 ≈ x²/2.
        let x = 16f64.powi(40);
        let expect = 2.0 * x.ln() - 2f64.ln();
        assert!(close(ln_choose_big(x, 2), expect, 1e-12));
        // Large r against huge x: r·ln x − ln r!.
        let r = 100_000u64;
        let expect = r as f64 * x.ln() - ln_factorial(r);
        assert!(close(ln_choose_big(x, r), expect, 1e-12));
    }

    #[test]
    fn ln_choose_big_moderate_path_consistent_with_huge_path() {
        // At the 1e22 crossover both formulas must agree.
        let x = 0.9e22;
        let r = 1000u64;
        let explicit = ln_choose_big(x, r);
        let approx = r as f64 * x.ln() - ln_factorial(r);
        assert!(close(explicit, approx, 1e-10));
    }

    #[test]
    fn logsumexp_basic() {
        let mut l = LogSumExp::new();
        assert_eq!(l.value(), f64::NEG_INFINITY);
        l.push(0.0); // 1
        l.push(0.0); // 1
        assert!(close(l.value(), 2.0f64.ln(), 1e-12));
        l.push(f64::NEG_INFINITY);
        assert!(close(l.value(), 2.0f64.ln(), 1e-12));

        // Mixed magnitudes, order independent.
        let mut a = LogSumExp::new();
        let mut b = LogSumExp::new();
        let terms = [-700.0, 3.0, 2.0, -1000.0, 4.0];
        for &t in &terms {
            a.push(t);
        }
        for &t in terms.iter().rev() {
            b.push(t);
        }
        // exp(-1000) underflows; compare a vs b and vs a direct evaluation.
        assert!(close(a.value(), b.value(), 1e-12));
        let direct = ((-700.0f64).exp() + 3f64.exp() + 2f64.exp() + 4f64.exp()).ln();
        assert!(close(a.value(), direct, 1e-12));
    }

    #[test]
    #[should_panic(expected = "ln_gamma needs x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
