//! The paper's analytic cost model (§5.2, Theorems 3–5).

use crate::special::{ln_choose_big, LogSumExp};

/// Theorem 3: a joiner sends at most `d + 1` messages of types `CpRstMsg`
/// and `JoinWaitMsg` combined.
pub fn theorem3_bound(d: usize) -> u64 {
    d as u64 + 1
}

/// The distribution `P_i(n)` of Theorem 4: the probability that a fresh
/// joiner's longest common suffix with an `n`-node network (of uniformly
/// random distinct identifiers in a `b^d` space) has length exactly `i`,
/// for `i = 0 ..= d-1`.
///
/// The paper gives:
///
/// * `P_0(n) = C(b^d − b^{d−1}, n) / C(b^d − 1, n)`;
/// * for `1 ≤ i < d−1`,
///   `P_i(n) = Σ_{k=1}^{min(n,B)} C(B,k)·C(b^d − b^{d−i}, n−k) / C(b^d − 1, n)`
///   with `B = (b−1)·b^{d−1−i}`;
/// * `P_{d−1}(n) = 1 − Σ_{j<d−1} P_j(n)`.
///
/// All binomials are evaluated in log space; the inner sum converges after
/// `O(nB/b^d)` terms and is truncated once terms fall 10^-20 below the peak.
///
/// # Panics
///
/// Panics if `b < 2`, `d < 2`, `n == 0`, or `n >= b^d` (more nodes than
/// identifiers).
#[allow(clippy::needless_range_loop)] // level index i is the math's subscript
pub fn p_vector(b: u32, d: u32, n: u64) -> Vec<f64> {
    assert!(b >= 2, "base must be at least 2");
    assert!(d >= 2, "need at least two digits");
    assert!(n >= 1, "network must be non-empty");
    let bd = (b as f64).powi(d as i32);
    assert!((n as f64) < bd, "n = {n} exceeds the identifier space");

    let ln_denom = ln_choose_big(bd - 1.0, n);
    let mut p = vec![0.0f64; d as usize];

    // P_0.
    let m0 = bd - bd / b as f64; // b^d − b^{d−1}
    p[0] = (ln_choose_big(m0, n) - ln_denom).exp();

    // P_i, 1 ≤ i ≤ d−2 (the paper sums these explicitly; P_{d−1} is the
    // remainder).
    for i in 1..=(d as usize - 2) {
        let big_b = (b as f64 - 1.0) * (b as f64).powi(d as i32 - 1 - i as i32);
        let m = bd - (b as f64).powi(d as i32 - i as i32); // b^d − b^{d−i}
        let kmax = if (n as f64) < big_b { n } else { big_b as u64 };
        if kmax == 0 {
            continue;
        }
        // k = 1 term.
        let mut ln_cb = big_b.ln(); // ln C(B, 1)
        let mut ln_cm = ln_choose_big(m, n - 1);
        let mut acc = LogSumExp::new();
        let mut prev = f64::NEG_INFINITY;
        for k in 1..=kmax {
            let l = ln_cb + ln_cm - ln_denom;
            acc.push(l);
            // The term sequence is unimodal; once it decays 46 nats (1e-20)
            // below the peak, the tail is irrelevant.
            if l < prev && l < acc.max_term() - 46.0 {
                break;
            }
            prev = l;
            if k == kmax {
                break;
            }
            // Advance C(B, k) -> C(B, k+1) and C(M, n−k) -> C(M, n−k−1).
            ln_cb += (big_b - k as f64).ln() - (k as f64 + 1.0).ln();
            if n - k == 0 {
                break;
            }
            ln_cm += ((n - k) as f64).ln() - (m - (n - k) as f64 + 1.0).ln();
        }
        p[i] = acc.value().exp();
    }

    // P_{d−1} is the remainder, clamped against rounding.
    let partial: f64 = p[..d as usize - 1].iter().sum();
    p[d as usize - 1] = (1.0 - partial).max(0.0);
    p
}

/// Theorem 4: the expected number of `JoinNotiMsg` sent by a *single* node
/// joining a consistent `n`-node network:
/// `E(J) = Σ_{i=0}^{d−1} (n / b^i) · P_i(n) − 1`.
///
/// # Examples
///
/// ```
/// let e = hyperring_analysis::expected_join_noti(16, 8, 3096);
/// assert!(e > 4.0 && e < 7.0);
/// ```
pub fn expected_join_noti(b: u32, d: u32, n: u64) -> f64 {
    let p = p_vector(b, d, n);
    series_sum(b, n as f64, &p) - 1.0
}

/// Theorem 5: an upper bound on the expected number of `JoinNotiMsg` sent
/// by each of `m` nodes joining an `n`-node network concurrently:
/// `E(J) ≤ Σ_{i=0}^{d−1} ((n+m) / b^i) · P_i(n)`.
pub fn upper_bound_join_noti(b: u32, d: u32, n: u64, m: u64) -> f64 {
    let p = p_vector(b, d, n);
    series_sum(b, (n + m) as f64, &p)
}

fn series_sum(b: u32, scale: f64, p: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut pow = 1.0f64;
    for &pi in p {
        sum += scale / pow * pi;
        pow *= b as f64;
    }
    sum
}

/// Expected length of the longest common suffix (`Σ i·P_i`) — the expected
/// notification level of a joiner, useful for workload sizing.
pub fn expected_noti_level(b: u32, d: u32, n: u64) -> f64 {
    p_vector(b, d, n)
        .iter()
        .enumerate()
        .map(|(i, &p)| i as f64 * p)
        .sum()
}

/// Expected number of filled entries in one node's neighbor table when
/// `n` nodes (the owner included) hold uniformly random distinct
/// identifiers.
///
/// Self entries contribute `d`; every other `(i, j)` entry is filled iff
/// some *other* node carries the desired `(i+1)`-digit suffix. With
/// `n − 1` other identifiers drawn uniformly *without replacement* from
/// the `b^d − 1` non-owner identifiers, of which `s = b^{d−i−1}` carry
/// the suffix, that probability is the hypergeometric
/// `1 − C(b^d − 1 − s, n−1) / C(b^d − 1, n−1)`. This predicts the volume
/// of the protocol's *small* messages — each filled entry copied or
/// installed triggers one `RvNghNotiMsg` — complementing the paper's
/// §5.2 analysis of big messages (the small-message analysis lives in
/// the paper's technical report).
///
/// # Panics
///
/// Panics if `b < 2`, `d < 1`, `n == 0`, or `n > b^d`.
pub fn expected_filled_entries(b: u32, d: u32, n: u64) -> f64 {
    assert!(b >= 2 && d >= 1 && n >= 1);
    let bd = (b as f64).powi(d as i32);
    assert!((n as f64) <= bd, "n exceeds the identifier space");
    let others = n - 1;
    let mut filled = d as f64; // self entries
    for i in 0..d {
        let s = (b as f64).powi(d as i32 - i as i32 - 1);
        let ln_empty = ln_choose_big(bd - 1.0 - s, others) - ln_choose_big(bd - 1.0, others);
        let p_filled = 1.0 - ln_empty.exp();
        filled += (b as f64 - 1.0) * p_filled;
    }
    filled
}

/// Convenience struct bundling the parameters of the paper's analytic
/// figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyticConfig {
    /// Digit base `b`.
    pub b: u32,
    /// Digits per identifier `d`.
    pub d: u32,
    /// Initial network size `n = |V|`.
    pub n: u64,
    /// Number of concurrent joiners `m = |W|`.
    pub m: u64,
}

impl AnalyticConfig {
    /// Theorem 5 upper bound for this configuration.
    pub fn upper_bound(&self) -> f64 {
        upper_bound_join_noti(self.b, self.d, self.n, self.m)
    }

    /// Theorem 4 single-join expectation for this configuration.
    pub fn single_join_expectation(&self) -> f64 {
        expected_join_noti(self.b, self.d, self.n)
    }
}

/// The exact `P_i` by brute force for tiny spaces (used in tests): draws
/// all `C(b^d − 1, n)` node sets is infeasible, so instead computes the
/// hypergeometric expression with exact `u128` binomials. Only valid while
/// everything fits in `u128` (roughly `b^d ≤ 64` with small `n`).
#[doc(hidden)]
#[allow(clippy::needless_range_loop)] // level index i is the math's subscript
pub fn p_vector_exact_small(b: u32, d: u32, n: u64) -> Vec<f64> {
    fn choose(n: u128, k: u128) -> u128 {
        if k > n {
            return 0;
        }
        let mut acc: u128 = 1;
        for t in 0..k {
            acc = acc * (n - t) / (t + 1);
        }
        acc
    }
    let bd = (b as u128).pow(d);
    let denom = choose(bd - 1, n as u128);
    let mut p = vec![0.0f64; d as usize];
    p[0] = choose(bd - bd / b as u128, n as u128) as f64 / denom as f64;
    for i in 1..=(d as usize - 2) {
        let big_b = (b as u128 - 1) * (b as u128).pow(d - 1 - i as u32);
        let m = bd - (b as u128).pow(d - i as u32);
        let mut sum = 0.0;
        for k in 1..=n.min(big_b as u64) {
            sum += (choose(big_b, k as u128) as f64 * choose(m, (n - k) as u128) as f64)
                / denom as f64;
        }
        p[i] = sum;
    }
    let partial: f64 = p[..d as usize - 1].iter().sum();
    p[d as usize - 1] = (1.0 - partial).max(0.0);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_vector_is_a_distribution() {
        for (b, d, n) in [
            (16u32, 8u32, 100u64),
            (16, 8, 3096),
            (16, 8, 100_000),
            (16, 40, 3096),
            (16, 40, 100_000),
            (4, 6, 50),
            (2, 10, 500),
        ] {
            let p = p_vector(b, d, n);
            assert_eq!(p.len(), d as usize);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)), "{b} {d} {n}");
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "b={b} d={d} n={n}: Σ = {s}");
        }
    }

    #[test]
    fn p_vector_matches_exact_for_tiny_spaces() {
        for (b, d, n) in [(2u32, 4u32, 3u64), (2, 4, 7), (3, 3, 5), (2, 5, 10)] {
            let fast = p_vector(b, d, n);
            let exact = p_vector_exact_small(b, d, n);
            for i in 0..d as usize {
                assert!(
                    (fast[i] - exact[i]).abs() < 1e-9,
                    "b={b} d={d} n={n} i={i}: {} vs {}",
                    fast[i],
                    exact[i]
                );
            }
        }
    }

    #[test]
    fn paper_printed_upper_bounds() {
        // §5.2: "the upper bounds by Theorem 5 are 8.001, 8.001, 6.986 and
        // 6.986" for (n=3096, d=8), (n=3096, d=40), (n=7192, d=8),
        // (n=7192, d=40), all with b=16, m=1000.
        for d in [8u32, 40] {
            let b3096 = upper_bound_join_noti(16, d, 3096, 1000);
            assert!((b3096 - 8.001).abs() < 0.01, "d={d}: bound(3096) = {b3096}");
            let b7192 = upper_bound_join_noti(16, d, 7192, 1000);
            assert!((b7192 - 6.986).abs() < 0.01, "d={d}: bound(7192) = {b7192}");
        }
    }

    #[test]
    fn figure_15a_shape() {
        // Figure 15(a) plots the Theorem-5 bound for n ∈ [10^4, 10^5]. The
        // curve stays in the figure's y-range (3..9) and scallops with a
        // period of ×b in n (P_i mass shifts to the next level near powers
        // of b): a local minimum near n = 2·10^4 and a local maximum near
        // n = 8·10^4.
        let at = |n: u64| upper_bound_join_noti(16, 40, n, 1000);
        for n in (10_000..=100_000).step_by(10_000) {
            let v = at(n);
            assert!((3.0..9.0).contains(&v), "bound {v} at n={n} out of range");
        }
        assert!(at(20_000) < at(10_000));
        assert!(at(20_000) < at(50_000));
        assert!(at(80_000) > at(50_000));
        assert!(at(100_000) < at(80_000));
        // m = 1000 lies slightly above m = 500; d barely matters.
        let m500 = upper_bound_join_noti(16, 40, 10_000, 500);
        let m1000 = upper_bound_join_noti(16, 40, 10_000, 1000);
        assert!(m1000 > m500);
        let d8 = upper_bound_join_noti(16, 8, 50_000, 1000);
        let d40 = upper_bound_join_noti(16, 40, 50_000, 1000);
        assert!((d8 - d40).abs() < 1e-3, "d8={d8} d40={d40}");
    }

    #[test]
    fn theorem4_vs_theorem5_relation() {
        // The m-joiner bound exceeds the single-join expectation, and
        // approaches it as m -> 0 (up to the −1 and the n+m scaling).
        let e = expected_join_noti(16, 8, 3096);
        let ub = upper_bound_join_noti(16, 8, 3096, 1000);
        assert!(ub > e);
        let ub_tiny = upper_bound_join_noti(16, 8, 3096, 1);
        assert!((ub_tiny - (e + 1.0)).abs() < 0.01);
    }

    #[test]
    fn expected_noti_level_grows_with_n() {
        let small = expected_noti_level(16, 8, 100);
        let large = expected_noti_level(16, 8, 100_000);
        assert!(large > small);
        // With n = 100k and b=16, E[level] ≈ log_16(100k) ≈ 4.15.
        assert!((3.5..5.0).contains(&large), "{large}");
    }

    #[test]
    fn expected_filled_entries_limits() {
        // n = 1: only the d self entries.
        assert!((expected_filled_entries(16, 8, 1) - 8.0).abs() < 1e-12);
        // Saturated space (n = b^d): every entry filled (d·b total).
        let full = expected_filled_entries(4, 5, 1024);
        assert!((full - 20.0).abs() < 1e-6, "{full}");
        // Monotone in n.
        let mut prev = 0.0;
        for n in [1u64, 10, 100, 1_000, 10_000] {
            let f = expected_filled_entries(16, 8, n);
            assert!(f >= prev);
            prev = f;
        }
        // Level-0 row fills fast: with n = 1000, all 16 level-0 entries
        // are essentially filled.
        let f = expected_filled_entries(16, 8, 1_000);
        assert!(f > 8.0 + 15.0, "{f}");
    }

    #[test]
    fn expected_filled_entries_matches_monte_carlo() {
        // Brute-force check on a tiny space.
        use std::collections::HashSet;
        let (b, d, n) = (3u32, 3u32, 6u64);
        let capacity = (b as u64).pow(d);
        // Exhaustive expectation over random draws is costly; estimate via
        // a simple deterministic LCG sampler.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let trials = 4000;
        let mut total_filled = 0u64;
        for _ in 0..trials {
            let mut ids = HashSet::new();
            while ids.len() < n as usize {
                ids.insert(next() % capacity);
            }
            let ids: Vec<u64> = ids.into_iter().collect();
            let me = ids[0];
            // Count filled entries of `me`'s table.
            let digit = |x: u64, i: u32| (x / (b as u64).pow(i)) % b as u64;
            for i in 0..d {
                for j in 0..b as u64 {
                    if digit(me, i) == j {
                        total_filled += 1; // self entry
                        continue;
                    }
                    let fits =
                        |x: u64| (0..i).all(|t| digit(x, t) == digit(me, t)) && digit(x, i) == j;
                    if ids[1..].iter().any(|&x| fits(x)) {
                        total_filled += 1;
                    }
                }
            }
        }
        let measured = total_filled as f64 / trials as f64;
        let analytic = expected_filled_entries(b, d, n);
        assert!(
            (measured - analytic).abs() < 0.15,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn theorem3_is_d_plus_one() {
        assert_eq!(theorem3_bound(8), 9);
        assert_eq!(theorem3_bound(40), 41);
    }

    #[test]
    #[should_panic(expected = "exceeds the identifier space")]
    fn overfull_network_rejected() {
        p_vector(2, 2, 4);
    }
}
