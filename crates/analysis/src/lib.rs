//! Analytic cost model of the join protocol (the paper's §5.2).
//!
//! Implements Theorems 3–5 — the bound on `CpRstMsg + JoinWaitMsg`
//! messages, the exact expectation of `JoinNotiMsg` for a single join, and
//! the upper bound for `m` concurrent joins — together with the log-domain
//! special functions ([`special`]) needed to evaluate binomials with
//! arguments as large as `16^40`.
//!
//! The module reproduces the paper's printed numbers: the Theorem-5 bounds
//! for the four Figure 15(b) configurations evaluate to 8.001, 8.001,
//! 6.986, 6.986 (a unit test pins them down).
//!
//! # Examples
//!
//! ```
//! use hyperring_analysis::{upper_bound_join_noti, theorem3_bound};
//! // One of the paper's own data points (§5.2).
//! let bound = upper_bound_join_noti(16, 8, 3096, 1000);
//! assert!((bound - 8.001).abs() < 0.01);
//! assert_eq!(theorem3_bound(8), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod special;
mod theorems;

pub use theorems::{
    expected_filled_entries, expected_join_noti, expected_noti_level, p_vector,
    p_vector_exact_small, theorem3_bound, upper_bound_join_noti, AnalyticConfig,
};
