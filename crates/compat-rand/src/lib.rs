//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — high quality, fast, and fully
//! deterministic, which is all the simulator needs (nothing here is
//! cryptographic, and the exact stream does not need to match upstream
//! `rand`; every consumer in this repository derives its values from an
//! explicit `u64` seed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from their whole domain (the
/// `Standard` distribution of upstream `rand`, specialized).
pub trait Standard01 {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard01 for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard01 for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard01 for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard01 for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (the `SampleRange` of upstream
/// `rand`, specialized to the primitive types this workspace draws).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                match ((hi - lo) as u64).checked_add(1) {
                    Some(span) => lo + uniform_u64(rng, span) as $t,
                    // Only reachable for the full u64 domain.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for Range<u128> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_u128(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        match (hi - lo).checked_add(1) {
            Some(span) => lo + uniform_u128(rng, span),
            None => u128::draw(rng),
        }
    }
}

/// Unbiased uniform draw from `0..span` via masked rejection.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        return uniform_u64(rng, span as u64) as u128;
    }
    let mask = u128::MAX >> (span - 1).leading_zeros();
    loop {
        let x = u128::draw(rng) & mask;
        if x < span {
            return x;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add(uniform_u64(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::draw(rng)
    }
}

/// Unbiased uniform draw from `0..span` (`span == 0` means the full
/// 64-bit domain), via widening-multiply with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire's method: multiply-shift with rejection of the biased zone.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the whole domain of `T`.
    fn gen<T: Standard01>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Upstream `rand`'s `StdRng` is a ChaCha block cipher; nothing here
    /// needs cryptographic strength, so a fast scrambled-linear generator
    /// with the same construction/seeding API is used instead.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20usize);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5..=5u64);
            assert_eq!(y, 5);
            let z = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&z));
            let f = rng.gen_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval_and_varied() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor spread: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(draw(&mut rng) < 100);
    }
}
