//! Property-based tests of the discrete-event simulator: causality,
//! conservation of messages, and seed determinism.

use hyperring_sim::{Actor, ConstantDelay, Context, Simulator, Time, UniformDelay};
use proptest::prelude::*;

/// Actor that records delivery times and forwards a decrementing counter
/// to a fixed next hop.
struct Recorder {
    next: usize,
    log: Vec<(Time, u32)>,
}

impl Actor for Recorder {
    type Msg = u32;
    type Timer = ();
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: usize, m: u32) {
        self.log.push((ctx.now(), m));
        if m > 0 {
            ctx.send(self.next, m - 1);
        }
    }
}

fn ring(n: usize) -> Vec<Recorder> {
    (0..n)
        .map(|i| Recorder {
            next: (i + 1) % n,
            log: Vec::new(),
        })
        .collect()
}

proptest! {
    #[test]
    fn message_conservation(
        n in 1usize..8,
        injections in proptest::collection::vec((0u64..1_000, 0u32..30), 1..12),
        seed in 0u64..10_000,
    ) {
        // Every injected chain of length m produces exactly m + 1
        // deliveries; nothing is lost or duplicated.
        let mut sim = Simulator::new(ring(n), UniformDelay::new(1, 500), seed);
        let mut expected = 0u64;
        for (at, m) in &injections {
            sim.inject_at(*at, 0, (*m as usize) % n, *m);
            expected += *m as u64 + 1;
        }
        let report = sim.run();
        prop_assert_eq!(report.delivered, expected);
        prop_assert!(!report.truncated);
        let logged: usize = sim.actors().map(|a| a.log.len()).sum();
        prop_assert_eq!(logged as u64, expected);
    }

    #[test]
    fn delivery_times_never_decrease(
        n in 2usize..6,
        chain in 1u32..40,
        seed in 0u64..10_000,
    ) {
        let mut sim = Simulator::new(ring(n), UniformDelay::new(1, 1_000), seed);
        sim.inject(0, 0, chain);
        sim.run();
        // Concatenate all logs in global delivery order by re-running and
        // checking per-actor monotonicity (each actor's log is ordered by
        // its own delivery times).
        for a in sim.actors() {
            for w in a.log.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            }
        }
        // The chain's hops happen in causal order: the delivery carrying
        // payload p (a later hop) is never earlier than the one carrying
        // p + 1. (Times may tie when sampled latencies collide, so compare
        // per payload, not by sorting.)
        let mut time_of = std::collections::HashMap::new();
        for (t, m) in sim.actors().flat_map(|a| a.log.iter().copied()) {
            prop_assert!(time_of.insert(m, t).is_none(), "payload delivered twice");
        }
        for m in 0..chain {
            prop_assert!(time_of[&m] >= time_of[&(m + 1)], "hop {m} before its cause");
        }
    }

    #[test]
    fn constant_delay_chain_timing_is_exact(
        n in 2usize..6,
        chain in 0u32..50,
        delay in 1u64..1_000,
    ) {
        let mut sim = Simulator::new(ring(n), ConstantDelay(delay), 0);
        sim.inject(0, 0, chain);
        let report = sim.run();
        prop_assert_eq!(report.finished_at, delay * (chain as u64 + 1));
    }

    #[test]
    fn identical_seeds_identical_runs(
        n in 2usize..6,
        chain in 1u32..30,
        seed in 0u64..10_000,
    ) {
        let run = |s: u64| {
            let mut sim = Simulator::new(ring(n), UniformDelay::new(1, 2_000), s);
            sim.inject(0, 1 % n, chain);
            let r = sim.run();
            let log: Vec<Vec<(Time, u32)>> = sim.actors().map(|a| a.log.clone()).collect();
            (r.delivered, r.finished_at, log)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
