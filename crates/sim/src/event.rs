/// Virtual time in microseconds since the start of the run.
pub type Time = u64;

/// What a scheduled event carries: a message in flight or a pending timer.
///
/// Timer events carry the *generation* of the arming that scheduled them
/// and are validated against the simulator's armed-timer table at pop
/// time; a canceled or superseded timer's generation no longer matches,
/// so the event is skipped without touching virtual time or any counter —
/// arming-then-canceling perturbs nothing observable. Generations (rather
/// than global event seqs) make staleness locally decidable inside one
/// shard of the sharded scheduler.
#[derive(Debug, Clone)]
pub(crate) enum Payload<M, T> {
    /// A message from one actor to another.
    Msg(M),
    /// A timer the destination actor armed for itself, plus the arming
    /// generation it must still match to fire.
    Timer(T, u64),
}

/// A scheduled delivery. Ordering (and equality) consider only the
/// `(at, seq)` key, never the payload, so message types need no `Ord`.
#[derive(Debug, Clone)]
pub(crate) struct Event<M> {
    pub at: Time,
    /// Tie-breaker: events scheduled earlier are delivered first at equal
    /// times, which keeps runs deterministic.
    pub seq: u64,
    pub from: usize,
    pub to: usize,
    pub msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we need earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_earliest_first_with_seq_tiebreak() {
        let mut heap = BinaryHeap::new();
        for (at, seq) in [(5u64, 0u64), (3, 1), (5, 2), (1, 3), (3, 4)] {
            heap.push(Event {
                at,
                seq,
                from: 0,
                to: 0,
                msg: (),
            });
        }
        let order: Vec<(Time, u64)> =
            std::iter::from_fn(|| heap.pop().map(|e| (e.at, e.seq))).collect();
        assert_eq!(order, vec![(1, 3), (3, 1), (3, 4), (5, 0), (5, 2)]);
    }
}
