//! A deterministic discrete-event simulator for message-passing protocols.
//!
//! The paper evaluates its join protocol "in detail in an event-driven
//! simulator"; this crate is that substrate, rebuilt from scratch. Actors
//! (overlay nodes) exchange messages whose delivery is delayed by a pluggable
//! [`DelayModel`] (constant, uniform random, or a real router topology via an
//! adapter). Given the same seed, a run is bit-for-bit reproducible.
//!
//! Delivery is **reliable and unordered** — exactly the assumption of the
//! paper's correctness proof (assumption (iii) of §3.1): every message is
//! delivered, but two messages between the same pair of nodes may be
//! reordered if their sampled latencies interleave. This makes the simulator
//! an adversarial scheduler for the protocol rather than a friendly one.
//!
//! # Examples
//!
//! Actors may also arm per-actor timers ([`Context::set_timer`]) and see
//! them expire via [`Actor::on_timer`], and a [`FaultyDelay`] wrapper can
//! drop or duplicate actor-sent messages by seeded probability — the
//! substrate for testing timeout-and-retry protocol extensions.
//!
//! # Examples
//!
//! ```
//! use hyperring_sim::{Actor, ConstantDelay, Context, Simulator};
//!
//! struct Echo;
//! impl Actor for Echo {
//!     type Msg = u32;
//!     type Timer = ();
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: usize, msg: u32) {
//!         if msg > 0 {
//!             ctx.send(from, msg - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(vec![Echo, Echo], ConstantDelay(10), 42);
//! sim.inject(0, 1, 5); // deliver 5 to actor 1, "from" actor 0
//! let report = sim.run();
//! assert_eq!(report.delivered, 6);
//! assert_eq!(sim.now(), 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod event;
mod sim;
pub mod stats;

pub use delay::{ConstantDelay, DelayModel, Fate, FaultyDelay, FnDelay, MatrixDelay, UniformDelay};
pub use event::Time;
pub use sim::{Actor, Context, RunReport, Simulator};
