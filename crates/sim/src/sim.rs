use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::delay::{DelayModel, Fate};
use crate::event::{Event, Payload, Time};

/// A simulated protocol participant.
///
/// Actors are addressed by dense indices `0..n`. They react to message
/// deliveries (and their own timer expiries) by mutating their state and
/// issuing further operations through the [`Context`]. Actors never block:
/// the paper's protocol is a pure event-driven state machine, and so is
/// this trait.
pub trait Actor {
    /// Message type exchanged between actors.
    type Msg;

    /// Timer identifier type. An actor arms timers for *itself* via
    /// [`Context::set_timer`]; actors without timers use `()`.
    type Timer: Clone + Eq + Hash;

    /// Handles a delivered message.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
        from: usize,
        msg: Self::Msg,
    );

    /// Handles an expired timer previously armed with
    /// [`Context::set_timer`]. The default does nothing.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg, Self::Timer>, _timer: Self::Timer) {}
}

/// One operation an actor issued during a delivery, buffered until the
/// simulator applies it.
#[derive(Debug)]
pub(crate) enum Op<M, T> {
    Send(usize, M),
    SetTimer(T, Time),
    CancelTimer(T),
}

/// Handle an actor uses to interact with the simulation during a delivery.
#[derive(Debug)]
pub struct Context<'a, M, T = ()> {
    now: Time,
    me: usize,
    out: &'a mut Vec<Op<M, T>>,
}

impl<'a, M, T> Context<'a, M, T> {
    /// Current virtual time in microseconds.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Index of the actor handling the event.
    #[inline]
    pub fn me(&self) -> usize {
        self.me
    }

    /// Sends `msg` to actor `to`; its delivery (or loss) is decided by the
    /// delay model's [`Fate`].
    #[inline]
    pub fn send(&mut self, to: usize, msg: M) {
        self.out.push(Op::Send(to, msg));
    }

    /// Arms (or re-arms) timer `timer` to fire on this actor after `delay`
    /// microseconds. Re-arming an already-pending timer replaces it: only
    /// the latest deadline fires.
    #[inline]
    pub fn set_timer(&mut self, timer: T, delay: Time) {
        self.out.push(Op::SetTimer(timer, delay));
    }

    /// Cancels a pending timer. Canceling a timer that is not armed is a
    /// no-op, so callers need not track armed state precisely.
    #[inline]
    pub fn cancel_timer(&mut self, timer: T) {
        self.out.push(Op::CancelTimer(timer));
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of messages delivered.
    pub delivered: u64,
    /// Virtual time of the last delivery.
    pub finished_at: Time,
    /// Whether the run stopped because it hit the delivery limit rather
    /// than draining the event queue.
    pub truncated: bool,
    /// Number of timers that fired (canceled/superseded timers excluded).
    pub timers_fired: u64,
    /// Messages dropped by the delay model's [`Fate`].
    pub dropped: u64,
    /// Messages duplicated by the delay model's [`Fate`].
    pub duplicated: u64,
    /// Protocol trace records emitted during the run. The simulator itself
    /// never traces; trace-aware runtimes layered on top fill this in.
    pub traced: u64,
}

/// Deterministic discrete-event simulator over a set of actors.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Simulator<A: Actor, D> {
    actors: Vec<A>,
    delay: D,
    rng: StdRng,
    queue: BinaryHeap<Event<Payload<A::Msg, A::Timer>>>,
    /// Armed timers: `(actor, timer) → seq` of the live queue entry. A
    /// popped timer event fires only if its seq is still the armed one;
    /// otherwise it was canceled or superseded and is skipped silently.
    armed: HashMap<(usize, A::Timer), u64>,
    now: Time,
    seq: u64,
    delivered: u64,
    timers_fired: u64,
    dropped: u64,
    duplicated: u64,
    ops: Vec<Op<A::Msg, A::Timer>>,
}

impl<A: Actor, D: DelayModel> Simulator<A, D>
where
    A::Msg: Clone,
{
    /// Creates a simulator over `actors` with the given delay model and RNG
    /// seed.
    pub fn new(actors: Vec<A>, delay: D, seed: u64) -> Self {
        Simulator {
            actors,
            delay,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            armed: HashMap::new(),
            now: 0,
            seq: 0,
            delivered: 0,
            timers_fired: 0,
            dropped: 0,
            duplicated: 0,
            ops: Vec::new(),
        }
    }

    /// Current virtual time (µs).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of actors.
    #[inline]
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// Whether the simulator has no actors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Shared access to an actor's state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn actor(&self, i: usize) -> &A {
        &self.actors[i]
    }

    /// Exclusive access to an actor's state (for test instrumentation; the
    /// protocol itself only runs through deliveries).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn actor_mut(&mut self, i: usize) -> &mut A {
        &mut self.actors[i]
    }

    /// Iterates over all actors.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.actors.iter()
    }

    /// Appends a fresh actor and returns its index.
    ///
    /// Safe to call mid-run (between [`step`](Self::step)s or after a
    /// [`run`](Self::run) drained the queue): existing actors, queued
    /// events, virtual time, and the RNG stream are untouched, and the
    /// new actor can immediately receive injections. This is the growth
    /// path incremental network construction builds on.
    pub fn add_actor(&mut self, actor: A) -> usize {
        self.actors.push(actor);
        self.actors.len() - 1
    }

    /// Schedules delivery of `msg` to `to` at the current time plus the
    /// model latency, as if sent by `from`.
    ///
    /// Injections are driver-level and always reliable: the delay model's
    /// [`Fate`] applies only to messages actors send, never to these.
    ///
    /// # Panics
    ///
    /// Panics if `to` or `from` is out of range.
    pub fn inject(&mut self, from: usize, to: usize, msg: A::Msg) {
        assert!(from < self.actors.len() && to < self.actors.len());
        let d = self.delay.delay(from, to, &mut self.rng);
        self.push_event(self.now + d, from, to, Payload::Msg(msg));
    }

    /// Schedules delivery of `msg` at absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at < self.now()` or an index is out of range.
    pub fn inject_at(&mut self, at: Time, from: usize, to: usize, msg: A::Msg) {
        assert!(from < self.actors.len() && to < self.actors.len());
        assert!(at >= self.now, "cannot schedule in the past");
        self.push_event(at, from, to, Payload::Msg(msg));
    }

    fn push_event(&mut self, at: Time, from: usize, to: usize, msg: Payload<A::Msg, A::Timer>) {
        self.queue.push(Event {
            at,
            seq: self.seq,
            from,
            to,
            msg,
        });
        self.seq += 1;
    }

    /// Applies the operations `me` buffered during one delivery.
    fn apply_ops(&mut self, me: usize) {
        let mut ops = std::mem::take(&mut self.ops);
        for op in ops.drain(..) {
            match op {
                Op::Send(to, msg) => {
                    assert!(to < self.actors.len(), "send to unknown actor {to}");
                    match self.delay.fate(me, to, &mut self.rng) {
                        Fate::Deliver(d) => {
                            self.push_event(self.now + d, me, to, Payload::Msg(msg))
                        }
                        Fate::Drop => self.dropped += 1,
                        Fate::Duplicate(d1, d2) => {
                            self.duplicated += 1;
                            self.push_event(self.now + d1, me, to, Payload::Msg(msg.clone()));
                            self.push_event(self.now + d2, me, to, Payload::Msg(msg));
                        }
                    }
                }
                Op::SetTimer(timer, delay) => {
                    let seq = self.seq;
                    self.push_event(self.now + delay, me, me, Payload::Timer(timer.clone()));
                    // Overwrites any prior arming: the superseded queue
                    // entry's seq no longer matches and dies at pop.
                    self.armed.insert((me, timer), seq);
                }
                Op::CancelTimer(timer) => {
                    // The queue entry (if any) becomes stale and is skipped.
                    self.armed.remove(&(me, timer));
                }
            }
        }
        self.ops = ops;
    }

    /// Delivers a single event (message or live timer); returns `false`
    /// when the queue is empty. Canceled or superseded timer events are
    /// discarded without advancing virtual time or any counter.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            debug_assert!(ev.at >= self.now, "time went backwards");
            let me = ev.to;
            debug_assert!(self.ops.is_empty());
            match ev.msg {
                Payload::Msg(msg) => {
                    self.now = ev.at;
                    self.delivered += 1;
                    let mut ctx = Context {
                        now: self.now,
                        me,
                        out: &mut self.ops,
                    };
                    self.actors[me].on_message(&mut ctx, ev.from, msg);
                }
                Payload::Timer(timer) => {
                    if self.armed.get(&(me, timer.clone())) != Some(&ev.seq) {
                        continue; // stale: canceled or re-armed since
                    }
                    self.armed.remove(&(me, timer.clone()));
                    self.now = ev.at;
                    self.timers_fired += 1;
                    let mut ctx = Context {
                        now: self.now,
                        me,
                        out: &mut self.ops,
                    };
                    self.actors[me].on_timer(&mut ctx, timer);
                }
            }
            self.apply_ops(me);
            return true;
        }
    }

    /// Runs until the event queue drains. Equivalent to
    /// [`run_limited`](Self::run_limited) with `u64::MAX`.
    pub fn run(&mut self) -> RunReport {
        self.run_limited(u64::MAX)
    }

    /// Runs until the queue drains or `max_deliveries` further events have
    /// been handled, whichever comes first.
    ///
    /// The limit is a safety net for liveness tests: the join protocol is
    /// proven to terminate, so hitting the limit indicates a bug.
    pub fn run_limited(&mut self, max_deliveries: u64) -> RunReport {
        let mut n = 0u64;
        while n < max_deliveries {
            if !self.step() {
                return self.report(false);
            }
            n += 1;
        }
        let truncated = !self.queue.is_empty();
        self.report(truncated)
    }

    /// Runs until the queue drains or the next live event lies past
    /// virtual time `until`, whichever comes first. Events scheduled at
    /// exactly `until` are still delivered.
    ///
    /// This is the horizon for protocols with self-re-arming periodic
    /// timers (the failure detector): their queue never drains, so
    /// [`run`](Self::run) would not terminate. The report's `truncated`
    /// flag is set when undelivered events remain past the horizon.
    pub fn run_until(&mut self, until: Time) -> RunReport {
        loop {
            let (at, stale) = match self.queue.peek() {
                None => return self.report(false),
                Some(ev) => {
                    let stale = match &ev.msg {
                        Payload::Timer(timer) => {
                            self.armed.get(&(ev.to, timer.clone())) != Some(&ev.seq)
                        }
                        Payload::Msg(_) => false,
                    };
                    (ev.at, stale)
                }
            };
            if stale {
                // Canceled or superseded timer: discard without delivering,
                // even past the horizon (it would never fire anyway).
                self.queue.pop();
                continue;
            }
            if at > until {
                return self.report(true);
            }
            self.step();
        }
    }

    fn report(&self, truncated: bool) -> RunReport {
        RunReport {
            delivered: self.delivered,
            finished_at: self.now,
            truncated,
            timers_fired: self.timers_fired,
            dropped: self.dropped,
            duplicated: self.duplicated,
            traced: 0,
        }
    }

    /// Total messages delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of undelivered events still queued (including stale timer
    /// entries awaiting discard).
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantDelay, FaultyDelay, UniformDelay};

    /// Counts deliveries and forwards `hops` times around a ring.
    struct Ring {
        n: usize,
        received: u32,
    }

    impl Actor for Ring {
        type Msg = u32;
        type Timer = ();
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: usize, hops: u32) {
            self.received += 1;
            if hops > 0 {
                let next = (ctx.me() + 1) % self.n;
                ctx.send(next, hops - 1);
            }
        }
    }

    fn ring(n: usize) -> Vec<Ring> {
        (0..n).map(|_| Ring { n, received: 0 }).collect()
    }

    #[test]
    fn ring_traversal_delivers_every_hop() {
        let mut sim = Simulator::new(ring(5), ConstantDelay(100), 1);
        sim.inject(0, 0, 10); // 10 forwards + initial delivery
        let r = sim.run();
        assert_eq!(r.delivered, 11);
        assert!(!r.truncated);
        assert_eq!(r.timers_fired, 0);
        assert_eq!(r.dropped, 0);
        assert_eq!(sim.now(), 1100);
        let total: u32 = sim.actors().map(|a| a.received).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn run_limited_truncates() {
        let mut sim = Simulator::new(ring(3), ConstantDelay(1), 1);
        sim.inject(0, 0, 1000);
        let r = sim.run_limited(10);
        assert!(r.truncated);
        assert_eq!(r.delivered, 10);
        assert_eq!(sim.pending(), 1);
    }

    /// Re-arms its tick forever: the queue never drains.
    struct Heartbeat {
        ticks: u32,
    }

    impl Actor for Heartbeat {
        type Msg = u32;
        type Timer = ();
        fn on_message(&mut self, ctx: &mut Context<'_, u32, ()>, _f: usize, _m: u32) {
            ctx.set_timer((), 100);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u32, ()>, _t: ()) {
            self.ticks += 1;
            ctx.set_timer((), 100);
        }
    }

    #[test]
    fn run_until_bounds_a_self_rearming_timer() {
        let mut sim = Simulator::new(vec![Heartbeat { ticks: 0 }], ConstantDelay(0), 0);
        sim.inject_at(0, 0, 0, 0);
        let r = sim.run_until(1_000);
        // Ticks at 100, 200, ..., 1000 (the horizon itself still fires).
        assert_eq!(sim.actor(0).ticks, 10);
        assert!(r.truncated, "the re-armed tick at 1100 remains queued");
        assert_eq!(sim.now(), 1_000);
        // A later horizon resumes where the first left off.
        sim.run_until(1_250);
        assert_eq!(sim.actor(0).ticks, 12);
    }

    #[test]
    fn run_until_discards_stale_timers_without_overshooting() {
        struct OneShot {
            fired: u32,
        }
        impl Actor for OneShot {
            type Msg = u32;
            type Timer = u32;
            fn on_message(&mut self, ctx: &mut Context<'_, u32, u32>, _f: usize, m: u32) {
                match m {
                    0 => ctx.set_timer(7, 50), // armed...
                    _ => ctx.cancel_timer(7),  // ...then canceled
                }
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, u32, u32>, _t: u32) {
                self.fired += 1;
            }
        }
        let mut sim = Simulator::new(vec![OneShot { fired: 0 }], ConstantDelay(0), 0);
        sim.inject_at(0, 0, 0, 0); // arms the timer for t = 50
        sim.inject_at(10, 0, 0, 1); // cancels it at t = 10
        sim.inject_at(80, 0, 0, 2); // past-horizon traffic
        let r = sim.run_until(60);
        assert_eq!(sim.actor(0).fired, 0, "canceled timer must not fire");
        assert!(r.truncated, "the t = 80 message is past the horizon");
        assert_eq!(r.delivered, 2);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(ring(7), UniformDelay::new(1, 1000), seed);
            sim.inject(0, 3, 50);
            sim.inject(0, 5, 50);
            let r = sim.run();
            (r.delivered, r.finished_at, sim.now())
        };
        assert_eq!(run(99), run(99));
        // Different seed ⇒ (almost surely) different finish time.
        assert_ne!(run(99).1, run(100).1);
    }

    #[test]
    fn inject_at_orders_by_time_then_seq() {
        struct Recorder {
            log: Vec<(Time, u32)>,
        }
        impl Actor for Recorder {
            type Msg = u32;
            type Timer = ();
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _f: usize, m: u32) {
                self.log.push((ctx.now(), m));
            }
        }
        let mut sim = Simulator::new(vec![Recorder { log: vec![] }], ConstantDelay(0), 0);
        sim.inject_at(50, 0, 0, 1);
        sim.inject_at(10, 0, 0, 2);
        sim.inject_at(50, 0, 0, 3);
        sim.run();
        assert_eq!(sim.actor(0).log, vec![(10, 2), (50, 1), (50, 3)]);
    }

    #[test]
    fn empty_queue_run_is_noop() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(1), 0);
        let r = sim.run();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.finished_at, 0);
        assert!(!sim.step());
    }

    #[test]
    fn add_actor_grows_population() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(1), 0);
        let i = sim.add_actor(Ring { n: 3, received: 0 });
        assert_eq!(i, 2);
        assert_eq!(sim.len(), 3);
    }

    #[test]
    fn add_actor_mid_run_receives_injections() {
        let mut sim = Simulator::new(ring(3), ConstantDelay(10), 4);
        sim.inject(0, 0, 5);
        let first = sim.run();
        assert_eq!(first.delivered, 6);
        let t = sim.now();
        assert!(t > 0);

        // Grow the population after deliveries have occurred, then drive
        // traffic through the new actor.
        let i = sim.add_actor(Ring { n: 4, received: 0 });
        assert_eq!(i, 3);
        sim.inject(0, i, 2); // i → 0 → 1, three deliveries total
        let second = sim.run();
        assert_eq!(second.delivered, 9);
        assert_eq!(sim.actor(i).received, 1);
        // Time keeps advancing monotonically across the growth boundary.
        assert_eq!(sim.now(), t + 30);
        assert!(!second.truncated);
    }

    #[test]
    fn add_actor_between_steps_keeps_queued_events() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(5), 0);
        sim.inject(0, 0, 3);
        assert!(sim.step()); // one delivery; more queued
        assert_eq!(sim.pending(), 1);
        let i = sim.add_actor(Ring { n: 2, received: 0 });
        // Queued pre-growth events still drain, untouched.
        let r = sim.run();
        assert_eq!(r.delivered, 4);
        assert_eq!(sim.actor(i).received, 0);
        assert_eq!(sim.len(), 3);
    }

    /// Re-sends a probe until an ack arrives, driven purely by timers.
    struct Prober {
        acked: bool,
        sent: u32,
    }

    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum ProbeTimer {
        Resend,
    }

    #[derive(Clone)]
    enum ProbeMsg {
        Probe,
        Ack,
    }

    impl Actor for Prober {
        type Msg = ProbeMsg;
        type Timer = ProbeTimer;

        fn on_message(
            &mut self,
            ctx: &mut Context<'_, ProbeMsg, ProbeTimer>,
            from: usize,
            msg: ProbeMsg,
        ) {
            match msg {
                ProbeMsg::Probe => {
                    if ctx.me() == 1 {
                        ctx.send(from, ProbeMsg::Ack);
                    } else {
                        // Actor 0 starting: fire first probe, arm retry.
                        self.sent += 1;
                        ctx.send(1, ProbeMsg::Probe);
                        ctx.set_timer(ProbeTimer::Resend, 500);
                    }
                }
                ProbeMsg::Ack => {
                    self.acked = true;
                    ctx.cancel_timer(ProbeTimer::Resend);
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, ProbeMsg, ProbeTimer>, _t: ProbeTimer) {
            if !self.acked {
                self.sent += 1;
                ctx.send(1, ProbeMsg::Probe);
                ctx.set_timer(ProbeTimer::Resend, 500);
            }
        }
    }

    fn probers() -> Vec<Prober> {
        vec![
            Prober {
                acked: false,
                sent: 0,
            },
            Prober {
                acked: false,
                sent: 0,
            },
        ]
    }

    #[test]
    fn canceled_timer_never_fires() {
        // Fast ack: the resend timer is canceled before its deadline.
        let mut sim = Simulator::new(probers(), ConstantDelay(10), 3);
        sim.inject(0, 0, ProbeMsg::Probe);
        let r = sim.run();
        assert!(sim.actor(0).acked);
        assert_eq!(sim.actor(0).sent, 1);
        assert_eq!(r.timers_fired, 0);
        // The stale timer entry drained without advancing time.
        assert_eq!(r.finished_at, 30);
    }

    #[test]
    fn timer_fires_and_retries_recover_from_drops() {
        // Drop every message whose fate roll says so; retries must still
        // land an ack eventually (drop_p well below 1).
        let faulty = FaultyDelay::new(ConstantDelay(10), 0.5, 0.0);
        let mut sim = Simulator::new(probers(), faulty, 12);
        sim.inject(0, 0, ProbeMsg::Probe);
        let r = sim.run_limited(10_000);
        assert!(!r.truncated);
        assert!(sim.actor(0).acked, "retries never landed");
        assert!(r.dropped > 0 || sim.actor(0).sent == 1);
        assert!(sim.actor(0).sent >= 1);
    }

    #[test]
    fn rearming_replaces_the_pending_deadline() {
        struct Rearm {
            fired_at: Vec<Time>,
        }
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        struct T;
        impl Actor for Rearm {
            type Msg = u32;
            type Timer = T;
            fn on_message(&mut self, ctx: &mut Context<'_, u32, T>, _f: usize, m: u32) {
                // Each delivery re-arms the same timer further out.
                ctx.set_timer(T, 1_000 + m as Time);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, u32, T>, _t: T) {
                self.fired_at.push(ctx.now());
            }
        }
        let mut sim = Simulator::new(vec![Rearm { fired_at: vec![] }], ConstantDelay(0), 0);
        sim.inject_at(0, 0, 0, 1);
        sim.inject_at(500, 0, 0, 2); // supersedes the first arming
        let r = sim.run();
        // Only the second arming fires: at 500 + 1002.
        assert_eq!(sim.actor(0).fired_at, vec![1502]);
        assert_eq!(r.timers_fired, 1);
        assert_eq!(r.delivered, 2);
    }

    #[test]
    fn duplicated_messages_deliver_twice() {
        let faulty = FaultyDelay::new(ConstantDelay(10), 0.0, 1.0);
        let mut sim = Simulator::new(ring(2), faulty, 7);
        sim.inject(0, 1, 0); // injection is reliable: one delivery
        let r = sim.run();
        assert_eq!(r.delivered, 1);
        assert_eq!(r.duplicated, 0);
        // An actor-sent message under dup_p = 1 lands twice.
        let faulty = FaultyDelay::new(ConstantDelay(10), 0.0, 1.0);
        let mut sim = Simulator::new(ring(2), faulty, 7);
        sim.inject(0, 0, 1); // actor 0 forwards one hop to actor 1
        let r = sim.run_limited(100);
        assert!(r.duplicated > 0);
        assert!(sim.actor(1).received >= 2);
    }
}
