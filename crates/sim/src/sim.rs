use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::delay::{DelayModel, Fate};
use crate::event::{Event, Payload, Time};

/// A simulated protocol participant.
///
/// Actors are addressed by dense indices `0..n`. They react to message
/// deliveries (and their own timer expiries) by mutating their state and
/// issuing further operations through the [`Context`]. Actors never block:
/// the paper's protocol is a pure event-driven state machine, and so is
/// this trait.
pub trait Actor {
    /// Message type exchanged between actors.
    type Msg;

    /// Timer identifier type. An actor arms timers for *itself* via
    /// [`Context::set_timer`]; actors without timers use `()`.
    type Timer: Clone + Eq + Hash;

    /// Handles a delivered message.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Timer>,
        from: usize,
        msg: Self::Msg,
    );

    /// Handles an expired timer previously armed with
    /// [`Context::set_timer`]. The default does nothing.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg, Self::Timer>, _timer: Self::Timer) {}
}

/// One operation an actor issued during a delivery, buffered until the
/// simulator applies it.
#[derive(Debug)]
pub(crate) enum Op<M, T> {
    Send(usize, M),
    SetTimer(T, Time),
    CancelTimer(T),
}

/// Handle an actor uses to interact with the simulation during a delivery.
#[derive(Debug)]
pub struct Context<'a, M, T = ()> {
    now: Time,
    me: usize,
    out: &'a mut Vec<Op<M, T>>,
}

impl<'a, M, T> Context<'a, M, T> {
    /// Current virtual time in microseconds.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Index of the actor handling the event.
    #[inline]
    pub fn me(&self) -> usize {
        self.me
    }

    /// Sends `msg` to actor `to`; its delivery (or loss) is decided by the
    /// delay model's [`Fate`].
    #[inline]
    pub fn send(&mut self, to: usize, msg: M) {
        self.out.push(Op::Send(to, msg));
    }

    /// Arms (or re-arms) timer `timer` to fire on this actor after `delay`
    /// microseconds. Re-arming an already-pending timer replaces it: only
    /// the latest deadline fires.
    #[inline]
    pub fn set_timer(&mut self, timer: T, delay: Time) {
        self.out.push(Op::SetTimer(timer, delay));
    }

    /// Cancels a pending timer. Canceling a timer that is not armed is a
    /// no-op, so callers need not track armed state precisely.
    #[inline]
    pub fn cancel_timer(&mut self, timer: T) {
        self.out.push(Op::CancelTimer(timer));
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of messages delivered.
    pub delivered: u64,
    /// Virtual time of the last delivery.
    pub finished_at: Time,
    /// Whether the run stopped because it hit the delivery limit rather
    /// than draining the event queue.
    pub truncated: bool,
    /// Number of timers that fired (canceled/superseded timers excluded).
    pub timers_fired: u64,
    /// Messages dropped by the delay model's [`Fate`].
    pub dropped: u64,
    /// Messages duplicated by the delay model's [`Fate`].
    pub duplicated: u64,
    /// Protocol trace records emitted during the run. The simulator itself
    /// never traces; trace-aware runtimes layered on top fill this in.
    pub traced: u64,
}

/// Seq values at or above this base are *virtual*: assigned provisionally
/// by one shard to a timer that both arms and fires inside the current
/// window. Virtual seqs order strictly after every real seq in the window
/// (mirroring the sequential scheduler, where an event created during the
/// window always outranks everything already queued) and are replaced by
/// true global seqs during the replay phase.
const VSEQ_BASE: u64 = 1 << 63;

/// What fired for one record of the parallel phase.
#[derive(Clone, Copy)]
enum RecordKind {
    Msg,
    Timer,
}

/// An operation captured during the parallel phase, replayed sequentially
/// to assign global seqs and draw the shared RNG in deterministic order.
/// Timer cancellations consume neither, so they are applied eagerly in the
/// parallel phase and never recorded.
enum BatchOp<M, T> {
    Send(usize, M),
    SetTimer { timer: T, deadline: Time, gen: u64 },
}

/// One delivery performed by a shard during the parallel phase: enough to
/// replay its global side effects (seq assignment, RNG draws, queue
/// pushes, counters) in exact sequential order.
struct Record<M, T> {
    at: Time,
    /// Real event seq for events extracted from the shard queue; a virtual
    /// seq (`>= VSEQ_BASE`) for timers that armed and fired in-window.
    seq: u64,
    actor: usize,
    kind: RecordKind,
    ops: Vec<BatchOp<M, T>>,
}

/// Key ordering the replay phase: pops lowest `(at, seq)` first. `shard`
/// and `idx` locate the record; they never participate in the ordering
/// because seqs are globally unique.
struct ReplayKey {
    at: Time,
    seq: u64,
    shard: u32,
    idx: u32,
}

impl PartialEq for ReplayKey {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for ReplayKey {}

impl Ord for ReplayKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ReplayKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One partition of the actor population with its own event queue and
/// armed-timer table. Actor `i` lives in shard `i % nshards` at local
/// index `i / nshards`.
struct Shard<A: Actor> {
    id: usize,
    nshards: usize,
    actors: Vec<A>,
    queue: BinaryHeap<Event<Payload<A::Msg, A::Timer>>>,
    /// Armed timers: `(actor, timer) → generation` of the live arming. A
    /// popped timer event fires only if its generation is still the armed
    /// one; otherwise it was canceled or superseded and is skipped
    /// silently. Generations are decided locally (shard-tagged), which is
    /// what lets staleness be resolved inside the parallel phase.
    armed: HashMap<(usize, A::Timer), u64>,
    /// Next arming generation: starts at `id`, strides by `nshards`, so
    /// generations are globally unique without cross-shard coordination.
    next_gen: u64,
    /// In-window events being processed by the current batch.
    batch: BinaryHeap<Event<Payload<A::Msg, A::Timer>>>,
    /// Deliveries performed by the current batch, in shard-local order.
    records: Vec<Record<A::Msg, A::Timer>>,
    /// Arming generation → record index, for timers that armed *and*
    /// fired inside the current window; the replay phase stitches these
    /// into the global order when it reaches the arming op.
    fired: HashMap<u64, usize>,
    /// Scratch buffer actors write their ops into during a delivery.
    ops_scratch: Vec<Op<A::Msg, A::Timer>>,
    /// Recycled per-record op buffers: drained during replay, returned
    /// here, reused by the next batch instead of reallocating.
    ops_pool: Vec<Vec<BatchOp<A::Msg, A::Timer>>>,
}

impl<A: Actor> Shard<A> {
    fn new(id: usize, nshards: usize) -> Self {
        Shard {
            id,
            nshards,
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            armed: HashMap::new(),
            next_gen: id as u64,
            batch: BinaryHeap::new(),
            records: Vec::new(),
            fired: HashMap::new(),
            ops_scratch: Vec::new(),
            ops_pool: Vec::new(),
        }
    }

    #[inline]
    fn take_gen(&mut self) -> u64 {
        let g = self.next_gen;
        self.next_gen += self.nshards as u64;
        g
    }

    /// Pops stale timer entries sitting at the head of the queue. They
    /// would never fire, so discarding them (even past a run horizon)
    /// changes nothing observable.
    fn discard_stale_heads(&mut self) {
        while let Some(ev) = self.queue.peek() {
            let stale = match &ev.msg {
                Payload::Timer(timer, gen) => self.armed.get(&(ev.to, timer.clone())) != Some(gen),
                Payload::Msg(_) => false,
            };
            if !stale {
                break;
            }
            self.queue.pop();
        }
    }

    /// Moves every queued event scheduled before `t1` into the batch heap;
    /// returns how many were moved.
    fn extract_window(&mut self, t1: Time) -> usize {
        let mut n = 0;
        while self.queue.peek().is_some_and(|ev| ev.at < t1) {
            let ev = self.queue.pop().expect("peeked event vanished");
            self.batch.push(ev);
            n += 1;
        }
        n
    }

    /// Returns extracted-but-unprocessed events to the queue (used when
    /// the caller decides to fall back to single-stepping).
    fn unextract(&mut self) {
        for ev in self.batch.drain() {
            self.queue.push(ev);
        }
    }

    /// Parallel phase: delivers every event in the batch heap to this
    /// shard's actors in `(at, seq)` order, recording the ops each
    /// delivery produced. Global effects (seq assignment, RNG draws,
    /// cross-shard pushes, counters) are deferred to the replay phase.
    ///
    /// With `defer` set (delay models without a positive latency floor),
    /// timers arming inside the window are *not* fired here; their queue
    /// entries are created during replay and picked up by the next batch,
    /// which is exactly when the sequential scheduler would reach them
    /// since all extracted events then share one timestamp. Without
    /// `defer`, in-window timers join the batch heap under a virtual seq.
    fn phase_a(&mut self, t1: Time, defer: bool) {
        debug_assert!(self.records.is_empty() && self.fired.is_empty());
        let mut vseq = VSEQ_BASE;
        while let Some(ev) = self.batch.pop() {
            let me = ev.to;
            debug_assert_eq!(me % self.nshards, self.id, "event routed to wrong shard");
            let local = me / self.nshards;
            debug_assert!(self.ops_scratch.is_empty());
            let (kind, virt_gen) = match ev.msg {
                Payload::Msg(msg) => {
                    let mut ctx = Context {
                        now: ev.at,
                        me,
                        out: &mut self.ops_scratch,
                    };
                    self.actors[local].on_message(&mut ctx, ev.from, msg);
                    (RecordKind::Msg, None)
                }
                Payload::Timer(timer, gen) => {
                    if self.armed.get(&(me, timer.clone())) != Some(&gen) {
                        continue; // stale: canceled or re-armed since
                    }
                    self.armed.remove(&(me, timer.clone()));
                    let mut ctx = Context {
                        now: ev.at,
                        me,
                        out: &mut self.ops_scratch,
                    };
                    self.actors[local].on_timer(&mut ctx, timer);
                    // Only in-window armings need gen → record linkage;
                    // extracted timer events already hold a real seq.
                    (RecordKind::Timer, (ev.seq >= VSEQ_BASE).then_some(gen))
                }
            };
            let mut ops = std::mem::take(&mut self.ops_scratch);
            let mut rec_ops = self.ops_pool.pop().unwrap_or_default();
            for op in ops.drain(..) {
                match op {
                    Op::Send(to, msg) => rec_ops.push(BatchOp::Send(to, msg)),
                    Op::SetTimer(timer, delay) => {
                        let gen = self.take_gen();
                        let deadline = ev.at + delay;
                        self.armed.insert((me, timer.clone()), gen);
                        if !defer && deadline < t1 {
                            vseq += 1;
                            self.batch.push(Event {
                                at: deadline,
                                seq: vseq,
                                from: me,
                                to: me,
                                msg: Payload::Timer(timer.clone(), gen),
                            });
                        }
                        rec_ops.push(BatchOp::SetTimer {
                            timer,
                            deadline,
                            gen,
                        });
                    }
                    Op::CancelTimer(timer) => {
                        self.armed.remove(&(me, timer));
                    }
                }
            }
            self.ops_scratch = ops;
            let idx = self.records.len();
            if let Some(g) = virt_gen {
                self.fired.insert(g, idx);
            }
            self.records.push(Record {
                at: ev.at,
                seq: ev.seq,
                actor: me,
                kind,
                ops: rec_ops,
            });
        }
    }
}

/// Deterministic discrete-event simulator over a set of actors.
///
/// The actor population is partitioned into shards (see
/// [`set_shards`](Self::set_shards)); with more than one shard, runs
/// proceed in conservative time windows of width `min_delay` whose
/// deliveries are fanned across shards in parallel, then *replayed*
/// sequentially in global `(time, seq)` order to assign event seqs and
/// draw the shared RNG exactly as the sequential scheduler would. Sharded
/// runs are therefore bit-identical to single-shard runs — same actor
/// states, same RNG stream, same report — regardless of shard or core
/// count.
///
/// See the [crate docs](crate) for an example.
pub struct Simulator<A: Actor, D> {
    shards: Vec<Shard<A>>,
    n_actors: usize,
    delay: D,
    rng: StdRng,
    now: Time,
    seq: u64,
    delivered: u64,
    timers_fired: u64,
    dropped: u64,
    duplicated: u64,
    ops: Vec<Op<A::Msg, A::Timer>>,
    replay: BinaryHeap<ReplayKey>,
}

impl<A: Actor, D> std::fmt::Debug for Simulator<A, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("actors", &self.n_actors)
            .field("shards", &self.shards.len())
            .field("now", &self.now)
            .field("seq", &self.seq)
            .field("delivered", &self.delivered)
            .field(
                "pending",
                &self.shards.iter().map(|s| s.queue.len()).sum::<usize>(),
            )
            .finish_non_exhaustive()
    }
}

impl<A: Actor, D: DelayModel> Simulator<A, D>
where
    A::Msg: Clone,
{
    /// Creates a simulator over `actors` with the given delay model and RNG
    /// seed. Starts with a single shard (pure sequential scheduling); see
    /// [`set_shards`](Self::set_shards).
    pub fn new(actors: Vec<A>, delay: D, seed: u64) -> Self {
        let n_actors = actors.len();
        let mut shard = Shard::new(0, 1);
        shard.actors = actors;
        Simulator {
            shards: vec![shard],
            n_actors,
            delay,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            seq: 0,
            delivered: 0,
            timers_fired: 0,
            dropped: 0,
            duplicated: 0,
            ops: Vec::new(),
            replay: BinaryHeap::new(),
        }
    }

    /// Repartitions the actor population into `n` shards.
    ///
    /// Must be called while the simulator is idle — before any event has
    /// been scheduled, or after a run fully drained the queue with no
    /// timer left armed. The partition is round-robin (`actor % n`), so
    /// actors added later with [`add_actor`](Self::add_actor) keep landing
    /// in the right shard.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or if events are queued or timers armed.
    pub fn set_shards(&mut self, n: usize) {
        assert!(n >= 1, "need at least one shard");
        assert!(
            self.shards
                .iter()
                .all(|s| s.queue.is_empty() && s.armed.is_empty()),
            "set_shards requires an idle simulator (empty queues, no armed timers)"
        );
        let old = std::mem::take(&mut self.shards);
        let old_n = old.len();
        let mut slots: Vec<Option<A>> = (0..self.n_actors).map(|_| None).collect();
        for (s, sh) in old.into_iter().enumerate() {
            for (j, a) in sh.actors.into_iter().enumerate() {
                slots[j * old_n + s] = Some(a);
            }
        }
        self.shards = (0..n).map(|s| Shard::new(s, n)).collect();
        for (i, a) in slots.into_iter().enumerate() {
            let a = a.expect("actor slot filled exactly once");
            self.shards[i % n].actors.push(a);
        }
    }

    /// Number of shards the actor population is partitioned into.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Current virtual time (µs).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of actors.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_actors
    }

    /// Whether the simulator has no actors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_actors == 0
    }

    /// Shared access to an actor's state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn actor(&self, i: usize) -> &A {
        assert!(i < self.n_actors, "actor index {i} out of range");
        let ns = self.shards.len();
        &self.shards[i % ns].actors[i / ns]
    }

    /// Exclusive access to an actor's state (for test instrumentation; the
    /// protocol itself only runs through deliveries).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn actor_mut(&mut self, i: usize) -> &mut A {
        assert!(i < self.n_actors, "actor index {i} out of range");
        let ns = self.shards.len();
        &mut self.shards[i % ns].actors[i / ns]
    }

    /// Iterates over all actors in index order.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        (0..self.n_actors).map(move |i| self.actor(i))
    }

    /// Appends a fresh actor and returns its index.
    ///
    /// Safe to call mid-run (between [`step`](Self::step)s or after a
    /// [`run`](Self::run) drained the queue): existing actors, queued
    /// events, virtual time, and the RNG stream are untouched, and the
    /// new actor can immediately receive injections. This is the growth
    /// path incremental network construction builds on.
    pub fn add_actor(&mut self, actor: A) -> usize {
        let i = self.n_actors;
        let ns = self.shards.len();
        self.shards[i % ns].actors.push(actor);
        debug_assert_eq!(self.shards[i % ns].actors.len(), i / ns + 1);
        self.n_actors += 1;
        i
    }

    /// Schedules delivery of `msg` to `to` at the current time plus the
    /// model latency, as if sent by `from`.
    ///
    /// Injections are driver-level and always reliable: the delay model's
    /// [`Fate`] applies only to messages actors send, never to these.
    ///
    /// # Panics
    ///
    /// Panics if `to` or `from` is out of range.
    pub fn inject(&mut self, from: usize, to: usize, msg: A::Msg) {
        assert!(from < self.n_actors && to < self.n_actors);
        let d = self.delay.delay(from, to, &mut self.rng);
        self.push_event(self.now + d, from, to, Payload::Msg(msg));
    }

    /// Schedules delivery of `msg` at absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at < self.now()` or an index is out of range.
    pub fn inject_at(&mut self, at: Time, from: usize, to: usize, msg: A::Msg) {
        assert!(from < self.n_actors && to < self.n_actors);
        assert!(at >= self.now, "cannot schedule in the past");
        self.push_event(at, from, to, Payload::Msg(msg));
    }

    fn push_event(&mut self, at: Time, from: usize, to: usize, msg: Payload<A::Msg, A::Timer>) {
        let s = to % self.shards.len();
        self.shards[s].queue.push(Event {
            at,
            seq: self.seq,
            from,
            to,
            msg,
        });
        self.seq += 1;
    }

    /// Applies the operations `me` buffered during one delivery.
    fn apply_ops(&mut self, me: usize) {
        let ns = self.shards.len();
        let mut ops = std::mem::take(&mut self.ops);
        for op in ops.drain(..) {
            match op {
                Op::Send(to, msg) => {
                    assert!(to < self.n_actors, "send to unknown actor {to}");
                    match self.delay.fate(me, to, &mut self.rng) {
                        Fate::Deliver(d) => {
                            self.push_event(self.now + d, me, to, Payload::Msg(msg))
                        }
                        Fate::Drop => self.dropped += 1,
                        Fate::Duplicate(d1, d2) => {
                            self.duplicated += 1;
                            self.push_event(self.now + d1, me, to, Payload::Msg(msg.clone()));
                            self.push_event(self.now + d2, me, to, Payload::Msg(msg));
                        }
                    }
                }
                Op::SetTimer(timer, delay) => {
                    let gen = self.shards[me % ns].take_gen();
                    self.push_event(self.now + delay, me, me, Payload::Timer(timer.clone(), gen));
                    // Overwrites any prior arming: the superseded queue
                    // entry's generation no longer matches and dies at pop.
                    self.shards[me % ns].armed.insert((me, timer), gen);
                }
                Op::CancelTimer(timer) => {
                    // The queue entry (if any) becomes stale and is skipped.
                    self.shards[me % ns].armed.remove(&(me, timer));
                }
            }
        }
        self.ops = ops;
    }

    /// Delivers a single event (message or live timer); returns `false`
    /// when the queue is empty. Canceled or superseded timer events are
    /// discarded without advancing virtual time or any counter.
    pub fn step(&mut self) -> bool {
        loop {
            let mut best: Option<(Time, u64, usize)> = None;
            for (s, sh) in self.shards.iter().enumerate() {
                if let Some(ev) = sh.queue.peek() {
                    if best.is_none_or(|(a, q, _)| (ev.at, ev.seq) < (a, q)) {
                        best = Some((ev.at, ev.seq, s));
                    }
                }
            }
            let Some((_, _, s)) = best else {
                return false;
            };
            let ev = self.shards[s].queue.pop().expect("peeked event vanished");
            debug_assert!(ev.at >= self.now, "time went backwards");
            let me = ev.to;
            let local = me / self.shards.len();
            debug_assert!(self.ops.is_empty());
            match ev.msg {
                Payload::Msg(msg) => {
                    self.now = ev.at;
                    self.delivered += 1;
                    let mut ctx = Context {
                        now: ev.at,
                        me,
                        out: &mut self.ops,
                    };
                    self.shards[s].actors[local].on_message(&mut ctx, ev.from, msg);
                }
                Payload::Timer(timer, gen) => {
                    let sh = &mut self.shards[s];
                    if sh.armed.get(&(me, timer.clone())) != Some(&gen) {
                        continue; // stale: canceled or re-armed since
                    }
                    sh.armed.remove(&(me, timer.clone()));
                    self.now = ev.at;
                    self.timers_fired += 1;
                    let mut ctx = Context {
                        now: ev.at,
                        me,
                        out: &mut self.ops,
                    };
                    self.shards[s].actors[local].on_timer(&mut ctx, timer);
                }
            }
            self.apply_ops(me);
            return true;
        }
    }

    fn report(&self, truncated: bool) -> RunReport {
        RunReport {
            delivered: self.delivered,
            finished_at: self.now,
            truncated,
            timers_fired: self.timers_fired,
            dropped: self.dropped,
            duplicated: self.duplicated,
            traced: 0,
        }
    }

    /// Earliest scheduled event time across all shards, stale or not.
    fn min_head_time(&self) -> Option<Time> {
        self.shards
            .iter()
            .filter_map(|s| s.queue.peek().map(|ev| ev.at))
            .min()
    }

    /// Total messages delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of undelivered events still queued (including stale timer
    /// entries awaiting discard).
    #[inline]
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }
}

impl<A, D: DelayModel> Simulator<A, D>
where
    A: Actor + Send,
    A::Msg: Clone + Send,
    A::Timer: Send,
{
    /// Runs until the event queue drains. Equivalent to
    /// [`run_limited`](Self::run_limited) with `u64::MAX`.
    pub fn run(&mut self) -> RunReport {
        self.run_limited(u64::MAX)
    }

    /// Runs until the queue drains or `max_deliveries` further events have
    /// been handled, whichever comes first.
    ///
    /// The limit is a safety net for liveness tests: the join protocol is
    /// proven to terminate, so hitting the limit indicates a bug. With a
    /// single shard the limit is exact; with multiple shards a time
    /// window is committed atomically, so timers arming *inside* the
    /// final window may push the count slightly past the limit.
    pub fn run_limited(&mut self, max_deliveries: u64) -> RunReport {
        if self.shards.len() == 1 {
            let mut n = 0u64;
            while n < max_deliveries {
                if !self.step() {
                    return self.report(false);
                }
                n += 1;
            }
            return self.report(self.pending() > 0);
        }
        let defer = self.delay.min_delay() == 0;
        let mut n = 0u64;
        while n < max_deliveries {
            let Some(t0) = self.min_head_time() else {
                return self.report(false);
            };
            let t1 = t0.saturating_add(self.delay.min_delay().max(1));
            let mut extracted = 0u64;
            for sh in &mut self.shards {
                extracted += sh.extract_window(t1) as u64;
            }
            if extracted > max_deliveries - n {
                // Too close to the cap to commit a whole window: return
                // the events and finish with exact single steps.
                for sh in &mut self.shards {
                    sh.unextract();
                }
                if !self.step() {
                    return self.report(false);
                }
                n += 1;
                continue;
            }
            n += self.process_batch(t1, defer);
        }
        self.report(self.pending() > 0)
    }

    /// Runs until the queue drains or the next live event lies past
    /// virtual time `until`, whichever comes first. Events scheduled at
    /// exactly `until` are still delivered.
    ///
    /// This is the horizon for protocols with self-re-arming periodic
    /// timers (the failure detector): their queue never drains, so
    /// [`run`](Self::run) would not terminate. The report's `truncated`
    /// flag is set when undelivered events remain past the horizon.
    pub fn run_until(&mut self, until: Time) -> RunReport {
        let sharded = self.shards.len() > 1;
        let defer = self.delay.min_delay() == 0;
        loop {
            for sh in &mut self.shards {
                // Canceled or superseded timers: discard without
                // delivering, even past the horizon (they would never
                // fire anyway).
                sh.discard_stale_heads();
            }
            let Some(t0) = self.min_head_time() else {
                return self.report(false);
            };
            if t0 > until {
                return self.report(true);
            }
            if !sharded {
                self.step();
                continue;
            }
            let t1 = t0
                .saturating_add(self.delay.min_delay().max(1))
                .min(until.saturating_add(1));
            for sh in &mut self.shards {
                sh.extract_window(t1);
            }
            self.process_batch(t1, defer);
        }
    }

    /// Processes one extracted time window: parallel per-shard delivery,
    /// then sequential replay. Returns the number of deliveries made.
    fn process_batch(&mut self, t1: Time, defer: bool) -> u64 {
        let shards = std::mem::take(&mut self.shards);
        self.shards = shards
            .into_par_iter()
            .map(|mut sh| {
                sh.phase_a(t1, defer);
                sh
            })
            .collect();
        self.replay_batch(t1, defer)
    }

    /// Sequential replay: walks the window's deliveries in global
    /// `(at, seq)` order, assigning true seqs and drawing the shared RNG
    /// exactly as the sequential scheduler would have. This is what makes
    /// sharded runs bit-identical to single-shard runs.
    fn replay_batch(&mut self, t1: Time, defer: bool) -> u64 {
        debug_assert!(self.replay.is_empty());
        let mut heap = std::mem::take(&mut self.replay);
        for (s, sh) in self.shards.iter().enumerate() {
            for (i, rec) in sh.records.iter().enumerate() {
                if rec.seq < VSEQ_BASE {
                    heap.push(ReplayKey {
                        at: rec.at,
                        seq: rec.seq,
                        shard: s as u32,
                        idx: i as u32,
                    });
                }
            }
        }
        let ns = self.shards.len();
        let mut done = 0u64;
        while let Some(key) = heap.pop() {
            let s = key.shard as usize;
            let (at, actor, kind, mut ops) = {
                let rec = &mut self.shards[s].records[key.idx as usize];
                (rec.at, rec.actor, rec.kind, std::mem::take(&mut rec.ops))
            };
            debug_assert!(at >= self.now, "replay time went backwards");
            self.now = at;
            match kind {
                RecordKind::Msg => self.delivered += 1,
                RecordKind::Timer => self.timers_fired += 1,
            }
            done += 1;
            for op in ops.drain(..) {
                match op {
                    BatchOp::Send(to, msg) => {
                        assert!(to < self.n_actors, "send to unknown actor {to}");
                        match self.delay.fate(actor, to, &mut self.rng) {
                            Fate::Deliver(d) => {
                                debug_assert!(
                                    defer || at + d >= t1,
                                    "delay model latency below its min_delay floor"
                                );
                                self.push_event(at + d, actor, to, Payload::Msg(msg));
                            }
                            Fate::Drop => self.dropped += 1,
                            Fate::Duplicate(d1, d2) => {
                                self.duplicated += 1;
                                self.push_event(at + d1, actor, to, Payload::Msg(msg.clone()));
                                self.push_event(at + d2, actor, to, Payload::Msg(msg));
                            }
                        }
                    }
                    BatchOp::SetTimer {
                        timer,
                        deadline,
                        gen,
                    } => {
                        if defer || deadline >= t1 {
                            // Future (or deferred same-timestamp) timer:
                            // a real queue entry, like the sequential
                            // scheduler would push.
                            self.push_event(deadline, actor, actor, Payload::Timer(timer, gen));
                        } else {
                            // In-window timer: it consumed its seq here
                            // but was handled (or superseded) inside the
                            // window; if it fired, stitch its record into
                            // the replay at its true global position.
                            let seq = self.seq;
                            self.seq += 1;
                            if let Some(idx) = self.shards[actor % ns].fired.remove(&gen) {
                                heap.push(ReplayKey {
                                    at: deadline,
                                    seq,
                                    shard: (actor % ns) as u32,
                                    idx: idx as u32,
                                });
                            }
                        }
                    }
                }
            }
            // Recycle the drained op buffer for the next batch.
            self.shards[s].ops_pool.push(ops);
        }
        for sh in &mut self.shards {
            sh.records.clear();
            sh.fired.clear();
        }
        self.replay = heap;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantDelay, FaultyDelay, UniformDelay};

    /// Counts deliveries and forwards `hops` times around a ring.
    struct Ring {
        n: usize,
        received: u32,
    }

    impl Actor for Ring {
        type Msg = u32;
        type Timer = ();
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: usize, hops: u32) {
            self.received += 1;
            if hops > 0 {
                let next = (ctx.me() + 1) % self.n;
                ctx.send(next, hops - 1);
            }
        }
    }

    fn ring(n: usize) -> Vec<Ring> {
        (0..n).map(|_| Ring { n, received: 0 }).collect()
    }

    #[test]
    fn ring_traversal_delivers_every_hop() {
        let mut sim = Simulator::new(ring(5), ConstantDelay(100), 1);
        sim.inject(0, 0, 10); // 10 forwards + initial delivery
        let r = sim.run();
        assert_eq!(r.delivered, 11);
        assert!(!r.truncated);
        assert_eq!(r.timers_fired, 0);
        assert_eq!(r.dropped, 0);
        assert_eq!(sim.now(), 1100);
        let total: u32 = sim.actors().map(|a| a.received).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn run_limited_truncates() {
        let mut sim = Simulator::new(ring(3), ConstantDelay(1), 1);
        sim.inject(0, 0, 1000);
        let r = sim.run_limited(10);
        assert!(r.truncated);
        assert_eq!(r.delivered, 10);
        assert_eq!(sim.pending(), 1);
    }

    /// Re-arms its tick forever: the queue never drains.
    struct Heartbeat {
        ticks: u32,
    }

    impl Actor for Heartbeat {
        type Msg = u32;
        type Timer = ();
        fn on_message(&mut self, ctx: &mut Context<'_, u32, ()>, _f: usize, _m: u32) {
            ctx.set_timer((), 100);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u32, ()>, _t: ()) {
            self.ticks += 1;
            ctx.set_timer((), 100);
        }
    }

    #[test]
    fn run_until_bounds_a_self_rearming_timer() {
        let mut sim = Simulator::new(vec![Heartbeat { ticks: 0 }], ConstantDelay(0), 0);
        sim.inject_at(0, 0, 0, 0);
        let r = sim.run_until(1_000);
        // Ticks at 100, 200, ..., 1000 (the horizon itself still fires).
        assert_eq!(sim.actor(0).ticks, 10);
        assert!(r.truncated, "the re-armed tick at 1100 remains queued");
        assert_eq!(sim.now(), 1_000);
        // A later horizon resumes where the first left off.
        sim.run_until(1_250);
        assert_eq!(sim.actor(0).ticks, 12);
    }

    #[test]
    fn run_until_discards_stale_timers_without_overshooting() {
        struct OneShot {
            fired: u32,
        }
        impl Actor for OneShot {
            type Msg = u32;
            type Timer = u32;
            fn on_message(&mut self, ctx: &mut Context<'_, u32, u32>, _f: usize, m: u32) {
                match m {
                    0 => ctx.set_timer(7, 50), // armed...
                    _ => ctx.cancel_timer(7),  // ...then canceled
                }
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, u32, u32>, _t: u32) {
                self.fired += 1;
            }
        }
        let mut sim = Simulator::new(vec![OneShot { fired: 0 }], ConstantDelay(0), 0);
        sim.inject_at(0, 0, 0, 0); // arms the timer for t = 50
        sim.inject_at(10, 0, 0, 1); // cancels it at t = 10
        sim.inject_at(80, 0, 0, 2); // past-horizon traffic
        let r = sim.run_until(60);
        assert_eq!(sim.actor(0).fired, 0, "canceled timer must not fire");
        assert!(r.truncated, "the t = 80 message is past the horizon");
        assert_eq!(r.delivered, 2);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(ring(7), UniformDelay::new(1, 1000), seed);
            sim.inject(0, 3, 50);
            sim.inject(0, 5, 50);
            let r = sim.run();
            (r.delivered, r.finished_at, sim.now())
        };
        assert_eq!(run(99), run(99));
        // Different seed ⇒ (almost surely) different finish time.
        assert_ne!(run(99).1, run(100).1);
    }

    #[test]
    fn inject_at_orders_by_time_then_seq() {
        struct Recorder {
            log: Vec<(Time, u32)>,
        }
        impl Actor for Recorder {
            type Msg = u32;
            type Timer = ();
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _f: usize, m: u32) {
                self.log.push((ctx.now(), m));
            }
        }
        let mut sim = Simulator::new(vec![Recorder { log: vec![] }], ConstantDelay(0), 0);
        sim.inject_at(50, 0, 0, 1);
        sim.inject_at(10, 0, 0, 2);
        sim.inject_at(50, 0, 0, 3);
        sim.run();
        assert_eq!(sim.actor(0).log, vec![(10, 2), (50, 1), (50, 3)]);
    }

    #[test]
    fn empty_queue_run_is_noop() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(1), 0);
        let r = sim.run();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.finished_at, 0);
        assert!(!sim.step());
    }

    #[test]
    fn add_actor_grows_population() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(1), 0);
        let i = sim.add_actor(Ring { n: 3, received: 0 });
        assert_eq!(i, 2);
        assert_eq!(sim.len(), 3);
    }

    #[test]
    fn add_actor_mid_run_receives_injections() {
        let mut sim = Simulator::new(ring(3), ConstantDelay(10), 4);
        sim.inject(0, 0, 5);
        let first = sim.run();
        assert_eq!(first.delivered, 6);
        let t = sim.now();
        assert!(t > 0);

        // Grow the population after deliveries have occurred, then drive
        // traffic through the new actor.
        let i = sim.add_actor(Ring { n: 4, received: 0 });
        assert_eq!(i, 3);
        sim.inject(0, i, 2); // i → 0 → 1, three deliveries total
        let second = sim.run();
        assert_eq!(second.delivered, 9);
        assert_eq!(sim.actor(i).received, 1);
        // Time keeps advancing monotonically across the growth boundary.
        assert_eq!(sim.now(), t + 30);
        assert!(!second.truncated);
    }

    #[test]
    fn add_actor_between_steps_keeps_queued_events() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(5), 0);
        sim.inject(0, 0, 3);
        assert!(sim.step()); // one delivery; more queued
        assert_eq!(sim.pending(), 1);
        let i = sim.add_actor(Ring { n: 2, received: 0 });
        // Queued pre-growth events still drain, untouched.
        let r = sim.run();
        assert_eq!(r.delivered, 4);
        assert_eq!(sim.actor(i).received, 0);
        assert_eq!(sim.len(), 3);
    }

    /// Re-sends a probe until an ack arrives, driven purely by timers.
    struct Prober {
        acked: bool,
        sent: u32,
    }

    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum ProbeTimer {
        Resend,
    }

    #[derive(Clone)]
    enum ProbeMsg {
        Probe,
        Ack,
    }

    impl Actor for Prober {
        type Msg = ProbeMsg;
        type Timer = ProbeTimer;

        fn on_message(
            &mut self,
            ctx: &mut Context<'_, ProbeMsg, ProbeTimer>,
            from: usize,
            msg: ProbeMsg,
        ) {
            match msg {
                ProbeMsg::Probe => {
                    if ctx.me() == 1 {
                        ctx.send(from, ProbeMsg::Ack);
                    } else {
                        // Actor 0 starting: fire first probe, arm retry.
                        self.sent += 1;
                        ctx.send(1, ProbeMsg::Probe);
                        ctx.set_timer(ProbeTimer::Resend, 500);
                    }
                }
                ProbeMsg::Ack => {
                    self.acked = true;
                    ctx.cancel_timer(ProbeTimer::Resend);
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, ProbeMsg, ProbeTimer>, _t: ProbeTimer) {
            if !self.acked {
                self.sent += 1;
                ctx.send(1, ProbeMsg::Probe);
                ctx.set_timer(ProbeTimer::Resend, 500);
            }
        }
    }

    fn probers() -> Vec<Prober> {
        vec![
            Prober {
                acked: false,
                sent: 0,
            },
            Prober {
                acked: false,
                sent: 0,
            },
        ]
    }

    #[test]
    fn canceled_timer_never_fires() {
        // Fast ack: the resend timer is canceled before its deadline.
        let mut sim = Simulator::new(probers(), ConstantDelay(10), 3);
        sim.inject(0, 0, ProbeMsg::Probe);
        let r = sim.run();
        assert!(sim.actor(0).acked);
        assert_eq!(sim.actor(0).sent, 1);
        assert_eq!(r.timers_fired, 0);
        // The stale timer entry drained without advancing time.
        assert_eq!(r.finished_at, 30);
    }

    #[test]
    fn timer_fires_and_retries_recover_from_drops() {
        // Drop every message whose fate roll says so; retries must still
        // land an ack eventually (drop_p well below 1).
        let faulty = FaultyDelay::new(ConstantDelay(10), 0.5, 0.0);
        let mut sim = Simulator::new(probers(), faulty, 12);
        sim.inject(0, 0, ProbeMsg::Probe);
        let r = sim.run_limited(10_000);
        assert!(!r.truncated);
        assert!(sim.actor(0).acked, "retries never landed");
        assert!(r.dropped > 0 || sim.actor(0).sent == 1);
        assert!(sim.actor(0).sent >= 1);
    }

    #[test]
    fn rearming_replaces_the_pending_deadline() {
        struct Rearm {
            fired_at: Vec<Time>,
        }
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        struct T;
        impl Actor for Rearm {
            type Msg = u32;
            type Timer = T;
            fn on_message(&mut self, ctx: &mut Context<'_, u32, T>, _f: usize, m: u32) {
                // Each delivery re-arms the same timer further out.
                ctx.set_timer(T, 1_000 + m as Time);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, u32, T>, _t: T) {
                self.fired_at.push(ctx.now());
            }
        }
        let mut sim = Simulator::new(vec![Rearm { fired_at: vec![] }], ConstantDelay(0), 0);
        sim.inject_at(0, 0, 0, 1);
        sim.inject_at(500, 0, 0, 2); // supersedes the first arming
        let r = sim.run();
        // Only the second arming fires: at 500 + 1002.
        assert_eq!(sim.actor(0).fired_at, vec![1502]);
        assert_eq!(r.timers_fired, 1);
        assert_eq!(r.delivered, 2);
    }

    #[test]
    fn duplicated_messages_deliver_twice() {
        let faulty = FaultyDelay::new(ConstantDelay(10), 0.0, 1.0);
        let mut sim = Simulator::new(ring(2), faulty, 7);
        sim.inject(0, 1, 0); // injection is reliable: one delivery
        let r = sim.run();
        assert_eq!(r.delivered, 1);
        assert_eq!(r.duplicated, 0);
        // An actor-sent message under dup_p = 1 lands twice.
        let faulty = FaultyDelay::new(ConstantDelay(10), 0.0, 1.0);
        let mut sim = Simulator::new(ring(2), faulty, 7);
        sim.inject(0, 0, 1); // actor 0 forwards one hop to actor 1
        let r = sim.run_limited(100);
        assert!(r.duplicated > 0);
        assert!(sim.actor(1).received >= 2);
    }

    /// Sharded scheduling must be bit-identical to sequential: same
    /// reports, same actor states, same finish times, for every shard
    /// count and every delay model shape (constant, jittered, faulty,
    /// zero-floor).
    mod shard_parity {
        use super::*;

        fn ring_outcome(shards: usize, seed: u64) -> (RunReport, Time, Vec<u32>) {
            let mut sim = Simulator::new(ring(9), UniformDelay::new(1, 1_000), seed);
            sim.set_shards(shards);
            sim.inject(0, 3, 40);
            sim.inject(0, 5, 40);
            let r = sim.run();
            let st = sim.actors().map(|a| a.received).collect();
            (r, sim.now(), st)
        }

        #[test]
        fn ring_runs_match_sequential_for_all_shard_counts() {
            let base = ring_outcome(1, 42);
            for shards in [2, 3, 4, 8] {
                assert_eq!(ring_outcome(shards, 42), base, "shards = {shards}");
            }
        }

        fn prober_outcome(shards: usize) -> (RunReport, Time, u32, bool) {
            let faulty = FaultyDelay::new(ConstantDelay(10), 0.5, 0.1);
            let mut sim = Simulator::new(probers(), faulty, 12);
            sim.set_shards(shards);
            sim.inject(0, 0, ProbeMsg::Probe);
            let r = sim.run_limited(10_000);
            (r, sim.now(), sim.actor(0).sent, sim.actor(0).acked)
        }

        #[test]
        fn faulty_timer_retries_match_sequential() {
            // Timers, cancellations, drops, and duplicates all cross the
            // window machinery here (constant floor ⇒ in-window timers).
            let base = prober_outcome(1);
            assert!(base.3, "baseline must converge");
            for shards in [2, 4] {
                assert_eq!(prober_outcome(shards), base, "shards = {shards}");
            }
        }

        fn heartbeat_outcome(shards: usize) -> (RunReport, u32, u32) {
            // Zero-floor delay model: exercises the defer path where every
            // window is a single timestamp.
            let mut sim = Simulator::new(
                vec![Heartbeat { ticks: 0 }, Heartbeat { ticks: 0 }],
                ConstantDelay(0),
                0,
            );
            sim.set_shards(shards);
            sim.inject_at(0, 0, 0, 0);
            sim.inject_at(40, 1, 1, 0);
            let r = sim.run_until(1_000);
            (r, sim.actor(0).ticks, sim.actor(1).ticks)
        }

        #[test]
        fn zero_floor_run_until_matches_sequential() {
            let base = heartbeat_outcome(1);
            assert_eq!(base.1, 10);
            for shards in [2, 3] {
                assert_eq!(heartbeat_outcome(shards), base, "shards = {shards}");
            }
        }

        #[test]
        fn rearm_and_supersede_match_sequential_when_sharded() {
            let run = |shards: usize| {
                let mut sim = Simulator::new(ring(2), ConstantDelay(5), 0);
                sim.set_shards(shards);
                sim.inject(0, 0, 6);
                let r = sim.run();
                (r, sim.now())
            };
            assert_eq!(run(1), run(2));
        }

        #[test]
        fn set_shards_rejects_a_busy_simulator() {
            let mut sim = Simulator::new(ring(3), ConstantDelay(1), 0);
            sim.inject(0, 0, 1);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sim.set_shards(2);
            }));
            assert!(err.is_err(), "set_shards must reject queued events");
        }

        #[test]
        fn add_actor_lands_in_the_round_robin_shard() {
            let mut sim = Simulator::new(ring(4), ConstantDelay(7), 0);
            sim.set_shards(3);
            let i = sim.add_actor(Ring { n: 5, received: 0 });
            assert_eq!(i, 4);
            // Round-trips through the shard layout.
            assert_eq!(sim.actor(i).received, 0);
            sim.inject(0, i, 1);
            let r = sim.run();
            assert_eq!(r.delivered, 2);
            assert_eq!(sim.actor(i).received, 1);
        }
    }
}
