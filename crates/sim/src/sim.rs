use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::delay::DelayModel;
use crate::event::{Event, Time};

/// A simulated protocol participant.
///
/// Actors are addressed by dense indices `0..n`. They react to message
/// deliveries by mutating their state and sending further messages through
/// the [`Context`]. Actors never block: the paper's protocol is a pure
/// message-driven state machine, and so is this trait.
pub trait Actor {
    /// Message type exchanged between actors.
    type Msg;

    /// Handles a delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: usize, msg: Self::Msg);
}

/// Handle an actor uses to interact with the simulation during a delivery.
#[derive(Debug)]
pub struct Context<'a, M> {
    now: Time,
    me: usize,
    out: &'a mut Vec<(usize, M)>,
}

impl<'a, M> Context<'a, M> {
    /// Current virtual time in microseconds.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Index of the actor handling the message.
    #[inline]
    pub fn me(&self) -> usize {
        self.me
    }

    /// Sends `msg` to actor `to`; it will be delivered after the delay
    /// model's latency.
    #[inline]
    pub fn send(&mut self, to: usize, msg: M) {
        self.out.push((to, msg));
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of messages delivered.
    pub delivered: u64,
    /// Virtual time of the last delivery.
    pub finished_at: Time,
    /// Whether the run stopped because it hit the delivery limit rather
    /// than draining the event queue.
    pub truncated: bool,
}

/// Deterministic discrete-event simulator over a set of actors.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Simulator<A: Actor, D> {
    actors: Vec<A>,
    delay: D,
    rng: StdRng,
    queue: BinaryHeap<Event<A::Msg>>,
    now: Time,
    seq: u64,
    delivered: u64,
    outbox: Vec<(usize, A::Msg)>,
}

impl<A: Actor, D: DelayModel> Simulator<A, D> {
    /// Creates a simulator over `actors` with the given delay model and RNG
    /// seed.
    pub fn new(actors: Vec<A>, delay: D, seed: u64) -> Self {
        Simulator {
            actors,
            delay,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            delivered: 0,
            outbox: Vec::new(),
        }
    }

    /// Current virtual time (µs).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of actors.
    #[inline]
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// Whether the simulator has no actors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Shared access to an actor's state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn actor(&self, i: usize) -> &A {
        &self.actors[i]
    }

    /// Exclusive access to an actor's state (for test instrumentation; the
    /// protocol itself only runs through deliveries).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn actor_mut(&mut self, i: usize) -> &mut A {
        &mut self.actors[i]
    }

    /// Iterates over all actors.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.actors.iter()
    }

    /// Appends a fresh actor and returns its index.
    ///
    /// Safe to call mid-run (between [`step`](Self::step)s or after a
    /// [`run`](Self::run) drained the queue): existing actors, queued
    /// events, virtual time, and the RNG stream are untouched, and the
    /// new actor can immediately receive injections. This is the growth
    /// path incremental network construction builds on.
    pub fn add_actor(&mut self, actor: A) -> usize {
        self.actors.push(actor);
        self.actors.len() - 1
    }

    /// Schedules delivery of `msg` to `to` at the current time plus the
    /// model latency, as if sent by `from`.
    ///
    /// # Panics
    ///
    /// Panics if `to` or `from` is out of range.
    pub fn inject(&mut self, from: usize, to: usize, msg: A::Msg) {
        assert!(from < self.actors.len() && to < self.actors.len());
        let d = self.delay.delay(from, to, &mut self.rng);
        self.push_event(self.now + d, from, to, msg);
    }

    /// Schedules delivery of `msg` at absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at < self.now()` or an index is out of range.
    pub fn inject_at(&mut self, at: Time, from: usize, to: usize, msg: A::Msg) {
        assert!(from < self.actors.len() && to < self.actors.len());
        assert!(at >= self.now, "cannot schedule in the past");
        self.push_event(at, from, to, msg);
    }

    fn push_event(&mut self, at: Time, from: usize, to: usize, msg: A::Msg) {
        self.queue.push(Event {
            at,
            seq: self.seq,
            from,
            to,
            msg,
        });
        self.seq += 1;
    }

    /// Delivers a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.delivered += 1;
        let me = ev.to;
        debug_assert!(self.outbox.is_empty());
        let mut ctx = Context {
            now: self.now,
            me,
            out: &mut self.outbox,
        };
        self.actors[me].on_message(&mut ctx, ev.from, ev.msg);
        // Drain the outbox into the queue with sampled latencies.
        let mut outbox = std::mem::take(&mut self.outbox);
        for (to, msg) in outbox.drain(..) {
            assert!(to < self.actors.len(), "send to unknown actor {to}");
            let d = self.delay.delay(me, to, &mut self.rng);
            self.push_event(self.now + d, me, to, msg);
        }
        self.outbox = outbox;
        true
    }

    /// Runs until the event queue drains. Equivalent to
    /// [`run_limited`](Self::run_limited) with `u64::MAX`.
    pub fn run(&mut self) -> RunReport {
        self.run_limited(u64::MAX)
    }

    /// Runs until the queue drains or `max_deliveries` further messages have
    /// been delivered, whichever comes first.
    ///
    /// The limit is a safety net for liveness tests: the join protocol is
    /// proven to terminate, so hitting the limit indicates a bug.
    pub fn run_limited(&mut self, max_deliveries: u64) -> RunReport {
        let mut n = 0u64;
        while n < max_deliveries {
            if !self.step() {
                return RunReport {
                    delivered: self.delivered,
                    finished_at: self.now,
                    truncated: false,
                };
            }
            n += 1;
        }
        RunReport {
            delivered: self.delivered,
            finished_at: self.now,
            truncated: !self.queue.is_empty(),
        }
    }

    /// Total messages delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of undelivered events still queued.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantDelay, UniformDelay};

    /// Counts deliveries and forwards `hops` times around a ring.
    struct Ring {
        n: usize,
        received: u32,
    }

    impl Actor for Ring {
        type Msg = u32;
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _from: usize, hops: u32) {
            self.received += 1;
            if hops > 0 {
                let next = (ctx.me() + 1) % self.n;
                ctx.send(next, hops - 1);
            }
        }
    }

    fn ring(n: usize) -> Vec<Ring> {
        (0..n).map(|_| Ring { n, received: 0 }).collect()
    }

    #[test]
    fn ring_traversal_delivers_every_hop() {
        let mut sim = Simulator::new(ring(5), ConstantDelay(100), 1);
        sim.inject(0, 0, 10); // 10 forwards + initial delivery
        let r = sim.run();
        assert_eq!(r.delivered, 11);
        assert!(!r.truncated);
        assert_eq!(sim.now(), 1100);
        let total: u32 = sim.actors().map(|a| a.received).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn run_limited_truncates() {
        let mut sim = Simulator::new(ring(3), ConstantDelay(1), 1);
        sim.inject(0, 0, 1000);
        let r = sim.run_limited(10);
        assert!(r.truncated);
        assert_eq!(r.delivered, 10);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(ring(7), UniformDelay::new(1, 1000), seed);
            sim.inject(0, 3, 50);
            sim.inject(0, 5, 50);
            let r = sim.run();
            (r.delivered, r.finished_at, sim.now())
        };
        assert_eq!(run(99), run(99));
        // Different seed ⇒ (almost surely) different finish time.
        assert_ne!(run(99).1, run(100).1);
    }

    #[test]
    fn inject_at_orders_by_time_then_seq() {
        struct Recorder {
            log: Vec<(Time, u32)>,
        }
        impl Actor for Recorder {
            type Msg = u32;
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _f: usize, m: u32) {
                self.log.push((ctx.now(), m));
            }
        }
        let mut sim = Simulator::new(vec![Recorder { log: vec![] }], ConstantDelay(0), 0);
        sim.inject_at(50, 0, 0, 1);
        sim.inject_at(10, 0, 0, 2);
        sim.inject_at(50, 0, 0, 3);
        sim.run();
        assert_eq!(sim.actor(0).log, vec![(10, 2), (50, 1), (50, 3)]);
    }

    #[test]
    fn empty_queue_run_is_noop() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(1), 0);
        let r = sim.run();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.finished_at, 0);
        assert!(!sim.step());
    }

    #[test]
    fn add_actor_grows_population() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(1), 0);
        let i = sim.add_actor(Ring { n: 3, received: 0 });
        assert_eq!(i, 2);
        assert_eq!(sim.len(), 3);
    }

    #[test]
    fn add_actor_mid_run_receives_injections() {
        let mut sim = Simulator::new(ring(3), ConstantDelay(10), 4);
        sim.inject(0, 0, 5);
        let first = sim.run();
        assert_eq!(first.delivered, 6);
        let t = sim.now();
        assert!(t > 0);

        // Grow the population after deliveries have occurred, then drive
        // traffic through the new actor.
        let i = sim.add_actor(Ring { n: 4, received: 0 });
        assert_eq!(i, 3);
        sim.inject(0, i, 2); // i → 0 → 1, three deliveries total
        let second = sim.run();
        assert_eq!(second.delivered, 9);
        assert_eq!(sim.actor(i).received, 1);
        // Time keeps advancing monotonically across the growth boundary.
        assert_eq!(sim.now(), t + 30);
        assert!(!second.truncated);
    }

    #[test]
    fn add_actor_between_steps_keeps_queued_events() {
        let mut sim = Simulator::new(ring(2), ConstantDelay(5), 0);
        sim.inject(0, 0, 3);
        assert!(sim.step()); // one delivery; more queued
        assert_eq!(sim.pending(), 1);
        let i = sim.add_actor(Ring { n: 2, received: 0 });
        // Queued pre-growth events still drain, untouched.
        let r = sim.run();
        assert_eq!(r.delivered, 4);
        assert_eq!(sim.actor(i).received, 0);
        assert_eq!(sim.len(), 3);
    }
}
