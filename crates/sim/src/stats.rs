//! Small statistics toolkit for simulation outputs: counters, empirical
//! CDFs, and summary statistics — enough to regenerate the paper's Figure
//! 15(b) (a cumulative distribution of per-join message counts).

use std::collections::BTreeMap;

/// Typed event counters keyed by a caller-chosen label type.
///
/// # Examples
///
/// ```
/// use hyperring_sim::stats::Counters;
/// let mut c: Counters<&'static str> = Counters::new();
/// c.bump("JoinNotiMsg");
/// c.add("JoinNotiMsg", 2);
/// assert_eq!(c.get(&"JoinNotiMsg"), 3);
/// assert_eq!(c.get(&"CpRstMsg"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counters<K: Ord> {
    map: BTreeMap<K, u64>,
}

impl<K: Ord> Counters<K> {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters {
            map: BTreeMap::new(),
        }
    }

    /// Adds `n` to the counter for `key`.
    pub fn add(&mut self, key: K, n: u64) {
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Increments the counter for `key` by one.
    pub fn bump(&mut self, key: K) {
        self.add(key, 1);
    }

    /// Current value for `key` (0 if never touched).
    pub fn get(&self, key: &K) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// Iterates `(key, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.map.iter().map(|(k, &v)| (k, v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: Counters<K>) {
        for (k, v) in other.map {
            self.add(k, v);
        }
    }
}

/// An empirical distribution built from `u64` samples.
///
/// # Examples
///
/// ```
/// use hyperring_sim::stats::Distribution;
/// let d = Distribution::from_samples([4u64, 8, 6, 5, 3].into_iter());
/// assert_eq!(d.len(), 5);
/// assert_eq!(d.min(), 3);
/// assert_eq!(d.max(), 8);
/// assert!((d.mean() - 5.2).abs() < 1e-9);
/// assert!((d.cdf_at(5) - 0.6).abs() < 1e-9); // 3 of 5 samples ≤ 5
/// ```
#[derive(Debug, Clone, Default)]
pub struct Distribution {
    sorted: Vec<u64>,
}

impl Distribution {
    /// Builds a distribution from samples (order irrelevant).
    pub fn from_samples<I: Iterator<Item = u64>>(samples: I) -> Self {
        let mut sorted: Vec<u64> = samples.collect();
        sorted.sort_unstable();
        Distribution { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    pub fn min(&self) -> u64 {
        *self.sorted.first().expect("empty distribution")
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    pub fn max(&self) -> u64 {
        *self.sorted.last().expect("empty distribution")
    }

    /// Arithmetic mean (0.0 for an empty distribution).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().map(|&v| v as f64).sum::<f64>() / self.sorted.len() as f64
    }

    /// Fraction of samples `<= x` — one point of the empirical CDF.
    pub fn cdf_at(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The full empirical CDF as `(value, fraction ≤ value)` points, one per
    /// distinct sample value — the series plotted in Figure 15(b).
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let v = self.sorted[i];
            let j = self.sorted.partition_point(|&s| s <= v);
            out.push((v, j as f64 / n));
            i = j;
        }
        out
    }

    /// `q`-quantile with nearest-rank interpolation, `0.0 <= q <= 1.0`.
    ///
    /// # Panics
    ///
    /// Panics if empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(!self.sorted.is_empty(), "empty distribution");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let idx = ((q * (self.sorted.len() - 1) as f64).round()) as usize;
        self.sorted[idx]
    }

    /// Sample standard deviation (0.0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .sorted
            .iter()
            .map(|&v| (v as f64 - m).powi(2))
            .sum::<f64>()
            / (self.sorted.len() - 1) as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a: Counters<u8> = Counters::new();
        a.bump(1);
        a.add(2, 5);
        let mut b: Counters<u8> = Counters::new();
        b.add(2, 3);
        b.bump(7);
        a.merge(b);
        assert_eq!(a.get(&1), 1);
        assert_eq!(a.get(&2), 8);
        assert_eq!(a.get(&7), 1);
        assert_eq!(a.total(), 10);
        let keys: Vec<u8> = a.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 7]);
    }

    #[test]
    fn cdf_points_cover_all_mass() {
        let d = Distribution::from_samples([2u64, 2, 2, 5, 9, 9].into_iter());
        let pts = d.cdf_points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (2, 0.5));
        assert_eq!(pts[1], (5, 4.0 / 6.0));
        assert_eq!(pts[2], (9, 1.0));
        assert_eq!(d.cdf_at(1), 0.0);
        assert_eq!(d.cdf_at(100), 1.0);
    }

    #[test]
    fn quantiles_and_spread() {
        let d = Distribution::from_samples(1..=101u64);
        assert_eq!(d.quantile(0.0), 1);
        assert_eq!(d.quantile(0.5), 51);
        assert_eq!(d.quantile(1.0), 101);
        assert!((d.mean() - 51.0).abs() < 1e-9);
        assert!(d.stddev() > 29.0 && d.stddev() < 30.0);
    }

    #[test]
    fn empty_distribution_is_safe_where_documented() {
        let d = Distribution::from_samples(std::iter::empty());
        assert!(d.is_empty());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.cdf_at(3), 0.0);
        assert_eq!(d.stddev(), 0.0);
        assert!(d.cdf_points().is_empty());
    }

    #[test]
    fn single_sample_distribution() {
        let d = Distribution::from_samples(std::iter::once(42));
        assert_eq!(d.min(), 42);
        assert_eq!(d.max(), 42);
        assert_eq!(d.quantile(0.5), 42);
        assert_eq!(d.cdf_points(), vec![(42, 1.0)]);
    }
}
