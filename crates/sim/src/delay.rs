use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Time;

/// Source of per-message delivery latency.
///
/// Implementations must be deterministic given the `rng` (which the
/// simulator seeds from its run seed), so simulations are reproducible.
pub trait DelayModel {
    /// Latency in microseconds for a message from actor `from` to actor
    /// `to`.
    fn delay(&mut self, from: usize, to: usize, rng: &mut StdRng) -> Time;
}

/// Fixed latency for every message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantDelay(
    /// The latency in microseconds.
    pub Time,
);

impl DelayModel for ConstantDelay {
    fn delay(&mut self, _from: usize, _to: usize, _rng: &mut StdRng) -> Time {
        self.0
    }
}

/// Latency drawn uniformly from `lo..=hi` per message.
///
/// With a wide range this doubles as a message-reordering adversary: replies
/// can overtake requests between the same pair of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformDelay {
    /// Minimum latency (µs).
    pub lo: Time,
    /// Maximum latency (µs), inclusive.
    pub hi: Time,
}

impl UniformDelay {
    /// Creates a model over `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Time, hi: Time) -> Self {
        assert!(lo <= hi, "empty latency range {lo}..={hi}");
        UniformDelay { lo, hi }
    }
}

impl DelayModel for UniformDelay {
    fn delay(&mut self, _from: usize, _to: usize, rng: &mut StdRng) -> Time {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// A fully materialized `n × n` latency matrix behind an [`Arc`]:
/// cloning is `O(1)` and every clone shares the same storage, so one
/// expensive topology computation can feed any number of concurrent
/// simulation trials.
///
/// Lookups are a single row-major index — the cheapest possible
/// [`DelayModel`] for topology-derived latencies.
#[derive(Debug, Clone)]
pub struct MatrixDelay {
    n: usize,
    matrix: Arc<Vec<Time>>,
}

impl MatrixDelay {
    /// Wraps a row-major `n × n` matrix (entry `from * n + to`).
    ///
    /// # Panics
    ///
    /// Panics if `matrix.len() != n * n`.
    pub fn new(n: usize, matrix: Arc<Vec<Time>>) -> Self {
        assert_eq!(matrix.len(), n * n, "matrix must be n × n");
        MatrixDelay { n, matrix }
    }

    /// Materializes a matrix from a latency function.
    pub fn from_fn(n: usize, mut latency: impl FnMut(usize, usize) -> Time) -> Self {
        let mut matrix = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                matrix.push(latency(from, to));
            }
        }
        MatrixDelay {
            n,
            matrix: Arc::new(matrix),
        }
    }

    /// Number of actors the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no actors.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The latency stored for `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, from: usize, to: usize) -> Time {
        assert!(from < self.n && to < self.n, "actor index out of range");
        self.matrix[from * self.n + to]
    }
}

impl DelayModel for MatrixDelay {
    fn delay(&mut self, from: usize, to: usize, _rng: &mut StdRng) -> Time {
        self.matrix[from * self.n + to]
    }
}

/// Adapter turning any closure `(from, to) -> Time` into a [`DelayModel`],
/// e.g. a lookup into a router topology.
pub struct FnDelay<F>(
    /// The latency function.
    pub F,
);

impl<F: FnMut(usize, usize) -> Time> DelayModel for FnDelay<F> {
    fn delay(&mut self, from: usize, to: usize, _rng: &mut StdRng) -> Time {
        (self.0)(from, to)
    }
}

impl<F> std::fmt::Debug for FnDelay<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnDelay(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_delay_ignores_endpoints() {
        let mut m = ConstantDelay(7);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.delay(0, 1, &mut rng), 7);
        assert_eq!(m.delay(9, 3, &mut rng), 7);
    }

    #[test]
    fn uniform_delay_stays_in_range_and_is_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let mut m = UniformDelay::new(10, 20);
        for _ in 0..100 {
            let da = m.delay(0, 1, &mut a);
            assert_eq!(da, m.delay(0, 1, &mut b));
            assert!((10..=20).contains(&da));
        }
    }

    #[test]
    #[should_panic(expected = "empty latency range")]
    fn uniform_delay_rejects_inverted_range() {
        UniformDelay::new(5, 4);
    }

    #[test]
    fn matrix_delay_shares_storage_across_clones() {
        let m = MatrixDelay::from_fn(3, |from, to| (from * 10 + to) as Time);
        let mut a = m.clone();
        let mut b = m;
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(a.delay(2, 1, &mut rng), 21);
        assert_eq!(b.delay(2, 1, &mut rng), 21);
        assert_eq!(a.get(0, 2), 2);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "matrix must be n × n")]
    fn matrix_delay_rejects_wrong_shape() {
        MatrixDelay::new(2, Arc::new(vec![0; 3]));
    }

    #[test]
    fn fn_delay_uses_closure() {
        let mut m = FnDelay(|from: usize, to: usize| (from * 10 + to) as Time);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.delay(2, 3, &mut rng), 23);
    }
}
