use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Time;

/// The fate of one transmitted message: delivered after a latency,
/// silently dropped, or duplicated (two independent copies in flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered once, after the given latency (µs).
    Deliver(Time),
    /// Lost in transit; the receiver never sees it.
    Drop,
    /// Delivered twice, as two copies with independent latencies (µs).
    Duplicate(Time, Time),
}

/// Source of per-message delivery latency (and, optionally, loss).
///
/// Implementations must be deterministic given the `rng` (which the
/// simulator seeds from its run seed), so simulations are reproducible.
pub trait DelayModel {
    /// Latency in microseconds for a message from actor `from` to actor
    /// `to`.
    fn delay(&mut self, from: usize, to: usize, rng: &mut StdRng) -> Time;

    /// Decides the [`Fate`] of a message from `from` to `to`.
    ///
    /// The default implementation always delivers, drawing **exactly** the
    /// same single latency sample as [`delay`](Self::delay) — so a
    /// non-faulty model run through the fate path consumes an identical
    /// RNG stream and reproduces pre-fault simulations bit for bit. Only
    /// fault-injecting models (e.g. [`FaultyDelay`]) override this.
    fn fate(&mut self, from: usize, to: usize, rng: &mut StdRng) -> Fate {
        Fate::Deliver(self.delay(from, to, rng))
    }

    /// A lower bound on every latency this model can produce, in
    /// microseconds.
    ///
    /// The sharded simulator uses this as its conservative lookahead: all
    /// events within a `min_delay`-wide time window are causally
    /// independent across actors, so the window can be delivered in
    /// parallel. The default of `0` is always safe (it degrades the window
    /// to a single timestamp); models with a known positive floor should
    /// override it, since a wider window means more parallelism.
    fn min_delay(&self) -> Time {
        0
    }
}

/// Fixed latency for every message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantDelay(
    /// The latency in microseconds.
    pub Time,
);

impl DelayModel for ConstantDelay {
    fn delay(&mut self, _from: usize, _to: usize, _rng: &mut StdRng) -> Time {
        self.0
    }

    fn min_delay(&self) -> Time {
        self.0
    }
}

/// Latency drawn uniformly from `lo..=hi` per message.
///
/// With a wide range this doubles as a message-reordering adversary: replies
/// can overtake requests between the same pair of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformDelay {
    /// Minimum latency (µs).
    pub lo: Time,
    /// Maximum latency (µs), inclusive.
    pub hi: Time,
}

impl UniformDelay {
    /// Creates a model over `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Time, hi: Time) -> Self {
        assert!(lo <= hi, "empty latency range {lo}..={hi}");
        UniformDelay { lo, hi }
    }
}

impl DelayModel for UniformDelay {
    fn delay(&mut self, _from: usize, _to: usize, rng: &mut StdRng) -> Time {
        rng.gen_range(self.lo..=self.hi)
    }

    fn min_delay(&self) -> Time {
        self.lo
    }
}

/// A fully materialized `n × n` latency matrix behind an [`Arc`]:
/// cloning is `O(1)` and every clone shares the same storage, so one
/// expensive topology computation can feed any number of concurrent
/// simulation trials.
///
/// Lookups are a single row-major index — the cheapest possible
/// [`DelayModel`] for topology-derived latencies.
#[derive(Debug, Clone)]
pub struct MatrixDelay {
    n: usize,
    matrix: Arc<Vec<Time>>,
    min: Time,
}

impl MatrixDelay {
    /// Wraps a row-major `n × n` matrix (entry `from * n + to`).
    ///
    /// # Panics
    ///
    /// Panics if `matrix.len() != n * n`.
    pub fn new(n: usize, matrix: Arc<Vec<Time>>) -> Self {
        assert_eq!(matrix.len(), n * n, "matrix must be n × n");
        let min = matrix.iter().copied().min().unwrap_or(0);
        MatrixDelay { n, matrix, min }
    }

    /// Materializes a matrix from a latency function.
    pub fn from_fn(n: usize, mut latency: impl FnMut(usize, usize) -> Time) -> Self {
        let mut matrix = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                matrix.push(latency(from, to));
            }
        }
        let min = matrix.iter().copied().min().unwrap_or(0);
        MatrixDelay {
            n,
            matrix: Arc::new(matrix),
            min,
        }
    }

    /// Number of actors the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no actors.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The latency stored for `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, from: usize, to: usize) -> Time {
        assert!(from < self.n && to < self.n, "actor index out of range");
        self.matrix[from * self.n + to]
    }
}

impl DelayModel for MatrixDelay {
    fn delay(&mut self, from: usize, to: usize, _rng: &mut StdRng) -> Time {
        self.matrix[from * self.n + to]
    }

    fn min_delay(&self) -> Time {
        self.min
    }
}

/// Adapter turning any closure `(from, to) -> Time` into a [`DelayModel`],
/// e.g. a lookup into a router topology.
pub struct FnDelay<F>(
    /// The latency function.
    pub F,
);

impl<F: FnMut(usize, usize) -> Time> DelayModel for FnDelay<F> {
    fn delay(&mut self, from: usize, to: usize, _rng: &mut StdRng) -> Time {
        (self.0)(from, to)
    }
}

impl<F> std::fmt::Debug for FnDelay<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnDelay(..)")
    }
}

/// Fault-injecting wrapper around any [`DelayModel`]: each message is
/// dropped with probability `drop_p`, duplicated with probability `dup_p`,
/// and otherwise delivered with the inner model's latency. All decisions
/// come from the simulator's seeded RNG, so faulty runs are exactly as
/// reproducible as fault-free ones.
///
/// This breaks the paper's reliable-delivery assumption (iii) on purpose:
/// it is the adversary the engine's timer-driven retries are tested
/// against.
///
/// # Examples
///
/// ```
/// use hyperring_sim::{ConstantDelay, DelayModel, Fate, FaultyDelay};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut faulty = FaultyDelay::new(ConstantDelay(100), 0.25, 0.10);
/// let fates: Vec<Fate> = (0..200).map(|_| faulty.fate(0, 1, &mut rng)).collect();
/// assert!(fates.contains(&Fate::Drop));
/// assert!(fates.contains(&Fate::Deliver(100)));
/// assert!(fates.contains(&Fate::Duplicate(100, 100)));
/// ```
#[derive(Debug, Clone)]
pub struct FaultyDelay<D> {
    inner: D,
    drop_p: f64,
    dup_p: f64,
}

impl<D> FaultyDelay<D> {
    /// Wraps `inner`, dropping each message with probability `drop_p` and
    /// duplicating it with probability `dup_p`.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]` or they sum above 1.
    pub fn new(inner: D, drop_p: f64, dup_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_p), "drop_p out of range");
        assert!((0.0..=1.0).contains(&dup_p), "dup_p out of range");
        assert!(drop_p + dup_p <= 1.0, "drop_p + dup_p must not exceed 1");
        FaultyDelay {
            inner,
            drop_p,
            dup_p,
        }
    }

    /// The wrapped latency model.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: DelayModel> DelayModel for FaultyDelay<D> {
    fn delay(&mut self, from: usize, to: usize, rng: &mut StdRng) -> Time {
        self.inner.delay(from, to, rng)
    }

    fn fate(&mut self, from: usize, to: usize, rng: &mut StdRng) -> Fate {
        // One uniform draw decides drop/duplicate/deliver; latency draws
        // happen after, so the fault dice never perturb the latency
        // stream's shape within a fate.
        let roll: f64 = rng.gen();
        if roll < self.drop_p {
            return Fate::Drop;
        }
        let first = self.inner.delay(from, to, rng);
        if roll < self.drop_p + self.dup_p {
            let second = self.inner.delay(from, to, rng);
            Fate::Duplicate(first, second)
        } else {
            Fate::Deliver(first)
        }
    }

    fn min_delay(&self) -> Time {
        // Drops create no events and duplicates draw both latencies from
        // the inner model, so its floor is ours.
        self.inner.min_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_delay_ignores_endpoints() {
        let mut m = ConstantDelay(7);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.delay(0, 1, &mut rng), 7);
        assert_eq!(m.delay(9, 3, &mut rng), 7);
    }

    #[test]
    fn uniform_delay_stays_in_range_and_is_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let mut m = UniformDelay::new(10, 20);
        for _ in 0..100 {
            let da = m.delay(0, 1, &mut a);
            assert_eq!(da, m.delay(0, 1, &mut b));
            assert!((10..=20).contains(&da));
        }
    }

    #[test]
    #[should_panic(expected = "empty latency range")]
    fn uniform_delay_rejects_inverted_range() {
        UniformDelay::new(5, 4);
    }

    #[test]
    fn matrix_delay_shares_storage_across_clones() {
        let m = MatrixDelay::from_fn(3, |from, to| (from * 10 + to) as Time);
        let mut a = m.clone();
        let mut b = m;
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(a.delay(2, 1, &mut rng), 21);
        assert_eq!(b.delay(2, 1, &mut rng), 21);
        assert_eq!(a.get(0, 2), 2);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "matrix must be n × n")]
    fn matrix_delay_rejects_wrong_shape() {
        MatrixDelay::new(2, Arc::new(vec![0; 3]));
    }

    #[test]
    fn fn_delay_uses_closure() {
        let mut m = FnDelay(|from: usize, to: usize| (from * 10 + to) as Time);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.delay(2, 3, &mut rng), 23);
    }

    #[test]
    fn default_fate_consumes_the_same_rng_stream_as_delay() {
        // A plain model driven through fate() must be indistinguishable
        // from one driven through delay() — this is what keeps pre-fault
        // golden runs bit-identical.
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let mut m1 = UniformDelay::new(1, 1_000_000);
        let mut m2 = UniformDelay::new(1, 1_000_000);
        for i in 0..200usize {
            let f = m1.fate(i, i + 1, &mut a);
            let d = m2.delay(i, i + 1, &mut b);
            assert_eq!(f, Fate::Deliver(d));
        }
        assert_eq!(a, b, "fate() drew extra RNG samples");
    }

    #[test]
    fn faulty_delay_mixes_all_three_fates_deterministically() {
        let run = |seed: u64| {
            let mut m = FaultyDelay::new(ConstantDelay(50), 0.2, 0.1);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..300).map(|_| m.fate(0, 1, &mut rng)).collect::<Vec<_>>()
        };
        let fates = run(5);
        assert_eq!(run(5), fates);
        let drops = fates.iter().filter(|f| **f == Fate::Drop).count();
        let dups = fates
            .iter()
            .filter(|f| matches!(f, Fate::Duplicate(_, _)))
            .count();
        assert!(drops > 0 && dups > 0 && drops + dups < fates.len());
        assert_eq!(
            *FaultyDelay::new(ConstantDelay(9), 0.0, 0.0).inner(),
            ConstantDelay(9)
        );
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn faulty_delay_rejects_overfull_probabilities() {
        FaultyDelay::new(ConstantDelay(1), 0.7, 0.6);
    }

    #[test]
    fn zero_probability_faulty_delay_always_delivers() {
        let mut m = FaultyDelay::new(ConstantDelay(42), 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(m.fate(0, 1, &mut rng), Fate::Deliver(42));
        }
    }
}
