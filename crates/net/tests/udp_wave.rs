//! Join waves over real loopback UDP sockets, with injected packet loss.
//!
//! The smoke test (CI-sized) runs ~120 nodes with 3% receive-side loss;
//! the `#[ignore]`d acceptance test runs the paper-scale 1000-node wave
//! with 5% loss (`cargo test -p hyperring-net --release -- --ignored`).
//! Both assert full Definition-3.8 consistency: the retry policy must
//! absorb every drop.

use hyperring_core::{build_consistent_tables, check_consistency, ProtocolOptions, RetryPolicy};
use hyperring_id::{IdSpace, NodeId};
use hyperring_net::{UdpConfig, UdpNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

fn lossy_wave(n_members: usize, n_joiners: usize, loss_permille: u32, space: IdSpace) {
    let ids = distinct(space, n_members + n_joiners, 4242);
    let (v, w) = ids.split_at(n_members);
    let members = build_consistent_tables(space, v);
    // Joiners spread their gateways across the members, as a deployed
    // bootstrap service would.
    let joiners: Vec<(NodeId, NodeId)> = w
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, v[i % n_members]))
        .collect();
    let opts = ProtocolOptions::new().with_retry(RetryPolicy {
        timeout_us: 100_000,
        max_retries: 20,
        noti_repeats: 6,
        ..RetryPolicy::default()
    });
    let config = UdpConfig {
        loss_permille,
        settle: Duration::from_millis(300),
        quiesce_timeout: Duration::from_secs(300),
        ..UdpConfig::default()
    };
    let (tables, stats) = UdpNetwork::new(space, opts, members)
        .with_config(config)
        .run_joins(&joiners)
        .expect("wave quiesces under loss");
    eprintln!(
        "wave n={}: {} datagrams ({} bytes) sent, {} received, {} dropped by injector, \
         {} backpressure drops, {} timers, {:?} wall",
        n_members + n_joiners,
        stats.datagrams_sent,
        stats.bytes_sent,
        stats.datagrams_received,
        stats.drops_injected,
        stats.backpressure_drops,
        stats.timers_fired,
        stats.wall,
    );
    assert_eq!(tables.len(), n_members + n_joiners);
    let report = check_consistency(space, &tables);
    assert!(report.is_consistent(), "{report}");
    assert!(
        loss_permille == 0 || stats.drops_injected > 0,
        "loss was configured but never exercised"
    );
}

#[test]
fn loopback_smoke_wave_with_injected_loss() {
    // CI-sized: 40 members + 80 joiners, 3% loss.
    lossy_wave(40, 80, 30, IdSpace::new(4, 6).unwrap());
}

#[test]
fn lossless_wave_reports_clean_stats() {
    let space = IdSpace::new(8, 4).unwrap();
    let ids = distinct(space, 48, 77);
    let (v, w) = ids.split_at(16);
    let members = build_consistent_tables(space, v);
    let joiners: Vec<(NodeId, NodeId)> = w.iter().map(|&id| (id, v[0])).collect();
    let (tables, stats) = UdpNetwork::new(space, ProtocolOptions::new(), members)
        .run_joins(&joiners)
        .expect("lossless wave quiesces");
    assert!(check_consistency(space, &tables).is_consistent());
    assert_eq!(stats.drops_injected, 0);
    assert!(stats.datagrams_sent > 0);
    assert!(
        stats.bytes_received <= stats.bytes_sent,
        "received more bytes than were sent"
    );
}

/// The acceptance workload: a 1000-node join wave over real loopback
/// sockets, 5% injected loss, full Definition-3.8 consistency.
#[test]
#[ignore = "paper-scale; run with --ignored (release profile recommended)"]
fn loopback_wave_1000_nodes_under_loss() {
    lossy_wave(250, 750, 50, IdSpace::new(16, 4).unwrap());
}
