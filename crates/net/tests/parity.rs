//! Trace-digest parity: the lockstep UDP runtime reproduces the
//! deterministic simulator's run bit-for-bit.
//!
//! Same members, same joiners, same constant delay — one run delivers
//! messages through the simulator's in-process event heap, the other
//! encodes every message as a `hyperring-wire` frame and round-trips it
//! through a real loopback UDP socket. If the codec or the socket
//! plumbing perturbed anything — an event order, a timestamp, a message
//! field — the [`DigestTrace`] digests would diverge.

use hyperring_core::{
    build_consistent_tables, check_consistency, tables_digest, DigestTrace, ProtocolOptions,
    RetryPolicy, SharedSink, SimNetworkBuilder,
};
use hyperring_id::{IdSpace, NodeId};
use hyperring_net::LockstepNet;
use hyperring_sim::ConstantDelay;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn distinct(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id = space.random_id(&mut rng);
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// Runs the same seeded 64-node join wave on both substrates and returns
/// `(trace digest, trace record count, tables digest)` for each.
fn run_both(space: IdSpace, opts: ProtocolOptions, delay_us: u64) -> [(u64, u64, u64); 2] {
    let ids = distinct(space, 64, 42);
    let (v, w) = ids.split_at(16);
    let members = build_consistent_tables(space, v);

    // Simulator run.
    let sim_sink = SharedSink::new(DigestTrace::new());
    let mut b = SimNetworkBuilder::new(space);
    b.options(opts);
    b.trace(Box::new(sim_sink.clone()));
    b.with_member_tables(members.clone());
    for id in w {
        b.add_joiner(*id, v[0], 0);
    }
    let mut net = b.build(ConstantDelay(delay_us), 7);
    net.run();
    let sim_report = net.check_consistency();
    assert!(sim_report.is_consistent(), "simulator: {sim_report}");
    let sim_tables = net.tables();
    let sim_digest = *sim_sink.lock();

    // Lockstep socket run.
    let udp_sink = SharedSink::new(DigestTrace::new());
    let mut lockstep = LockstepNet::new(space, opts, members)
        .delay_us(delay_us)
        .with_trace(Box::new(udp_sink.clone()));
    for id in w {
        lockstep = lockstep.add_joiner(*id, v[0], 0);
    }
    let udp_tables = lockstep.run().expect("lockstep run quiesces");
    let udp_report = check_consistency(space, &udp_tables);
    assert!(udp_report.is_consistent(), "lockstep: {udp_report}");
    let udp_digest = *udp_sink.lock();

    [
        (
            sim_digest.digest(),
            sim_digest.count(),
            tables_digest(&sim_tables),
        ),
        (
            udp_digest.digest(),
            udp_digest.count(),
            tables_digest(&udp_tables),
        ),
    ]
}

#[test]
fn lockstep_udp_matches_simulator_digest() {
    let space = IdSpace::new(4, 6).unwrap();
    let [sim, udp] = run_both(space, ProtocolOptions::new(), 1_000);
    assert_eq!(sim.1, udp.1, "trace record counts diverge");
    assert_eq!(sim.0, udp.0, "trace digests diverge");
    assert_eq!(sim.2, udp.2, "final tables diverge");
}

#[test]
fn parity_holds_with_retry_timers_armed() {
    // A retry policy arms and cancels wall... virtual-clock timers on
    // every request; timer generation bookkeeping must stay in lockstep
    // too (delivery always beats the timeout here, so no retry fires —
    // but every arm consumes a sequence number on both sides).
    let space = IdSpace::new(8, 4).unwrap();
    let opts = ProtocolOptions::new().with_retry(RetryPolicy::default());
    let [sim, udp] = run_both(space, opts, 500);
    assert_eq!(sim.1, udp.1, "trace record counts diverge");
    assert_eq!(sim.0, udp.0, "trace digests diverge");
    assert_eq!(sim.2, udp.2, "final tables diverge");
}
