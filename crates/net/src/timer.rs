//! A hierarchical timer wheel shared by every engine on a runtime thread.
//!
//! The threaded runtime used to keep one `BinaryHeap` of deadlines per
//! node; the socket runtime hosts many engines per OS thread, so timers
//! live in one wheel keyed by `(engine, timer)` instead. The wheel is the
//! classic hashed-and-hierarchical design: [`LEVELS`] levels of [`SLOTS`]
//! slots each, level `l` spanning `SLOTS^(l+1)` ticks, deadlines cascading
//! down a level as their window approaches, and an overflow list for
//! deadlines beyond the top level's horizon. A per-level occupancy bitmask
//! lets [`advance`](TimerWheel::advance) jump straight between non-empty
//! slots, so sparse wheels cost nothing to fast-forward across long idle
//! stretches.
//!
//! Cancellation and re-arming are O(1): the wheel never removes slot
//! entries eagerly, it stamps every arming with a generation and lets
//! stale entries die when their slot drains — the same trick the
//! simulator's armed-generation map uses, so timer semantics match across
//! runtimes (re-arming supersedes, canceling a non-armed timer is a
//! no-op).
//!
//! Time is an absolute microsecond clock supplied by the caller (wall or
//! virtual); the wheel only requires that `advance` never run backwards.

use std::collections::HashMap;
use std::hash::Hash;

/// Slots per level (64 keeps slot indexing a 6-bit shift and the
/// occupancy mask one machine word).
pub const SLOTS: usize = 64;
/// Hierarchy depth: with a 100 µs tick the top level spans ~28 minutes.
pub const LEVELS: usize = 4;

/// A hierarchical timer wheel over keys `K`, with microsecond deadlines.
#[derive(Debug)]
pub struct TimerWheel<K> {
    tick_us: u64,
    /// The tick the wheel's cursor sits on (its notion of "now").
    tick: u64,
    /// `levels[l][s]` holds `(key, generation, deadline_us)` entries.
    levels: Vec<Vec<Vec<(K, u64, u64)>>>,
    /// Bit `s` of `masks[l]` set iff `levels[l][s]` is non-empty.
    masks: [u64; LEVELS],
    overflow: Vec<(K, u64, u64)>,
    armed: HashMap<K, (u64, u64)>, // key -> (generation, deadline_us)
    generation: u64,
}

impl<K: Clone + Eq + Hash> TimerWheel<K> {
    /// A wheel with the given tick granularity, starting at `now_us`.
    ///
    /// # Panics
    ///
    /// Panics if `tick_us` is zero.
    pub fn new(tick_us: u64, now_us: u64) -> Self {
        assert!(tick_us > 0, "tick granularity must be positive");
        TimerWheel {
            tick_us,
            tick: now_us / tick_us,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            masks: [0; LEVELS],
            overflow: Vec::new(),
            armed: HashMap::new(),
            generation: 0,
        }
    }

    /// Number of currently armed timers.
    pub fn len(&self) -> usize {
        self.armed.len()
    }

    /// Whether no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Arms (or re-arms, superseding) `key` to fire at `deadline_us`.
    /// Deadlines at or before the wheel's cursor fire on the next
    /// [`advance`](Self::advance).
    pub fn arm(&mut self, key: K, deadline_us: u64) {
        self.generation += 1;
        let generation = self.generation;
        self.armed.insert(key.clone(), (generation, deadline_us));
        self.place(key, generation, deadline_us);
    }

    /// Cancels `key` if armed (a no-op otherwise). The slot entry, if any,
    /// goes stale and is discarded when its slot drains.
    pub fn cancel(&mut self, key: &K) {
        self.armed.remove(key);
    }

    fn place(&mut self, key: K, generation: u64, deadline_us: u64) {
        let deadline_tick = deadline_us / self.tick_us;
        let delta = deadline_tick.saturating_sub(self.tick);
        for level in 0..LEVELS {
            let span = (SLOTS as u64).pow(level as u32 + 1);
            if delta < span {
                let shift = 6 * level as u32;
                let slot = ((deadline_tick >> shift) as usize) & (SLOTS - 1);
                self.levels[level][slot].push((key, generation, deadline_us));
                self.masks[level] |= 1 << slot;
                return;
            }
        }
        self.overflow.push((key, generation, deadline_us));
    }

    #[inline]
    fn live(&self, key: &K, generation: u64) -> bool {
        self.armed.get(key).map(|&(g, _)| g) == Some(generation)
    }

    /// The earliest moment the caller must wake, in microseconds, or
    /// `None` when nothing is armed. The bound is conservative: never
    /// later than the earliest live deadline, but possibly earlier (a
    /// stale slot or a cascade boundary) — wake,
    /// [`advance`](Self::advance), and re-query.
    pub fn next_deadline_us(&self) -> Option<u64> {
        if self.armed.is_empty() {
            return None;
        }
        let cursor = (self.tick as usize) & (SLOTS - 1);
        let ahead = self.masks[0].rotate_right(cursor as u32);
        if ahead != 0 {
            let off = ahead.trailing_zeros() as u64;
            let t = self.tick + off;
            let slot = &self.levels[0][(t as usize) & (SLOTS - 1)];
            let best = slot
                .iter()
                .filter(|(k, g, d)| *d / self.tick_us == t && self.live(k, *g))
                .map(|&(_, _, d)| d)
                .min();
            return Some(best.unwrap_or(t * self.tick_us));
        }
        // Everything live sits in a higher level or the overflow list;
        // wake at the next cascade boundary so re-placement can run. (The
        // bound misses nothing earlier: a live deadline below the boundary
        // is by construction placed in level 0.)
        Some((self.tick + (SLOTS - cursor) as u64) * self.tick_us)
    }

    /// Advances the wheel to `now_us` and returns every timer that fired,
    /// earliest-deadline first (ties in arming order). Fired timers are
    /// disarmed; the owner re-arms explicitly to retry.
    pub fn advance(&mut self, now_us: u64) -> Vec<K> {
        let target = now_us / self.tick_us;
        if self.armed.is_empty() {
            // Nothing can fire; drop stale entries wholesale and jump.
            if self.tick < target {
                for level in 0..LEVELS {
                    if self.masks[level] != 0 {
                        for slot in &mut self.levels[level] {
                            slot.clear();
                        }
                        self.masks[level] = 0;
                    }
                }
                self.overflow.clear();
                self.tick = target;
            }
            return Vec::new();
        }
        let mut due: Vec<(u64, u64, K)> = Vec::new();
        loop {
            // Drain the level-0 slot under the cursor.
            let idx = (self.tick as usize) & (SLOTS - 1);
            if self.masks[0] >> idx & 1 == 1 {
                let mut slot = std::mem::take(&mut self.levels[0][idx]);
                slot.retain(|&(ref key, generation, deadline)| {
                    if deadline / self.tick_us > self.tick {
                        return true; // later wrap of this slot
                    }
                    if self.armed.get(key).map(|&(g, _)| g) == Some(generation) {
                        self.armed.remove(key);
                        due.push((deadline, generation, key.clone()));
                    }
                    false
                });
                if slot.is_empty() {
                    self.masks[0] &= !(1 << idx);
                }
                self.levels[0][idx] = slot;
            }
            if self.tick >= target {
                break;
            }
            // Jump: the nearest of (next occupied level-0 slot, next
            // cascade boundary, the target itself).
            let cursor = (self.tick as usize) & (SLOTS - 1);
            let to_boundary = (SLOTS - cursor) as u64;
            let ahead = self.masks[0].rotate_right(cursor as u32) & !1;
            let to_entry = if ahead == 0 {
                u64::MAX
            } else {
                u64::from(ahead.trailing_zeros())
            };
            let jump = to_boundary.min(to_entry).min(target - self.tick).max(1);
            self.tick += jump;
            if (self.tick as usize) & (SLOTS - 1) == 0 {
                self.cascade();
            }
        }
        due.sort_by_key(|d| (d.0, d.1));
        due.into_iter().map(|(_, _, k)| k).collect()
    }

    /// Re-places the higher-level slots whose window the cursor just
    /// entered (called only with the cursor on a level-0 boundary).
    fn cascade(&mut self) {
        for level in 1..LEVELS {
            let shift = 6 * level as u32;
            if self.tick & ((1u64 << shift) - 1) != 0 {
                break;
            }
            let idx = ((self.tick >> shift) as usize) & (SLOTS - 1);
            if self.masks[level] >> idx & 1 == 1 {
                let entries = std::mem::take(&mut self.levels[level][idx]);
                self.masks[level] &= !(1 << idx);
                for (key, generation, deadline) in entries {
                    if self.live(&key, generation) {
                        self.place(key, generation, deadline);
                    }
                }
            }
        }
        if self.tick & ((1u64 << (6 * LEVELS as u32)) - 1) == 0 {
            let overflow = std::mem::take(&mut self.overflow);
            for (key, generation, deadline) in overflow {
                if self.live(&key, generation) {
                    self.place(key, generation, deadline);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new(100, 0);
        w.arm(1, 1_000);
        w.arm(2, 500);
        w.arm(3, 2_000);
        assert_eq!(w.len(), 3);
        assert!(w.next_deadline_us().unwrap() <= 500);
        assert_eq!(w.advance(400), Vec::<u32>::new());
        assert_eq!(w.advance(1_500), vec![2, 1]);
        assert_eq!(w.advance(2_500), vec![3]);
        assert!(w.is_empty());
        assert_eq!(w.next_deadline_us(), None);
    }

    #[test]
    fn cancel_and_rearm_supersede() {
        let mut w: TimerWheel<&'static str> = TimerWheel::new(50, 0);
        w.arm("a", 1_000);
        w.cancel(&"a");
        assert_eq!(w.advance(5_000), Vec::<&str>::new());
        w.arm("b", 6_000);
        w.arm("b", 9_000); // re-arm pushes the deadline out
        assert_eq!(w.advance(7_000), Vec::<&str>::new());
        assert_eq!(w.advance(9_100), vec!["b"]);
        w.cancel(&"b"); // canceling after fire is a no-op
    }

    #[test]
    fn long_deadlines_cascade_down() {
        let mut w: TimerWheel<u32> = TimerWheel::new(100, 0);
        // Level 1 (beyond 64 ticks), level 2, level 3, and overflow.
        w.arm(1, 100 * 100);
        w.arm(2, 100 * 5_000);
        w.arm(3, 100 * 300_000);
        w.arm(4, 100 * 20_000_000); // beyond 64^4 ticks
        assert_eq!(w.advance(100 * 99), Vec::<u32>::new());
        assert_eq!(w.advance(100 * 101), vec![1]);
        assert_eq!(w.advance(100 * 5_001), vec![2]);
        assert_eq!(w.advance(100 * 300_001), vec![3]);
        assert_eq!(w.advance(100 * 20_000_001), vec![4]);
        assert!(w.is_empty());
    }

    #[test]
    fn conservative_next_deadline_still_converges() {
        let mut w: TimerWheel<u32> = TimerWheel::new(100, 0);
        w.arm(7, 100 * 1_000); // sits above level 0 initially
        let mut now = 0u64;
        let mut fired = Vec::new();
        for _ in 0..1_000 {
            match w.next_deadline_us() {
                None => break,
                Some(wake) => {
                    now = now.max(wake);
                    fired.extend(w.advance(now));
                }
            }
        }
        assert_eq!(fired, vec![7]);
        assert!((100_000..110_000).contains(&now), "no large overshoot");
    }

    /// Randomized differential test against a sorted-map reference model.
    #[test]
    fn matches_reference_model_under_random_ops() {
        use std::collections::BTreeMap;
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut w: TimerWheel<u16> = TimerWheel::new(100, 0);
        let mut reference: BTreeMap<u16, u64> = BTreeMap::new();
        let mut now = 0u64;
        for _ in 0..3_000 {
            match next() % 4 {
                0 | 1 => {
                    let key = (next() % 40) as u16;
                    let deadline = now + next() % 2_000_000; // up to 2 s out
                    w.arm(key, deadline);
                    reference.insert(key, deadline);
                }
                2 => {
                    let key = (next() % 40) as u16;
                    w.cancel(&key);
                    reference.remove(&key);
                }
                _ => {
                    now += next() % 50_000;
                    let mut fired = w.advance(now);
                    fired.sort_unstable();
                    let mut expected: Vec<u16> = reference
                        .iter()
                        // The wheel fires at tick granularity: a deadline
                        // inside the cursor's tick counts as due.
                        .filter(|(_, &d)| d / 100 <= now / 100)
                        .map(|(&k, _)| k)
                        .collect();
                    for k in &expected {
                        reference.remove(k);
                    }
                    expected.sort_unstable();
                    assert_eq!(fired, expected, "divergence at now={now}");
                }
            }
        }
    }
}
