//! Non-blocking UDP transport: socket wrapper, readiness polling,
//! datagram addressing, and deterministic loss injection.
//!
//! One socket serves every engine hosted by a runtime thread (file
//! descriptors are scarce next to engines), so each datagram carries a
//! destination identifier in front of the wire frame:
//!
//! ```text
//! [to: packed id]  [frame: see hyperring-wire]
//! ```
//!
//! The lockstep runtime extends the header with virtual-time scheduling
//! metadata (see [`encode_scheduled`]). Readiness is poll(2) via a
//! hand-declared FFI binding — the build is offline, so no libc crate —
//! gated to unix; elsewhere the endpoint degrades to short receive
//! timeouts.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use hyperring_core::Message;
use hyperring_id::{IdSpace, NodeId};
use hyperring_wire::{decode_frame, decode_id, encode_frame, encode_id, WireError};

/// Readiness: wait for the socket to become readable.
pub const WAIT_READ: i16 = 0x001; // POLLIN
/// Readiness: wait for the socket to accept more output.
pub const WAIT_WRITE: i16 = 0x004; // POLLOUT

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
        #[cfg(target_os = "linux")]
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> i32;
    }

    /// Best-effort bump of the kernel send/receive buffers (many engines
    /// share one socket, so the default ~200 KiB of slack overflows — and
    /// UDP drops silently — during join-wave bursts). The kernel clamps
    /// the request to `net.core.{r,w}mem_max`; failure is ignored, it
    /// only lowers the overload ceiling.
    #[cfg(target_os = "linux")]
    pub fn grow_buffers(fd: RawFd, bytes: i32) {
        const SOL_SOCKET: i32 = 1;
        const SO_SNDBUF: i32 = 7;
        const SO_RCVBUF: i32 = 8;
        for opt in [SO_SNDBUF, SO_RCVBUF] {
            // SAFETY: optval points at a live i32 and optlen matches it.
            unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    (&bytes as *const i32).cast(),
                    std::mem::size_of::<i32>() as u32,
                );
            }
        }
    }

    /// Blocks until `fd` is ready for `events` or `timeout_ms` elapses.
    /// Returns the ready events (0 on timeout).
    pub fn wait(fd: RawFd, events: i16, timeout_ms: i32) -> io::Result<i16> {
        let mut pfd = PollFd {
            fd,
            events,
            revents: 0,
        };
        // SAFETY: `pfd` is a properly initialized pollfd and lives across
        // the call; nfds is 1.
        let rc = unsafe { poll(&mut pfd, 1, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0); // treat EINTR as a timeout; callers re-poll
            }
            return Err(err);
        }
        Ok(if rc == 0 { 0 } else { pfd.revents })
    }
}

/// A non-blocking UDP socket bound to the loopback interface.
#[derive(Debug)]
pub struct UdpEndpoint {
    socket: UdpSocket,
}

impl UdpEndpoint {
    /// Binds a fresh non-blocking socket to `127.0.0.1:0`.
    pub fn bind() -> io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_nonblocking(true)?;
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            sys::grow_buffers(socket.as_raw_fd(), 4 << 20);
        }
        Ok(UdpEndpoint { socket })
    }

    /// The bound address (the port is kernel-assigned).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Attempts to send one datagram. Returns `Ok(false)` when the socket
    /// would block (caller keeps the datagram queued and waits for
    /// [`WAIT_WRITE`] readiness).
    pub fn try_send(&self, bytes: &[u8], to: SocketAddr) -> io::Result<bool> {
        match self.socket.send_to(bytes, to) {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
            // The kernel can report a previous datagram's failure (e.g.
            // ECONNREFUSED from a closed peer port) on this call; the
            // protocol treats it as loss.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(true),
            Err(e) => Err(e),
        }
    }

    /// Attempts to receive one datagram into `buf`. Returns `None` when
    /// the socket would block.
    pub fn try_recv(&self, buf: &mut [u8]) -> io::Result<Option<(usize, SocketAddr)>> {
        match self.socket.recv_from(buf) {
            Ok((n, from)) => Ok(Some((n, from))),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Waits until the socket is ready for `events` (a bitmask of
    /// [`WAIT_READ`] / [`WAIT_WRITE`]) or the timeout passes. Returns the
    /// ready events, 0 on timeout.
    #[cfg(unix)]
    pub fn wait(&self, events: i16, timeout: Duration) -> io::Result<i16> {
        use std::os::fd::AsRawFd;
        // Round sub-millisecond timeouts up: poll(2) only has millisecond
        // resolution and a 0 would busy-spin the caller.
        let ms = timeout
            .as_millis()
            .max(u128::from(!timeout.is_zero()))
            .min(i32::MAX as u128) as i32;
        sys::wait(self.socket.as_raw_fd(), events, ms)
    }

    /// Portable fallback: without poll(2), pretend readiness after a short
    /// sleep — the non-blocking calls above report `WouldBlock` truthfully
    /// either way, this only costs latency.
    #[cfg(not(unix))]
    pub fn wait(&self, events: i16, timeout: Duration) -> io::Result<i16> {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        Ok(events)
    }
}

/// Appends `[to][frame(from, msg)]` onto `buf`; returns the datagram
/// length.
pub fn encode_plain(
    space: &IdSpace,
    to: NodeId,
    from: NodeId,
    msg: &Message,
    buf: &mut Vec<u8>,
) -> usize {
    let start = buf.len();
    encode_id(space, &to, buf);
    encode_frame(space, from, msg, buf);
    buf.len() - start
}

/// Decodes a `[to][frame]` datagram.
pub fn decode_plain(space: &IdSpace, bytes: &[u8]) -> Result<(NodeId, NodeId, Message), WireError> {
    let (to, used) = decode_id(space, bytes)?;
    let (from, msg, consumed) = decode_frame(space, &bytes[used..])?;
    if used + consumed != bytes.len() {
        return Err(WireError::TrailingBytes {
            extra: bytes.len() - used - consumed,
        });
    }
    Ok((to, from, msg))
}

/// Appends `[to][deliver_at: u64][seq: u64][frame]` — the lockstep
/// runtime's scheduled datagram, carrying the virtual delivery time and
/// the global event sequence number that reproduce the simulator's
/// `(time, seq)` ordering on the far side of the kernel.
pub fn encode_scheduled(
    space: &IdSpace,
    to: NodeId,
    deliver_at: u64,
    seq: u64,
    from: NodeId,
    msg: &Message,
    buf: &mut Vec<u8>,
) -> usize {
    let start = buf.len();
    encode_id(space, &to, buf);
    buf.extend_from_slice(&deliver_at.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    encode_frame(space, from, msg, buf);
    buf.len() - start
}

/// Decodes a scheduled datagram: `(to, deliver_at, seq, from, msg)`.
pub fn decode_scheduled(
    space: &IdSpace,
    bytes: &[u8],
) -> Result<(NodeId, u64, u64, NodeId, Message), WireError> {
    let (to, used) = decode_id(space, bytes)?;
    let rest = &bytes[used..];
    if rest.len() < 16 {
        return Err(WireError::Truncated);
    }
    let deliver_at = u64::from_le_bytes(rest[..8].try_into().expect("8-byte slice"));
    let seq = u64::from_le_bytes(rest[8..16].try_into().expect("8-byte slice"));
    let (from, msg, consumed) = decode_frame(space, &rest[16..])?;
    if used + 16 + consumed != bytes.len() {
        return Err(WireError::TrailingBytes {
            extra: bytes.len() - used - 16 - consumed,
        });
    }
    Ok((to, deliver_at, seq, from, msg))
}

/// Deterministic receive-side packet-loss injector (xorshift64*, one per
/// runtime thread, so a seeded run drops a reproducible pseudo-random
/// subset of its arrivals).
#[derive(Debug)]
pub struct LossInjector {
    state: u64,
    drop_permille: u32,
}

impl LossInjector {
    /// An injector dropping roughly `drop_permille`/1000 of arrivals.
    pub fn new(seed: u64, drop_permille: u32) -> Self {
        LossInjector {
            state: seed | 1, // xorshift state must be non-zero
            drop_permille: drop_permille.min(1000),
        }
    }

    /// Whether to drop the next arrival.
    pub fn drop_next(&mut self) -> bool {
        if self.drop_permille == 0 {
            return false;
        }
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let sample = self.state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32;
        (sample % 1000) < u64::from(self.drop_permille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> IdSpace {
        IdSpace::new(4, 5).unwrap()
    }

    #[test]
    fn plain_datagram_round_trips_through_a_real_socket() {
        let sp = space();
        let a = UdpEndpoint::bind().unwrap();
        let b = UdpEndpoint::bind().unwrap();
        let to = sp.parse_id("01230").unwrap();
        let from = sp.parse_id("32101").unwrap();
        let mut out = Vec::new();
        encode_plain(&sp, to, from, &Message::CpRst { level: 2 }, &mut out);
        assert!(a.try_send(&out, b.local_addr().unwrap()).unwrap());
        assert!(b.wait(WAIT_READ, Duration::from_secs(5)).unwrap() & WAIT_READ != 0);
        let mut buf = [0u8; 2048];
        let (n, _) = b.try_recv(&mut buf).unwrap().expect("datagram arrived");
        let (got_to, got_from, msg) = decode_plain(&sp, &buf[..n]).unwrap();
        assert_eq!((got_to, got_from), (to, from));
        assert!(matches!(msg, Message::CpRst { level: 2 }));
    }

    #[test]
    fn scheduled_datagram_round_trips() {
        let sp = space();
        let to = sp.parse_id("01230").unwrap();
        let from = sp.parse_id("32101").unwrap();
        let mut out = Vec::new();
        encode_scheduled(&sp, to, 777_000, 42, from, &Message::JoinWait, &mut out);
        let (got_to, at, seq, got_from, msg) = decode_scheduled(&sp, &out).unwrap();
        assert_eq!((got_to, at, seq, got_from), (to, 777_000, 42, from));
        assert!(matches!(msg, Message::JoinWait));
        assert!(decode_scheduled(&sp, &out[..out.len() - 1]).is_err());
    }

    #[test]
    fn loss_injector_is_deterministic_and_calibrated() {
        let drops = |seed: u64| -> (u32, Vec<bool>) {
            let mut inj = LossInjector::new(seed, 100); // 10%
            let pattern: Vec<bool> = (0..10_000).map(|_| inj.drop_next()).collect();
            (pattern.iter().filter(|&&d| d).count() as u32, pattern)
        };
        let (count_a, pattern_a) = drops(7);
        let (_, pattern_b) = drops(7);
        assert_eq!(pattern_a, pattern_b, "same seed, same drops");
        assert!((800..1200).contains(&count_a), "{count_a} drops out of 10k");
        let mut none = LossInjector::new(7, 0);
        assert!((0..1000).all(|_| !none.drop_next()));
    }
}
