//! A threaded, in-memory network runtime for the join protocol.
//!
//! The deterministic simulator (`hyperring-sim`) is the primary evaluation
//! substrate, but the protocol engine is sans-io and runs unchanged on real
//! concurrency. This crate gives every node its own OS thread and delivers
//! messages over crossbeam channels — true parallelism, real races, no
//! seeded schedule — which makes it a useful stress test: Theorem 1 promises
//! consistency under *any* message interleaving, and integration tests
//! assert exactly that here.
//!
//! Quiescence is detected with an in-flight message counter (incremented
//! before a send, decremented after the receiver finishes processing), the
//! standard termination-detection trick for diffusing computations.
//!
//! # Examples
//!
//! ```
//! use hyperring_core::{build_consistent_tables, check_consistency, ProtocolOptions};
//! use hyperring_id::IdSpace;
//! use hyperring_net::ThreadedNetwork;
//! use rand::SeedableRng;
//!
//! let space = IdSpace::new(4, 4)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let mut ids = std::collections::BTreeSet::new();
//! while ids.len() < 12 {
//!     ids.insert(space.random_id(&mut rng));
//! }
//! let ids: Vec<_> = ids.into_iter().collect();
//! let members = build_consistent_tables(space, &ids[..8]);
//!
//! let joiners: Vec<_> = ids[8..].iter().map(|&id| (id, ids[0])).collect();
//! let net = ThreadedNetwork::new(space, ProtocolOptions::new(), members);
//! let tables = net.run_joins(&joiners);
//! assert!(check_consistency(space, &tables).is_consistent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use hyperring_core::{JoinEngine, Message, NeighborTable, Outbox, ProtocolOptions, Status};
use hyperring_id::{IdSpace, NodeId};

/// A message envelope on the thread network.
#[derive(Debug)]
enum Envelope {
    Proto { from: NodeId, msg: Message },
    Start { gateway: NodeId },
    Shutdown,
}

/// Shared state for quiescence detection.
#[derive(Debug, Default)]
struct Flight {
    /// Protocol messages sent but not yet fully processed.
    in_flight: AtomicI64,
    /// Joins that have not reached `in_system` yet.
    joining: AtomicI64,
}

/// A network of per-thread protocol engines connected by channels.
///
/// Construct with the initial members' tables, then call
/// [`run_joins`](Self::run_joins) with the joiners; the call blocks until
/// the whole network is quiescent and every joiner is an S-node, and
/// returns all final tables (members first, in construction order, then
/// joiners in the given order).
#[derive(Debug)]
pub struct ThreadedNetwork {
    space: IdSpace,
    opts: ProtocolOptions,
    members: Vec<NeighborTable>,
}

impl ThreadedNetwork {
    /// Creates a network over `space` whose initial members own `members`
    /// (consistent) tables.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(space: IdSpace, opts: ProtocolOptions, members: Vec<NeighborTable>) -> Self {
        assert!(!members.is_empty(), "network needs at least one member");
        ThreadedNetwork {
            space,
            opts,
            members,
        }
    }

    /// Runs all `(joiner, gateway)` joins concurrently on real threads and
    /// returns every node's final table.
    ///
    /// # Panics
    ///
    /// Panics if a joiner duplicates an existing identifier, a gateway is
    /// unknown, or the run fails to quiesce within a generous deadline
    /// (60 s), which Theorem 2 rules out absent bugs.
    pub fn run_joins(self, joiners: &[(NodeId, NodeId)]) -> Vec<NeighborTable> {
        let flight = Arc::new(Flight {
            in_flight: AtomicI64::new(0),
            joining: AtomicI64::new(joiners.len() as i64),
        });

        // Channels for every node.
        let mut senders: HashMap<NodeId, Sender<Envelope>> = HashMap::new();
        let mut receivers: Vec<Receiver<Envelope>> = Vec::new();
        let member_ids: Vec<NodeId> = self.members.iter().map(|t| t.owner()).collect();
        for id in member_ids.iter().chain(joiners.iter().map(|(id, _)| id)) {
            let (tx, rx) = unbounded();
            assert!(
                senders.insert(*id, tx).is_none(),
                "duplicate node identifier {id}"
            );
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        for (_, gateway) in joiners {
            assert!(senders.contains_key(gateway), "unknown gateway {gateway}");
        }

        // Spawn one thread per node.
        let mut handles = Vec::new();
        let mut rx_iter = receivers.into_iter();
        for table in self.members {
            let rx = rx_iter.next().expect("receiver per node");
            let engine = JoinEngine::new_member(self.space, self.opts, table);
            handles.push(spawn_node(
                engine,
                rx,
                Arc::clone(&senders),
                Arc::clone(&flight),
            ));
        }
        for (id, _) in joiners {
            let rx = rx_iter.next().expect("receiver per node");
            let engine = JoinEngine::new_joiner(self.space, self.opts, *id);
            handles.push(spawn_node(
                engine,
                rx,
                Arc::clone(&senders),
                Arc::clone(&flight),
            ));
        }

        // Fire all starts "at the same time" (the paper starts all joins at
        // t = 0).
        for (id, gateway) in joiners {
            flight.in_flight.fetch_add(1, Ordering::SeqCst);
            senders[id]
                .send(Envelope::Start { gateway: *gateway })
                .expect("node thread alive");
        }

        // Wait for quiescence: no in-flight messages and no joining nodes.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let inflight = flight.in_flight.load(Ordering::SeqCst);
            let joining = flight.joining.load(Ordering::SeqCst);
            if inflight == 0 && joining == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "network failed to quiesce: {inflight} in flight, {joining} joining"
            );
            thread::sleep(Duration::from_micros(200));
        }
        for s in senders.values() {
            let _ = s.send(Envelope::Shutdown);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .map(|e| e.table().clone())
            .collect()
    }
}

fn spawn_node(
    mut engine: JoinEngine,
    rx: Receiver<Envelope>,
    senders: Arc<HashMap<NodeId, Sender<Envelope>>>,
    flight: Arc<Flight>,
) -> thread::JoinHandle<JoinEngine> {
    thread::spawn(move || {
        let mut outbox = Outbox::new();
        let mut still_joining = !engine.is_in_system();
        while let Ok(env) = rx.recv() {
            match env {
                Envelope::Shutdown => break,
                Envelope::Start { gateway } => engine.start_join(gateway, &mut outbox),
                Envelope::Proto { from, msg } => engine.handle(from, msg, &mut outbox),
            }
            let me = engine.id();
            for (to, msg) in outbox.drain() {
                flight.in_flight.fetch_add(1, Ordering::SeqCst);
                senders[&to]
                    .send(Envelope::Proto { from: me, msg })
                    .expect("peer thread alive");
            }
            if still_joining && engine.status() == Status::InSystem {
                still_joining = false;
                flight.joining.fetch_sub(1, Ordering::SeqCst);
            }
            // Decrement only now: new sends were counted before our own
            // decrement, so in_flight == 0 really means quiescent.
            flight.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        engine
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::{build_consistent_tables, check_consistency};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn distinct_ids(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(space.random_id(&mut rng));
        }
        let mut v: Vec<NodeId> = set.into_iter().collect();
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn threaded_concurrent_joins_are_consistent() {
        let space = IdSpace::new(4, 5).unwrap();
        let ids = distinct_ids(space, 30, 11);
        let members = build_consistent_tables(space, &ids[..20]);
        let gateway = ids[0];
        let joiners: Vec<(NodeId, NodeId)> = ids[20..].iter().map(|&id| (id, gateway)).collect();
        let tables =
            ThreadedNetwork::new(space, ProtocolOptions::new(), members).run_joins(&joiners);
        assert_eq!(tables.len(), 30);
        let report = check_consistency(space, &tables);
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    fn threaded_repeated_runs_always_consistent() {
        // Real thread scheduling differs run to run; Theorem 1 must hold
        // every time.
        let space = IdSpace::new(8, 4).unwrap();
        for round in 0..5 {
            let ids = distinct_ids(space, 24, 100 + round);
            let members = build_consistent_tables(space, &ids[..16]);
            let joiners: Vec<(NodeId, NodeId)> = ids[16..]
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, ids[i % 16]))
                .collect();
            let tables =
                ThreadedNetwork::new(space, ProtocolOptions::new(), members).run_joins(&joiners);
            let report = check_consistency(space, &tables);
            assert!(report.is_consistent(), "round {round}: {report}");
        }
    }

    #[test]
    fn no_joiners_is_a_noop() {
        let space = IdSpace::new(4, 3).unwrap();
        let ids = distinct_ids(space, 5, 7);
        let members = build_consistent_tables(space, &ids);
        let tables =
            ThreadedNetwork::new(space, ProtocolOptions::new(), members.clone()).run_joins(&[]);
        assert_eq!(tables.len(), members.len());
        assert!(check_consistency(space, &tables).is_consistent());
    }

    #[test]
    #[should_panic(expected = "unknown gateway")]
    fn unknown_gateway_panics() {
        let space = IdSpace::new(4, 3).unwrap();
        let ids = distinct_ids(space, 4, 9);
        let members = build_consistent_tables(space, &ids[..3]);
        // Find an identifier that is neither a member nor the joiner.
        let ghost = (0..space.capacity().unwrap())
            .map(|v| space.id_from_value(v).unwrap())
            .find(|id| !ids.contains(id))
            .expect("space has spare ids");
        ThreadedNetwork::new(space, ProtocolOptions::new(), members).run_joins(&[(ids[3], ghost)]);
    }
}
