//! Network runtimes for the join protocol: the protocol, out of the
//! simulator.
//!
//! The deterministic simulator (`hyperring-sim`) is the primary
//! evaluation substrate, but the protocol engine is sans-io and runs
//! unchanged on real concurrency and real sockets. This crate hosts it on
//! three runtimes, all driven through the same
//! [`EngineDriver`](hyperring_core::EngineDriver) /
//! [`RuntimeDriver`](hyperring_core::RuntimeDriver) glue, so engine
//! behavior is identical by construction:
//!
//! | runtime | transport | threads | clock | delivery |
//! |---|---|---|---|---|
//! | [`ThreadedNetwork`] | crossbeam channels | one per node | wall | reliable, racy |
//! | [`UdpNetwork`] | loopback UDP | few event loops | wall | lossy (injected + backpressure) |
//! | [`LockstepNet`] | loopback UDP | one | virtual | reliable, deterministic |
//!
//! Messages on the UDP runtimes travel as `hyperring-wire` frames (see
//! the [`transport`] module for the datagram layout); timers on every
//! runtime are served by a hierarchical [`TimerWheel`], so a
//! [`RetryPolicy`](hyperring_core::RetryPolicy) works against the wall
//! clock too. [`LockstepNet`] reproduces the simulator's event ordering
//! exactly and yields byte-identical trace digests for lossless runs —
//! the proof that the codec and socket plumbing are transparent.
//!
//! # Examples
//!
//! ```
//! use hyperring_core::{build_consistent_tables, check_consistency, ProtocolOptions};
//! use hyperring_id::IdSpace;
//! use hyperring_net::ThreadedNetwork;
//! use rand::SeedableRng;
//!
//! let space = IdSpace::new(4, 4)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let mut ids = std::collections::BTreeSet::new();
//! while ids.len() < 12 {
//!     ids.insert(space.random_id(&mut rng));
//! }
//! let ids: Vec<_> = ids.into_iter().collect();
//! let members = build_consistent_tables(space, &ids[..8]);
//!
//! let joiners: Vec<_> = ids[8..].iter().map(|&id| (id, ids[0])).collect();
//! let net = ThreadedNetwork::new(space, ProtocolOptions::new(), members);
//! let tables = net.run_joins(&joiners)?;
//! assert!(check_consistency(space, &tables).is_consistent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)] // one exception: the poll(2) binding in transport::sys
#![warn(missing_docs)]

pub mod timer;
pub mod transport;

mod runtime;

pub use runtime::{LockstepNet, NetError, ThreadedNetwork, UdpConfig, UdpNetwork, UdpRunStats};
pub use timer::TimerWheel;
