//! The runtimes: real-concurrency hosts for the sans-io protocol engine.
//!
//! Three live here, all built on the same
//! [`EngineDriver`](hyperring_core::EngineDriver) /
//! [`RuntimeDriver`](hyperring_core::RuntimeDriver) pair, so engine
//! behavior is identical by construction:
//!
//! * [`ThreadedNetwork`] — one OS thread per node, crossbeam channels as
//!   the transport (reliable, real races);
//! * [`UdpNetwork`] — a few event-loop threads driving many engines each
//!   over non-blocking loopback UDP sockets, with injected packet loss
//!   and per-engine outbound backpressure;
//! * [`LockstepNet`] — single-threaded UDP under a virtual clock that
//!   reproduces the deterministic simulator's event ordering exactly
//!   (same `DigestTrace` for lossless runs).

mod lockstep;
mod threaded;
mod udp;

pub use lockstep::LockstepNet;
pub use threaded::ThreadedNetwork;
pub use udp::{UdpConfig, UdpNetwork, UdpRunStats};

use std::fmt;
use std::sync::atomic::AtomicI64;

use hyperring_id::NodeId;

/// Failure of a runtime run. The runtimes report problems instead of
/// panicking: configuration mistakes surface before any thread spawns,
/// liveness failures after an orderly shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A joiner duplicates an existing node identifier.
    DuplicateNode(NodeId),
    /// A joiner's gateway is neither a member nor a joiner.
    UnknownGateway(NodeId),
    /// The engine addressed a message to a node the network doesn't know
    /// (an engine bug; recorded rather than unwinding a worker thread).
    UnknownDestination(NodeId),
    /// The network failed to quiesce within the deadline.
    QuiesceTimeout {
        /// Messages still in flight when the deadline passed.
        in_flight: i64,
        /// Joiners still not `in_system` when the deadline passed.
        joining: i64,
    },
    /// A node thread panicked (its engine state is lost).
    NodePanicked,
    /// The socket layer failed (bind, send, or receive).
    Socket(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::DuplicateNode(id) => write!(f, "duplicate node identifier {id}"),
            NetError::UnknownGateway(id) => write!(f, "unknown gateway {id}"),
            NetError::UnknownDestination(id) => {
                write!(f, "message addressed to unknown node {id}")
            }
            NetError::QuiesceTimeout { in_flight, joining } => write!(
                f,
                "network failed to quiesce: {in_flight} in flight, {joining} joining"
            ),
            NetError::NodePanicked => write!(f, "a node thread panicked"),
            NetError::Socket(what) => write!(f, "socket failure: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Socket(e.to_string())
    }
}

/// Shared state for quiescence detection (the termination-detection trick
/// for diffusing computations: count sends before receipt processing
/// completes).
#[derive(Debug, Default)]
pub(crate) struct Flight {
    /// Protocol messages sent but not yet fully processed.
    pub(crate) in_flight: AtomicI64,
    /// Joins that have not reached `in_system` yet.
    pub(crate) joining: AtomicI64,
}
