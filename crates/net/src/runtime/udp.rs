//! Non-blocking UDP loopback runtime: a few event-loop threads, many
//! engines per thread, real datagrams.
//!
//! This is the deployment-shaped runtime. Each loop thread owns one
//! non-blocking [`UdpEndpoint`] and a partition of the engines; a poll(2)
//! readiness loop alternates between firing due [`TimerWheel`] deadlines,
//! draining arrivals, and flushing per-engine outbound queues. Sends never
//! block: a full outbound queue drops the datagram (counted as
//! backpressure) and the protocol's [`RetryPolicy`](hyperring_core::RetryPolicy)
//! absorbs it exactly as it absorbs injected packet loss.
//!
//! Unlike [`ThreadedNetwork`](super::ThreadedNetwork), delivery here is
//! genuinely unreliable — datagrams can be dropped by the injector, by
//! backpressure, or (under extreme load) by the kernel — so runs with loss
//! must configure a retry policy. Quiescence is detected by a supervisor
//! watching an activity counter: the run ends once every joiner is
//! `in_system`, nothing has happened for a settle window, all outbound
//! queues are flushed, and (absent a failure detector, whose probe timers
//! never stop) no retry timer remains armed.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hyperring_core::{
    EffectHandler, EngineDriver, JoinEngine, Message, NeighborTable, NodeInput, ProtocolOptions,
    RuntimeDriver, TimerId, TraceSink, TraceStream,
};
use hyperring_id::{IdSpace, NodeId};
use std::net::SocketAddr;

use crate::runtime::NetError;
use crate::timer::TimerWheel;
use crate::transport::{
    decode_plain, encode_plain, LossInjector, UdpEndpoint, WAIT_READ, WAIT_WRITE,
};

/// Tuning knobs for the UDP runtime.
#[derive(Debug, Clone)]
pub struct UdpConfig {
    /// Event-loop threads; engines are partitioned round-robin across
    /// them. Clamped to at least 1 and at most the node count.
    pub loop_threads: usize,
    /// Receive-side injected loss, in permille (0..=1000).
    pub loss_permille: u32,
    /// Seed for the deterministic loss injector (each loop thread derives
    /// its own stream from this).
    pub loss_seed: u64,
    /// Hard deadline for the whole run.
    pub quiesce_timeout: Duration,
    /// How long the network must stay silent before the run is declared
    /// quiescent. Must comfortably exceed the retry timeout when loss is
    /// injected, or the supervisor can declare victory between a drop and
    /// its retransmission.
    pub settle: Duration,
    /// Per-engine outbound queue bound; sends beyond it are dropped and
    /// counted as backpressure.
    pub outbound_capacity: usize,
    /// Timer-wheel granularity in microseconds.
    pub tick_us: u64,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            loop_threads: 2,
            loss_permille: 0,
            loss_seed: 0x1d_2003,
            quiesce_timeout: Duration::from_secs(120),
            settle: Duration::from_millis(50),
            outbound_capacity: 1024,
            tick_us: 100,
        }
    }
}

/// What a [`UdpNetwork`] run did, summed over all loop threads.
#[derive(Debug, Default, Clone, Copy)]
pub struct UdpRunStats {
    /// Datagrams written to the sockets.
    pub datagrams_sent: u64,
    /// Datagrams read from the sockets (including ones the injector then
    /// dropped).
    pub datagrams_received: u64,
    /// Bytes written to the sockets.
    pub bytes_sent: u64,
    /// Bytes read from the sockets.
    pub bytes_received: u64,
    /// Arrivals discarded by the loss injector.
    pub drops_injected: u64,
    /// Sends discarded because the engine's outbound queue was full.
    pub backpressure_drops: u64,
    /// Timer deadlines fired.
    pub timers_fired: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl UdpRunStats {
    fn absorb(&mut self, other: &UdpRunStats) {
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_received += other.datagrams_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.drops_injected += other.drops_injected;
        self.backpressure_drops += other.backpressure_drops;
        self.timers_fired += other.timers_fired;
    }
}

/// One engine hosted on a loop thread.
struct Slot {
    driver: EngineDriver,
    outbound: VecDeque<(SocketAddr, Vec<u8>)>,
}

/// Shared run state the supervisor watches.
struct Shared {
    /// Joins not yet `in_system`.
    joining: AtomicI64,
    /// Bumped on every delivery, timer fire, and send; the supervisor
    /// detects quiescence as "unchanged for the settle window".
    activity: AtomicU64,
    /// Set by the supervisor (or by a thread hitting a fatal socket
    /// error); loop threads drain and exit.
    shutdown: AtomicBool,
}

/// Per-thread gauges the supervisor reads.
struct Gauges {
    /// Timers currently armed in this thread's wheel.
    armed: AtomicU64,
    /// Datagrams queued but not yet written.
    pending_out: AtomicU64,
}

/// [`EffectHandler`] adapter for one engine on a loop thread: sends are
/// encoded and queued on the engine's outbound queue, timers armed on the
/// thread's shared wheel.
struct LoopHandler<'a> {
    space: IdSpace,
    me: NodeId,
    slot: usize,
    now_us: u64,
    routes: &'a HashMap<NodeId, SocketAddr>,
    outbound: &'a mut VecDeque<(SocketAddr, Vec<u8>)>,
    capacity: usize,
    wheel: &'a mut TimerWheel<(usize, TimerId)>,
    stats: &'a mut UdpRunStats,
    error: &'a mut Option<NetError>,
}

impl EffectHandler for LoopHandler<'_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        let Some(&addr) = self.routes.get(&to) else {
            self.error.get_or_insert(NetError::UnknownDestination(to));
            return;
        };
        if self.outbound.len() >= self.capacity {
            // Backpressure: drop rather than block the loop or grow
            // without bound; the retry policy treats it as loss.
            self.stats.backpressure_drops += 1;
            return;
        }
        let mut dgram = Vec::with_capacity(64);
        encode_plain(&self.space, to, self.me, &msg, &mut dgram);
        self.outbound.push_back((addr, dgram));
    }

    fn set_timer(&mut self, id: TimerId, delay_hint: u64) {
        self.wheel.arm((self.slot, id), self.now_us + delay_hint);
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.wheel.cancel(&(self.slot, id));
    }
}

impl RuntimeDriver for LoopHandler<'_> {
    fn now_us(&self) -> u64 {
        self.now_us
    }
}

/// A network of protocol engines multiplexed onto non-blocking loopback
/// UDP sockets.
///
/// Construct with the initial members' tables, tune with
/// [`with_config`](Self::with_config), then call
/// [`run_joins`](Self::run_joins); the call blocks until quiescence and
/// returns all final tables (members first, then joiners in the given
/// order) together with transport statistics.
pub struct UdpNetwork {
    space: IdSpace,
    opts: ProtocolOptions,
    members: Vec<NeighborTable>,
    config: UdpConfig,
    trace: Option<Arc<Mutex<TraceStream>>>,
}

impl UdpNetwork {
    /// Creates a network over `space` whose initial members own `members`
    /// (consistent) tables.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(space: IdSpace, opts: ProtocolOptions, members: Vec<NeighborTable>) -> Self {
        assert!(!members.is_empty(), "network needs at least one member");
        UdpNetwork {
            space,
            opts,
            members,
            config: UdpConfig::default(),
            trace: None,
        }
    }

    /// Replaces the default [`UdpConfig`].
    pub fn with_config(mut self, config: UdpConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a [`TraceSink`] shared by every loop thread. Timestamps
    /// are wall-clock microseconds since the run started. Implies
    /// [`ProtocolOptions::trace`].
    pub fn with_trace(mut self, sink: Box<dyn TraceSink + Send>) -> Self {
        self.opts = self.opts.with_trace();
        self.trace = Some(Arc::new(Mutex::new(TraceStream::new(sink))));
        self
    }

    /// Runs all `(joiner, gateway)` joins concurrently over real loopback
    /// sockets and returns every node's final table plus run statistics.
    ///
    /// # Errors
    ///
    /// [`NetError::DuplicateNode`] / [`NetError::UnknownGateway`] for
    /// configuration mistakes; [`NetError::Socket`] for bind/IO failures;
    /// [`NetError::QuiesceTimeout`] if the run exceeds
    /// [`UdpConfig::quiesce_timeout`] (under heavy injected loss this
    /// usually means the retry budget or settle window is too small);
    /// [`NetError::NodePanicked`] if a loop thread panicked.
    pub fn run_joins(
        self,
        joiners: &[(NodeId, NodeId)],
    ) -> Result<(Vec<NeighborTable>, UdpRunStats), NetError> {
        let n_nodes = self.members.len() + joiners.len();
        let n_threads = self.config.loop_threads.clamp(1, n_nodes);

        // Validate the roster before any socket is bound.
        let mut known: HashMap<NodeId, ()> = HashMap::with_capacity(n_nodes);
        let member_ids: Vec<NodeId> = self.members.iter().map(|t| t.owner()).collect();
        for id in member_ids.iter().chain(joiners.iter().map(|(id, _)| id)) {
            if known.insert(*id, ()).is_some() {
                return Err(NetError::DuplicateNode(*id));
            }
        }
        for (_, gateway) in joiners {
            if !known.contains_key(gateway) {
                return Err(NetError::UnknownGateway(*gateway));
            }
        }

        // Bind one endpoint per loop thread, then build the global route
        // table: node -> owning thread's socket address. Nodes are dealt
        // round-robin so member and joiner load spreads evenly.
        let mut endpoints = Vec::with_capacity(n_threads);
        let mut addrs = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let ep = UdpEndpoint::bind()?;
            addrs.push(ep.local_addr()?);
            endpoints.push(ep);
        }
        let mut routes: HashMap<NodeId, SocketAddr> = HashMap::with_capacity(n_nodes);
        let mut partitions: Vec<Vec<(NodeId, Option<NodeId>)>> = vec![Vec::new(); n_threads];
        let roster = member_ids
            .iter()
            .map(|&id| (id, None))
            .chain(joiners.iter().map(|&(id, gw)| (id, Some(gw))));
        for (i, (id, gw)) in roster.enumerate() {
            routes.insert(id, addrs[i % n_threads]);
            partitions[i % n_threads].push((id, gw));
        }
        let routes = Arc::new(routes);

        let shared = Arc::new(Shared {
            joining: AtomicI64::new(joiners.len() as i64),
            activity: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let gauges: Arc<Vec<Gauges>> = Arc::new(
            (0..n_threads)
                .map(|_| Gauges {
                    armed: AtomicU64::new(0),
                    pending_out: AtomicU64::new(0),
                })
                .collect(),
        );
        let fd_configured = self.opts.failure_detector().is_some();

        let mut member_tables: HashMap<NodeId, NeighborTable> =
            self.members.into_iter().map(|t| (t.owner(), t)).collect();

        let epoch = Instant::now();
        let mut handles = Vec::with_capacity(n_threads);
        for (t, (endpoint, roster)) in endpoints.into_iter().zip(partitions).enumerate() {
            // Materialize this thread's engines in partition order.
            let mut slots = Vec::with_capacity(roster.len());
            let mut starts = Vec::new();
            for (s, (id, gw)) in roster.iter().enumerate() {
                let engine = match gw {
                    None => {
                        let table = member_tables.remove(id).expect("member table");
                        JoinEngine::new_member(self.space, self.opts, table)
                    }
                    Some(gw) => {
                        starts.push((s, *gw));
                        JoinEngine::new_joiner(self.space, self.opts, *id)
                    }
                };
                slots.push(Slot {
                    driver: EngineDriver::new(engine),
                    outbound: VecDeque::new(),
                });
            }
            handles.push(thread::spawn({
                let space = self.space;
                let routes = Arc::clone(&routes);
                let shared = Arc::clone(&shared);
                let gauges = Arc::clone(&gauges);
                let trace = self.trace.clone();
                let config = self.config.clone();
                move || {
                    run_loop(
                        space, endpoint, slots, starts, routes, shared, gauges, t, trace, config,
                        epoch,
                    )
                }
            }));
        }

        // Supervise: watch for quiescence or the deadline.
        let deadline = epoch + self.config.quiesce_timeout;
        let mut last_activity = u64::MAX;
        let mut quiet_since = Instant::now();
        let timed_out = loop {
            thread::sleep(Duration::from_millis(2));
            let act = shared.activity.load(Ordering::SeqCst);
            if act != last_activity {
                last_activity = act;
                quiet_since = Instant::now();
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break false; // a thread hit a fatal error and rang the bell
            }
            let joining = shared.joining.load(Ordering::SeqCst);
            let armed: u64 = gauges.iter().map(|g| g.armed.load(Ordering::SeqCst)).sum();
            let pending: u64 = gauges
                .iter()
                .map(|g| g.pending_out.load(Ordering::SeqCst))
                .sum();
            if joining <= 0
                && pending == 0
                && quiet_since.elapsed() >= self.config.settle
                && (fd_configured || armed == 0)
            {
                break false;
            }
            if Instant::now() >= deadline {
                break true;
            }
        };
        shared.shutdown.store(true, Ordering::SeqCst);

        let mut engines: HashMap<NodeId, JoinEngine> = HashMap::with_capacity(n_nodes);
        let mut stats = UdpRunStats::default();
        let mut first_error = None;
        for h in handles {
            match h.join() {
                Ok((thread_engines, thread_stats, err)) => {
                    stats.absorb(&thread_stats);
                    if let Some(e) = err {
                        first_error.get_or_insert(e);
                    }
                    for (id, engine) in thread_engines {
                        engines.insert(id, engine);
                    }
                }
                Err(_) => {
                    first_error.get_or_insert(NetError::NodePanicked);
                }
            }
        }
        stats.wall = epoch.elapsed();
        if let Some(stream) = &self.trace {
            if let Ok(mut stream) = stream.lock() {
                stream.flush();
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        if timed_out {
            return Err(NetError::QuiesceTimeout {
                in_flight: 0,
                joining: shared.joining.load(Ordering::SeqCst),
            });
        }

        let tables = member_ids
            .iter()
            .chain(joiners.iter().map(|(id, _)| id))
            .map(|id| {
                engines
                    .get(id)
                    .map(|e| e.table().clone())
                    .ok_or(NetError::NodePanicked)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((tables, stats))
    }
}

/// Feeds one input through a slot's driver with split borrows on the
/// thread state; returns whether the node just entered the system.
#[allow(clippy::too_many_arguments)]
fn drive_slot(
    space: IdSpace,
    slots: &mut [Slot],
    s: usize,
    input: NodeInput,
    now_us: u64,
    routes: &HashMap<NodeId, SocketAddr>,
    capacity: usize,
    wheel: &mut TimerWheel<(usize, TimerId)>,
    stats: &mut UdpRunStats,
    error: &mut Option<NetError>,
    trace: &Option<Arc<Mutex<TraceStream>>>,
) -> bool {
    let Slot { driver, outbound } = &mut slots[s];
    let mut handler = LoopHandler {
        space,
        me: driver.engine().id(),
        slot: s,
        now_us,
        routes,
        outbound,
        capacity,
        wheel,
        stats,
        error,
    };
    let report = match trace.as_ref().map(|t| t.lock()) {
        Some(Ok(mut stream)) => driver.drive(input, &mut handler, Some(&mut stream)),
        _ => driver.drive(input, &mut handler, None),
    };
    report.entered_system
}

/// The event loop one thread runs: timers, receives, flushes, poll(2).
#[allow(clippy::too_many_arguments)]
fn run_loop(
    space: IdSpace,
    endpoint: UdpEndpoint,
    mut slots: Vec<Slot>,
    starts: Vec<(usize, NodeId)>,
    routes: Arc<HashMap<NodeId, SocketAddr>>,
    shared: Arc<Shared>,
    gauges: Arc<Vec<Gauges>>,
    me: usize,
    trace: Option<Arc<Mutex<TraceStream>>>,
    config: UdpConfig,
    epoch: Instant,
) -> (Vec<(NodeId, JoinEngine)>, UdpRunStats, Option<NetError>) {
    let mut wheel: TimerWheel<(usize, TimerId)> =
        TimerWheel::new(config.tick_us, epoch.elapsed().as_micros() as u64);
    let mut loss = LossInjector::new(
        config.loss_seed.wrapping_add(me as u64), //
        config.loss_permille,
    );
    let mut stats = UdpRunStats::default();
    let mut error: Option<NetError> = None;
    // An engine index for datagram dispatch; the `to` prefix addresses a
    // node, not a socket, since many engines share this endpoint.
    let index: HashMap<NodeId, usize> = slots
        .iter()
        .enumerate()
        .map(|(s, slot)| (slot.driver.engine().id(), s))
        .collect();
    let mut buf = vec![0u8; 64 * 1024];

    // Arm failure detectors (a no-op unless configured), then fire every
    // join "at the same time", as the paper's waves do.
    for s in 0..slots.len() {
        let now = epoch.elapsed().as_micros() as u64;
        drive_slot(
            space,
            &mut slots,
            s,
            NodeInput::StartFailureDetector,
            now,
            &routes,
            config.outbound_capacity,
            &mut wheel,
            &mut stats,
            &mut error,
            &trace,
        );
    }
    for (s, gateway) in starts {
        let now = epoch.elapsed().as_micros() as u64;
        let entered = drive_slot(
            space,
            &mut slots,
            s,
            NodeInput::StartJoin { gateway },
            now,
            &routes,
            config.outbound_capacity,
            &mut wheel,
            &mut stats,
            &mut error,
            &trace,
        );
        if entered {
            shared.joining.fetch_sub(1, Ordering::SeqCst);
        }
        shared.activity.fetch_add(1, Ordering::SeqCst);
    }

    'main: loop {
        // 1. Fire due timers.
        let now = epoch.elapsed().as_micros() as u64;
        for key in wheel.advance(now) {
            let (s, id) = key;
            stats.timers_fired += 1;
            let entered = drive_slot(
                space,
                &mut slots,
                s,
                NodeInput::TimerFired(id),
                now,
                &routes,
                config.outbound_capacity,
                &mut wheel,
                &mut stats,
                &mut error,
                &trace,
            );
            if entered {
                shared.joining.fetch_sub(1, Ordering::SeqCst);
            }
            shared.activity.fetch_add(1, Ordering::SeqCst);
        }

        // 2. Drain arrivals.
        loop {
            match endpoint.try_recv(&mut buf) {
                Ok(Some((n, _))) => {
                    stats.datagrams_received += 1;
                    stats.bytes_received += n as u64;
                    if loss.drop_next() {
                        stats.drops_injected += 1;
                        continue;
                    }
                    let Ok((to, from, msg)) = decode_plain(&space, &buf[..n]) else {
                        continue; // malformed datagrams are dropped, not fatal
                    };
                    let Some(&s) = index.get(&to) else {
                        continue; // misrouted; not ours
                    };
                    let now = epoch.elapsed().as_micros() as u64;
                    let entered = drive_slot(
                        space,
                        &mut slots,
                        s,
                        NodeInput::Deliver { from, msg },
                        now,
                        &routes,
                        config.outbound_capacity,
                        &mut wheel,
                        &mut stats,
                        &mut error,
                        &trace,
                    );
                    if entered {
                        shared.joining.fetch_sub(1, Ordering::SeqCst);
                    }
                    shared.activity.fetch_add(1, Ordering::SeqCst);
                }
                Ok(None) => break,
                Err(e) => {
                    error.get_or_insert(e.into());
                    shared.shutdown.store(true, Ordering::SeqCst);
                    break 'main;
                }
            }
        }

        // 3. Flush outbound queues until the socket pushes back.
        let mut blocked = false;
        let mut pending: u64 = 0;
        for slot in &mut slots {
            while let Some((addr, dgram)) = slot.outbound.front() {
                if blocked {
                    break;
                }
                match endpoint.try_send(dgram, *addr) {
                    Ok(true) => {
                        stats.datagrams_sent += 1;
                        stats.bytes_sent += dgram.len() as u64;
                        shared.activity.fetch_add(1, Ordering::SeqCst);
                        slot.outbound.pop_front();
                    }
                    Ok(false) => {
                        blocked = true;
                    }
                    Err(e) => {
                        error.get_or_insert(e.into());
                        shared.shutdown.store(true, Ordering::SeqCst);
                        break 'main;
                    }
                }
            }
            pending += slot.outbound.len() as u64;
        }

        // 4. Publish gauges and honor shutdown once everything is flushed
        // (or can't be: a blocked socket during shutdown is abandoned).
        gauges[me].armed.store(wheel.len() as u64, Ordering::SeqCst);
        gauges[me].pending_out.store(pending, Ordering::SeqCst);
        if shared.shutdown.load(Ordering::SeqCst) && (pending == 0 || blocked) {
            break;
        }

        // 5. Sleep on readiness until the nearest timer deadline.
        let now = epoch.elapsed().as_micros() as u64;
        let timeout_us = match wheel.next_deadline_us() {
            Some(at) => at.saturating_sub(now).min(5_000),
            None => 5_000,
        };
        if timeout_us > 0 {
            let events = WAIT_READ | if pending > 0 { WAIT_WRITE } else { 0 };
            if let Err(e) = endpoint.wait(events, Duration::from_micros(timeout_us)) {
                error.get_or_insert(e.into());
                shared.shutdown.store(true, Ordering::SeqCst);
                break;
            }
        }
    }

    let engines = slots
        .into_iter()
        .map(|slot| {
            let engine = slot.driver.into_engine();
            (engine.id(), engine)
        })
        .collect();
    (engines, stats, error)
}
