//! Lockstep UDP: the simulator's deterministic schedule over real
//! sockets.
//!
//! [`LockstepNet`] runs every engine on one thread under a **virtual**
//! clock, but routes every protocol message through an actual loopback
//! UDP socket. Each datagram carries its virtual delivery time and the
//! global event sequence number (see
//! [`encode_scheduled`](crate::transport::encode_scheduled)); arrivals go
//! into a priority queue ordered by `(time, seq)` — exactly the order the
//! deterministic simulator (`hyperring-sim`) processes events in, with
//! sequence numbers consumed at the same points (every send, every timer
//! arm, every initial injection).
//!
//! The payoff: with a constant delay model, a seeded
//! [`SimNetworkBuilder`](hyperring_core::SimNetworkBuilder) run and a
//! [`LockstepNet`] run produce **identical trace digests**, even though
//! one delivers messages through a `BinaryHeap` and the other through the
//! kernel's UDP stack. That parity is the proof that the wire codec and
//! the socket plumbing are transparent: same engine steps, same
//! timestamps, same bytes, different transport. The parity test in
//! `tests/parity.rs` pins it.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};

use hyperring_core::{
    EffectHandler, EngineDriver, JoinEngine, Message, NeighborTable, NodeInput, ProtocolOptions,
    RuntimeDriver, TimerId, TraceSink, TraceStream,
};
use hyperring_id::{IdSpace, NodeId};

use crate::runtime::NetError;
use crate::transport::{decode_scheduled, encode_scheduled, UdpEndpoint, WAIT_READ};

/// Hard cap on processed events; a run that exceeds it is reported as a
/// quiescence failure rather than spinning forever (a configured failure
/// detector re-arms probes indefinitely, which this runtime — built to
/// terminate when the queue drains — does not support).
const MAX_STEPS: u64 = 50_000_000;

/// How long to wait for a datagram the runtime itself just sent to its
/// own socket before declaring the transport broken.
const RECV_DEADLINE: Duration = Duration::from_secs(5);

/// A scheduled event. Ordering (and equality) consider only `(at, seq)`;
/// `seq` is unique, so the order is total and deterministic.
struct Ev {
    at: u64,
    seq: u64,
    slot: usize,
    kind: EvKind,
}

enum EvKind {
    StartJoin { gateway: NodeId },
    StartFd,
    Timer { id: TimerId, gen: u64 },
    Deliver { from: NodeId, msg: Message },
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    /// Reversed, so the max-heap [`BinaryHeap`] pops the earliest event.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// [`EffectHandler`] adapter: sends become scheduled datagrams (stamped
/// with virtual delivery time and a fresh sequence number, then written to
/// the socket), timers become heap events, and the clock reads virtual
/// time.
struct LockstepHandler<'a> {
    space: IdSpace,
    me: NodeId,
    slot: usize,
    now_us: u64,
    delay_us: u64,
    next_seq: &'a mut u64,
    next_gen: &'a mut u64,
    armed: &'a mut HashMap<(usize, TimerId), u64>,
    heap: &'a mut BinaryHeap<Ev>,
    index: &'a HashMap<NodeId, usize>,
    outbox: &'a mut Vec<Vec<u8>>,
    error: &'a mut Option<NetError>,
}

impl EffectHandler for LockstepHandler<'_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        if !self.index.contains_key(&to) {
            self.error.get_or_insert(NetError::UnknownDestination(to));
            return;
        }
        let seq = *self.next_seq;
        *self.next_seq += 1;
        let mut dgram = Vec::with_capacity(64);
        encode_scheduled(
            &self.space,
            to,
            self.now_us + self.delay_us,
            seq,
            self.me,
            &msg,
            &mut dgram,
        );
        self.outbox.push(dgram);
    }

    fn set_timer(&mut self, id: TimerId, delay_hint: u64) {
        let gen = *self.next_gen;
        *self.next_gen += 1;
        let seq = *self.next_seq;
        *self.next_seq += 1;
        self.armed.insert((self.slot, id), gen);
        self.heap.push(Ev {
            at: self.now_us + delay_hint,
            seq,
            slot: self.slot,
            kind: EvKind::Timer { id, gen },
        });
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.armed.remove(&(self.slot, id));
    }
}

impl RuntimeDriver for LockstepHandler<'_> {
    fn now_us(&self) -> u64 {
        self.now_us
    }
}

/// Single-threaded, virtual-time UDP runtime reproducing the simulator's
/// event order exactly.
///
/// Build with the members' tables, add joiners with
/// [`add_joiner`](Self::add_joiner) (virtual start times, like the
/// simulator's), then [`run`](Self::run). Message delay is a constant
/// [`delay_us`](Self::delay_us), matching the simulator's
/// `ConstantDelay` — constant delay draws nothing from the simulator's
/// RNG, which is what makes byte-identical traces possible.
pub struct LockstepNet {
    space: IdSpace,
    opts: ProtocolOptions,
    members: Vec<NeighborTable>,
    joiners: Vec<(NodeId, NodeId, u64)>,
    delay_us: u64,
    trace: Option<Box<dyn TraceSink + Send>>,
}

impl LockstepNet {
    /// Creates a lockstep network whose initial members own `members`
    /// (consistent) tables.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(space: IdSpace, opts: ProtocolOptions, members: Vec<NeighborTable>) -> Self {
        assert!(!members.is_empty(), "network needs at least one member");
        LockstepNet {
            space,
            opts,
            members,
            joiners: Vec::new(),
            delay_us: 1_000,
            trace: None,
        }
    }

    /// Sets the constant per-message delay in virtual microseconds
    /// (default 1000). For trace parity, pass the same constant to the
    /// simulator's delay model.
    pub fn delay_us(mut self, delay_us: u64) -> Self {
        self.delay_us = delay_us;
        self
    }

    /// Schedules `joiner` to start joining through `gateway` at virtual
    /// time `at_us`. Order matters: it determines the sequence numbers of
    /// the start events, just as injection order does in the simulator.
    pub fn add_joiner(mut self, joiner: NodeId, gateway: NodeId, at_us: u64) -> Self {
        self.joiners.push((joiner, gateway, at_us));
        self
    }

    /// Attaches a [`TraceSink`]. Records are stamped with **virtual**
    /// time, so a lossless run's digest matches the simulator's. Implies
    /// [`ProtocolOptions::trace`].
    pub fn with_trace(mut self, sink: Box<dyn TraceSink + Send>) -> Self {
        self.opts = self.opts.with_trace();
        self.trace = Some(sink);
        self
    }

    /// Runs to quiescence (an empty event queue) and returns every node's
    /// final table, members first, then joiners in insertion order.
    ///
    /// # Errors
    ///
    /// [`NetError::DuplicateNode`] / [`NetError::UnknownGateway`] for
    /// roster mistakes, [`NetError::Socket`] if the loopback transport
    /// fails (including losing one of this runtime's own datagrams), and
    /// [`NetError::QuiesceTimeout`] past an event-count safety cap.
    pub fn run(self) -> Result<Vec<NeighborTable>, NetError> {
        let mut index: HashMap<NodeId, usize> = HashMap::new();
        let ids: Vec<NodeId> = self
            .members
            .iter()
            .map(|t| t.owner())
            .chain(self.joiners.iter().map(|&(id, _, _)| id))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            if index.insert(*id, i).is_some() {
                return Err(NetError::DuplicateNode(*id));
            }
        }
        for (_, gateway, _) in &self.joiners {
            if !index.contains_key(gateway) {
                return Err(NetError::UnknownGateway(*gateway));
            }
        }

        let n_members = self.members.len();
        let mut drivers: Vec<EngineDriver> = self
            .members
            .into_iter()
            .map(|t| EngineDriver::new(JoinEngine::new_member(self.space, self.opts, t)))
            .chain(self.joiners.iter().map(|&(id, _, _)| {
                EngineDriver::new(JoinEngine::new_joiner(self.space, self.opts, id))
            }))
            .collect();
        let mut trace = self.trace.map(TraceStream::new);

        // Initial injections, in the simulator's order (each consumes a
        // sequence number): failure-detector starts for the members first
        // (only when configured — the simulator injects nothing
        // otherwise), then the joiners' starts in insertion order.
        let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
        let mut next_seq: u64 = 0;
        let mut next_gen: u64 = 0;
        let mut armed: HashMap<(usize, TimerId), u64> = HashMap::new();
        if self.opts.failure_detector().is_some() {
            for slot in 0..n_members {
                heap.push(Ev {
                    at: 0,
                    seq: next_seq,
                    slot,
                    kind: EvKind::StartFd,
                });
                next_seq += 1;
            }
        }
        for (j, &(_, gateway, at_us)) in self.joiners.iter().enumerate() {
            heap.push(Ev {
                at: at_us,
                seq: next_seq,
                slot: n_members + j,
                kind: EvKind::StartJoin { gateway },
            });
            next_seq += 1;
        }

        // One self-addressed socket carries every message.
        let endpoint = UdpEndpoint::bind()?;
        let me_addr = endpoint.local_addr()?;
        let mut buf = vec![0u8; 64 * 1024];
        let mut outbox: Vec<Vec<u8>> = Vec::new();
        let mut steps: u64 = 0;
        let mut joining = self.joiners.len() as i64;

        while let Some(ev) = heap.pop() {
            steps += 1;
            if steps > MAX_STEPS {
                return Err(NetError::QuiesceTimeout {
                    in_flight: heap.len() as i64,
                    joining,
                });
            }
            // Stale timers are skipped without touching the clock, exactly
            // as the simulator does.
            let input = match ev.kind {
                EvKind::Timer { id, gen } => {
                    if armed.get(&(ev.slot, id)) != Some(&gen) {
                        continue;
                    }
                    armed.remove(&(ev.slot, id));
                    NodeInput::TimerFired(id)
                }
                EvKind::StartJoin { gateway } => NodeInput::StartJoin { gateway },
                EvKind::StartFd => NodeInput::StartFailureDetector,
                EvKind::Deliver { from, msg } => NodeInput::Deliver { from, msg },
            };
            let now_us = ev.at;
            let mut error: Option<NetError> = None;
            let driver = &mut drivers[ev.slot];
            let mut handler = LockstepHandler {
                space: self.space,
                me: driver.engine().id(),
                slot: ev.slot,
                now_us,
                delay_us: self.delay_us,
                next_seq: &mut next_seq,
                next_gen: &mut next_gen,
                armed: &mut armed,
                heap: &mut heap,
                index: &index,
                outbox: &mut outbox,
                error: &mut error,
            };
            let report = driver.drive(input, &mut handler, trace.as_mut());
            if report.entered_system {
                joining -= 1;
            }
            if let Some(e) = error {
                return Err(e);
            }

            // Round-trip this step's sends through the kernel: write them
            // all, then block until each comes back and lands in the heap
            // with the (time, seq) stamp it was sent with.
            let expected = outbox.len();
            for dgram in outbox.drain(..) {
                let mut tries = 0;
                while !endpoint.try_send(&dgram, me_addr)? {
                    endpoint.wait(crate::transport::WAIT_WRITE, Duration::from_millis(10))?;
                    tries += 1;
                    if tries > 1_000 {
                        return Err(NetError::Socket("loopback send stalled".into()));
                    }
                }
            }
            let deadline = Instant::now() + RECV_DEADLINE;
            let mut got = 0;
            while got < expected {
                match endpoint.try_recv(&mut buf)? {
                    Some((n, _)) => {
                        let (to, at, seq, from, msg) = decode_scheduled(&self.space, &buf[..n])
                            .map_err(|e| NetError::Socket(format!("scheduled decode: {e}")))?;
                        let slot = *index.get(&to).ok_or_else(|| {
                            NetError::Socket(format!("misrouted datagram to {to}"))
                        })?;
                        heap.push(Ev {
                            at,
                            seq,
                            slot,
                            kind: EvKind::Deliver { from, msg },
                        });
                        got += 1;
                    }
                    None => {
                        if Instant::now() >= deadline {
                            return Err(NetError::Socket(format!(
                                "lockstep datagram lost: {got}/{expected} returned"
                            )));
                        }
                        endpoint.wait(WAIT_READ, Duration::from_millis(10))?;
                    }
                }
            }
        }

        if let Some(trace) = trace.as_mut() {
            trace.flush();
        }
        Ok(drivers
            .into_iter()
            .map(|d| d.into_engine().table().clone())
            .collect())
    }
}
