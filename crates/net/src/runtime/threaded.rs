//! One OS thread per node, crossbeam channels as the transport.
//!
//! The deterministic simulator (`hyperring-sim`) is the primary evaluation
//! substrate, but the protocol engine is sans-io and runs unchanged on
//! real concurrency. This runtime gives every node its own thread — true
//! parallelism, real races, no seeded schedule — which makes it a useful
//! stress test: Theorem 1 promises consistency under *any* message
//! interleaving, and the tests assert exactly that.
//!
//! Every node is an [`EngineDriver`] behind the shared
//! [`RuntimeDriver`](hyperring_core::RuntimeDriver) glue: sends become
//! channel messages, timers land in the thread's [`TimerWheel`] (so a
//! [`RetryPolicy`](hyperring_core::RetryPolicy) works here too), and trace
//! events go to an optional shared [`TraceSink`].
//!
//! Quiescence is detected with an in-flight message counter (incremented
//! before a send, decremented after the receiver finishes processing), the
//! standard termination-detection trick for diffusing computations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hyperring_core::{
    EffectHandler, EngineDriver, JoinEngine, Message, NeighborTable, NodeInput, ProtocolOptions,
    RuntimeDriver, Status, TimerId, TraceSink, TraceStream,
};
use hyperring_id::{IdSpace, NodeId};

use crate::runtime::{Flight, NetError};
use crate::timer::TimerWheel;

/// Wheel granularity: fine enough for the aggressive sub-millisecond
/// retry timeouts the stress tests configure.
const TICK_US: u64 = 50;

/// A message envelope on the thread network.
#[derive(Debug)]
enum Envelope {
    Proto {
        from: NodeId,
        msg: Message,
    },
    Start {
        gateway: NodeId,
    },
    /// Crash-fail the node: the thread exits on the spot, with no goodbye
    /// traffic (crash-churn extension). Queued and future messages to it
    /// die with its channel.
    Kill,
    Shutdown,
}

/// [`EffectHandler`] adapter for one node thread: sends go over channels
/// (counted for quiescence detection), timers into the thread's wheel.
struct ThreadHandler<'a> {
    me: NodeId,
    now_us: u64,
    senders: &'a HashMap<NodeId, Sender<Envelope>>,
    flight: &'a Flight,
    wheel: &'a mut TimerWheel<TimerId>,
    error: &'a mut Option<NetError>,
}

impl EffectHandler for ThreadHandler<'_> {
    fn send(&mut self, to: NodeId, msg: Message) {
        let Some(tx) = self.senders.get(&to) else {
            self.error.get_or_insert(NetError::UnknownDestination(to));
            return;
        };
        self.flight.in_flight.fetch_add(1, Ordering::SeqCst);
        if tx.send(Envelope::Proto { from: self.me, msg }).is_err() {
            // The receiver is gone, which only happens once shutdown has
            // begun; undo the count so quiescence bookkeeping stays exact.
            self.flight.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn set_timer(&mut self, id: TimerId, delay_hint: u64) {
        self.wheel.arm(id, self.now_us + delay_hint);
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.wheel.cancel(&id);
    }
}

impl RuntimeDriver for ThreadHandler<'_> {
    fn now_us(&self) -> u64 {
        self.now_us
    }
}

/// A network of per-thread protocol engines connected by channels.
///
/// Construct with the initial members' tables, then call
/// [`run_joins`](Self::run_joins) with the joiners; the call blocks until
/// the whole network is quiescent and every joiner is an S-node, and
/// returns all final tables (members first, in construction order, then
/// joiners in the given order).
#[derive(Debug)]
pub struct ThreadedNetwork {
    space: IdSpace,
    opts: ProtocolOptions,
    members: Vec<NeighborTable>,
    trace: Option<Arc<Mutex<TraceStream>>>,
}

impl ThreadedNetwork {
    /// Creates a network over `space` whose initial members own `members`
    /// (consistent) tables.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(space: IdSpace, opts: ProtocolOptions, members: Vec<NeighborTable>) -> Self {
        assert!(!members.is_empty(), "network needs at least one member");
        ThreadedNetwork {
            space,
            opts,
            members,
            trace: None,
        }
    }

    /// Attaches a [`TraceSink`] shared by every node thread. Timestamps
    /// are wall-clock microseconds since the run started (monotone but —
    /// unlike the simulators' virtual time — not deterministic). Implies
    /// [`ProtocolOptions::trace`].
    pub fn with_trace(mut self, sink: Box<dyn TraceSink + Send>) -> Self {
        self.opts = self.opts.with_trace();
        self.trace = Some(Arc::new(Mutex::new(TraceStream::new(sink))));
        self
    }

    /// Runs all `(joiner, gateway)` joins concurrently on real threads and
    /// returns every node's final table.
    ///
    /// # Errors
    ///
    /// [`NetError::DuplicateNode`] / [`NetError::UnknownGateway`] for
    /// configuration mistakes (reported before any thread spawns);
    /// [`NetError::QuiesceTimeout`] if the run fails to quiesce within a
    /// generous deadline (60 s), which Theorem 2 rules out absent bugs;
    /// [`NetError::NodePanicked`] / [`NetError::UnknownDestination`] for
    /// internal failures. On every error path all node threads are shut
    /// down and joined before returning.
    pub fn run_joins(self, joiners: &[(NodeId, NodeId)]) -> Result<Vec<NeighborTable>, NetError> {
        let engines = self.run_inner(joiners, &[], Duration::ZERO)?;
        Ok(engines.iter().map(|e| e.table().clone()).collect())
    }

    /// Runs all joins to quiescence, then **kills** the `kills` nodes —
    /// their threads exit on the spot with no goodbye traffic — and lets
    /// the survivors run for `grace` wall-clock time so their failure
    /// detectors (configure one via
    /// [`ProtocolOptions::with_failure_detector`](hyperring_core::ProtocolOptions::with_failure_detector))
    /// can evict the dead and repair their tables. Returns the survivors'
    /// final tables (crash-churn extension).
    ///
    /// # Errors
    ///
    /// Everything [`run_joins`](Self::run_joins) reports, plus
    /// [`NetError::UnknownDestination`] when a kill target is neither a
    /// member nor a joiner.
    pub fn run_crash_scenario(
        self,
        joiners: &[(NodeId, NodeId)],
        kills: &[NodeId],
        grace: Duration,
    ) -> Result<Vec<NeighborTable>, NetError> {
        let engines = self.run_inner(joiners, kills, grace)?;
        Ok(engines
            .iter()
            .filter(|e| e.status() != Status::Crashed)
            .map(|e| e.table().clone())
            .collect())
    }

    fn run_inner(
        self,
        joiners: &[(NodeId, NodeId)],
        kills: &[NodeId],
        grace: Duration,
    ) -> Result<Vec<JoinEngine>, NetError> {
        let flight = Arc::new(Flight {
            in_flight: AtomicI64::new(0),
            joining: AtomicI64::new(joiners.len() as i64),
        });

        // Channels for every node.
        let mut senders: HashMap<NodeId, Sender<Envelope>> = HashMap::new();
        let mut receivers: Vec<Receiver<Envelope>> = Vec::new();
        let member_ids: Vec<NodeId> = self.members.iter().map(|t| t.owner()).collect();
        for id in member_ids.iter().chain(joiners.iter().map(|(id, _)| id)) {
            let (tx, rx) = unbounded();
            if senders.insert(*id, tx).is_some() {
                return Err(NetError::DuplicateNode(*id));
            }
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        for (_, gateway) in joiners {
            if !senders.contains_key(gateway) {
                return Err(NetError::UnknownGateway(*gateway));
            }
        }
        for id in kills {
            if !senders.contains_key(id) {
                return Err(NetError::UnknownDestination(*id));
            }
        }

        // Spawn one thread per node.
        let epoch = Instant::now();
        let mut handles = Vec::new();
        let mut rx_iter = receivers.into_iter();
        for table in self.members {
            let rx = rx_iter.next().expect("receiver per node");
            let engine = JoinEngine::new_member(self.space, self.opts, table);
            handles.push(spawn_node(
                engine,
                rx,
                Arc::clone(&senders),
                Arc::clone(&flight),
                self.trace.clone(),
                epoch,
            ));
        }
        for (id, _) in joiners {
            let rx = rx_iter.next().expect("receiver per node");
            let engine = JoinEngine::new_joiner(self.space, self.opts, *id);
            handles.push(spawn_node(
                engine,
                rx,
                Arc::clone(&senders),
                Arc::clone(&flight),
                self.trace.clone(),
                epoch,
            ));
        }

        let shutdown_all = |handles: Vec<thread::JoinHandle<(JoinEngine, Option<NetError>)>>| {
            for s in senders.values() {
                let _ = s.send(Envelope::Shutdown);
            }
            let mut engines = Vec::with_capacity(handles.len());
            let mut first_error = None;
            for h in handles {
                match h.join() {
                    Ok((engine, err)) => {
                        if let Some(e) = err {
                            first_error.get_or_insert(e);
                        }
                        engines.push(engine);
                    }
                    Err(_) => {
                        first_error.get_or_insert(NetError::NodePanicked);
                    }
                }
            }
            if let Some(stream) = &self.trace {
                if let Ok(mut stream) = stream.lock() {
                    stream.flush();
                }
            }
            (engines, first_error)
        };

        // Fire all starts "at the same time" (the paper starts all joins at
        // t = 0).
        for (id, gateway) in joiners {
            flight.in_flight.fetch_add(1, Ordering::SeqCst);
            if senders[id]
                .send(Envelope::Start { gateway: *gateway })
                .is_err()
            {
                let (_, err) = shutdown_all(handles);
                return Err(err.unwrap_or(NetError::NodePanicked));
            }
        }

        // Wait for quiescence: no in-flight messages and no joining nodes.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let in_flight = flight.in_flight.load(Ordering::SeqCst);
            let joining = flight.joining.load(Ordering::SeqCst);
            if in_flight == 0 && joining == 0 {
                break;
            }
            if Instant::now() >= deadline {
                let (_, err) = shutdown_all(handles);
                return Err(err.unwrap_or(NetError::QuiesceTimeout { in_flight, joining }));
            }
            thread::sleep(Duration::from_micros(200));
        }

        // Crash phase: kill the victims (their threads exit immediately,
        // dropping their receive channels, so traffic addressed to them
        // simply dies) and give the survivors a wall-clock grace period to
        // detect, evict, and repair. The in-flight counter is no longer
        // exact once channels die mid-message, so this phase is bounded by
        // time rather than by quiescence.
        if !kills.is_empty() {
            for id in kills {
                let _ = senders[id].send(Envelope::Kill);
            }
            thread::sleep(grace);
        }

        let (engines, err) = shutdown_all(handles);
        if let Some(e) = err {
            return Err(e);
        }
        Ok(engines)
    }
}

/// Feeds one input through the node's shared driver, with the wall clock
/// sampled immediately before dispatch.
#[allow(clippy::too_many_arguments)]
fn drive_node(
    node: &mut EngineDriver,
    input: NodeInput,
    epoch: Instant,
    senders: &HashMap<NodeId, Sender<Envelope>>,
    flight: &Flight,
    wheel: &mut TimerWheel<TimerId>,
    error: &mut Option<NetError>,
    trace: &Option<Arc<Mutex<TraceStream>>>,
) -> hyperring_core::StepReport {
    let mut handler = ThreadHandler {
        me: node.engine().id(),
        now_us: epoch.elapsed().as_micros() as u64,
        senders,
        flight,
        wheel,
        error,
    };
    match trace.as_ref().map(|t| t.lock()) {
        Some(Ok(mut stream)) => node.drive(input, &mut handler, Some(&mut stream)),
        // A poisoned trace lock loses trace records, never protocol
        // traffic.
        _ => node.drive(input, &mut handler, None),
    }
}

fn spawn_node(
    engine: JoinEngine,
    rx: Receiver<Envelope>,
    senders: Arc<HashMap<NodeId, Sender<Envelope>>>,
    flight: Arc<Flight>,
    trace: Option<Arc<Mutex<TraceStream>>>,
    epoch: Instant,
) -> thread::JoinHandle<(JoinEngine, Option<NetError>)> {
    thread::spawn(move || {
        let mut node = EngineDriver::new(engine);
        let mut wheel: TimerWheel<TimerId> =
            TimerWheel::new(TICK_US, epoch.elapsed().as_micros() as u64);
        let mut error: Option<NetError> = None;
        // Initial members never pass through the joiner's S-node switch,
        // so arm their failure detector here (a no-op unless configured);
        // the probe timer must be in the wheel before the first blocking
        // receive, or the thread would sleep through its own ticks.
        drive_node(
            &mut node,
            NodeInput::StartFailureDetector,
            epoch,
            &senders,
            &flight,
            &mut wheel,
            &mut error,
            &trace,
        );
        loop {
            // Block for the next envelope, but only until the nearest
            // (possibly conservative) timer deadline.
            let wake = match wheel.next_deadline_us() {
                Some(at_us) => {
                    let deadline = epoch + Duration::from_micros(at_us);
                    match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                        Ok(env) => Some(env),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match rx.recv() {
                    Ok(env) => Some(env),
                    Err(_) => break,
                },
            };
            let (input, counted) = match wake {
                Some(Envelope::Shutdown) => break,
                Some(Envelope::Kill) => {
                    // Crash failure: no goodbye, no flush — the thread
                    // just stops. Dropping `rx` kills queued traffic.
                    node.crash();
                    break;
                }
                Some(Envelope::Start { gateway }) => (Some(NodeInput::StartJoin { gateway }), true),
                Some(Envelope::Proto { from, msg }) => {
                    (Some(NodeInput::Deliver { from, msg }), true)
                }
                None => (None, false),
            };
            let mut entered = false;
            match input {
                Some(input) => {
                    entered = drive_node(
                        &mut node, input, epoch, &senders, &flight, &mut wheel, &mut error, &trace,
                    )
                    .entered_system;
                }
                None => {
                    for id in wheel.advance(epoch.elapsed().as_micros() as u64) {
                        entered |= drive_node(
                            &mut node,
                            NodeInput::TimerFired(id),
                            epoch,
                            &senders,
                            &flight,
                            &mut wheel,
                            &mut error,
                            &trace,
                        )
                        .entered_system;
                    }
                }
            }
            if entered {
                flight.joining.fetch_sub(1, Ordering::SeqCst);
            }
            if counted {
                // Decrement only now: new sends were counted before our own
                // decrement, so in_flight == 0 really means quiescent.
                flight.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        (node.into_engine(), error)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::{
        build_consistent_tables, check_consistency, RetryPolicy, RingTrace, SharedSink,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn distinct_ids(space: IdSpace, n: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(space.random_id(&mut rng));
        }
        let mut v: Vec<NodeId> = set.into_iter().collect();
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn threaded_concurrent_joins_are_consistent() {
        let space = IdSpace::new(4, 5).unwrap();
        let ids = distinct_ids(space, 30, 11);
        let members = build_consistent_tables(space, &ids[..20]);
        let gateway = ids[0];
        let joiners: Vec<(NodeId, NodeId)> = ids[20..].iter().map(|&id| (id, gateway)).collect();
        let tables = ThreadedNetwork::new(space, ProtocolOptions::new(), members)
            .run_joins(&joiners)
            .expect("run quiesces");
        assert_eq!(tables.len(), 30);
        let report = check_consistency(space, &tables);
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    fn threaded_repeated_runs_always_consistent() {
        // Real thread scheduling differs run to run; Theorem 1 must hold
        // every time.
        let space = IdSpace::new(8, 4).unwrap();
        for round in 0..5 {
            let ids = distinct_ids(space, 24, 100 + round);
            let members = build_consistent_tables(space, &ids[..16]);
            let joiners: Vec<(NodeId, NodeId)> = ids[16..]
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, ids[i % 16]))
                .collect();
            let tables = ThreadedNetwork::new(space, ProtocolOptions::new(), members)
                .run_joins(&joiners)
                .expect("run quiesces");
            let report = check_consistency(space, &tables);
            assert!(report.is_consistent(), "round {round}: {report}");
        }
    }

    #[test]
    fn no_joiners_is_a_noop() {
        let space = IdSpace::new(4, 3).unwrap();
        let ids = distinct_ids(space, 5, 7);
        let members = build_consistent_tables(space, &ids);
        let tables = ThreadedNetwork::new(space, ProtocolOptions::new(), members.clone())
            .run_joins(&[])
            .expect("empty run quiesces");
        assert_eq!(tables.len(), members.len());
        assert!(check_consistency(space, &tables).is_consistent());
    }

    #[test]
    fn unknown_gateway_is_an_error() {
        let space = IdSpace::new(4, 3).unwrap();
        let ids = distinct_ids(space, 4, 9);
        let members = build_consistent_tables(space, &ids[..3]);
        // Find an identifier that is neither a member nor the joiner.
        let ghost = (0..space.capacity().unwrap())
            .map(|v| space.id_from_value(v).unwrap())
            .find(|id| !ids.contains(id))
            .expect("space has spare ids");
        let err = ThreadedNetwork::new(space, ProtocolOptions::new(), members)
            .run_joins(&[(ids[3], ghost)])
            .unwrap_err();
        assert_eq!(err, NetError::UnknownGateway(ghost));
        assert!(err.to_string().contains("unknown gateway"));
    }

    #[test]
    fn duplicate_joiner_is_an_error() {
        let space = IdSpace::new(4, 3).unwrap();
        let ids = distinct_ids(space, 4, 13);
        let members = build_consistent_tables(space, &ids[..3]);
        let err = ThreadedNetwork::new(space, ProtocolOptions::new(), members)
            .run_joins(&[(ids[0], ids[1])])
            .unwrap_err();
        assert_eq!(err, NetError::DuplicateNode(ids[0]));
    }

    #[test]
    fn killed_threads_are_detected_and_survivor_tables_repaired() {
        use hyperring_core::FailureDetector;

        let space = IdSpace::new(4, 4).unwrap();
        let ids = distinct_ids(space, 14, 31);
        let members = build_consistent_tables(space, &ids[..10]);
        let joiners: Vec<(NodeId, NodeId)> = ids[10..].iter().map(|&id| (id, ids[0])).collect();
        let opts = ProtocolOptions::new().with_failure_detector(FailureDetector {
            probe_interval_us: 20_000,
            suspicion_threshold: 3,
            repair: true,
            ..FailureDetector::default()
        });
        // Kill two members after all joins quiesce; give the survivors
        // plenty of detection cycles (wall-clock timing is best-effort,
        // so the grace period is generous relative to the probe interval).
        let kills = [ids[1], ids[2]];
        let tables = ThreadedNetwork::new(space, opts, members)
            .run_crash_scenario(&joiners, &kills, Duration::from_millis(2_000))
            .expect("crash scenario quiesces");
        assert_eq!(tables.len(), 12, "both victims excluded from the result");
        for t in &tables {
            for dead in &kills {
                assert!(
                    !t.iter().any(|(_, _, e)| e.node == *dead),
                    "{} still stores killed {dead}",
                    t.owner()
                );
            }
        }
        let report = check_consistency(space, &tables);
        assert!(report.is_consistent(), "{report}");
    }

    #[test]
    fn unknown_kill_target_is_an_error() {
        let space = IdSpace::new(4, 3).unwrap();
        let ids = distinct_ids(space, 4, 17);
        let members = build_consistent_tables(space, &ids[..3]);
        let ghost = (0..space.capacity().unwrap())
            .map(|v| space.id_from_value(v).unwrap())
            .find(|id| !ids.contains(id))
            .expect("space has spare ids");
        let err = ThreadedNetwork::new(space, ProtocolOptions::new(), members)
            .run_crash_scenario(&[], &[ghost], Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, NetError::UnknownDestination(ghost));
    }

    #[test]
    fn retry_policy_and_trace_run_on_real_threads() {
        // An aggressive timeout forces real retransmissions (the channels
        // are reliable, so every retry produces a duplicate); the engine's
        // duplicate-reply guards must keep the result consistent, and the
        // shared trace stream must observe every joiner reach in_system.
        let space = IdSpace::new(4, 4).unwrap();
        let ids = distinct_ids(space, 16, 21);
        let members = build_consistent_tables(space, &ids[..10]);
        let joiners: Vec<(NodeId, NodeId)> = ids[10..].iter().map(|&id| (id, ids[0])).collect();
        let opts = ProtocolOptions::new().with_retry(RetryPolicy {
            timeout_us: 200,
            max_retries: 8,
            noti_repeats: 2,
            ..RetryPolicy::default()
        });
        let sink = SharedSink::new(RingTrace::new(1 << 16));
        let tables = ThreadedNetwork::new(space, opts, members)
            .with_trace(Box::new(sink.clone()))
            .run_joins(&joiners)
            .expect("run quiesces under retransmission");
        assert!(check_consistency(space, &tables).is_consistent());
        let ring = sink.lock();
        let in_system = ring
            .records()
            .filter(|r| r.to_jsonl().contains("\"to\":\"in_system\""))
            .count();
        assert_eq!(in_system, joiners.len(), "every joiner traced in_system");
    }
}
