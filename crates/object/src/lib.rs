//! Object location over hypercube routing — the application layer the
//! paper's introduction motivates (PRR's "accessing nearby copies of
//! replicated objects", Napster/Gnutella-style file sharing).
//!
//! The paper itself builds only the routing substrate and notes that the
//! schemes it generalizes (PRR, Tapestry, Pastry) differ in "the technique
//! each uses to resolve the final routing hop". This crate implements the
//! standard resolution: **surrogate routing**. An object's identifier is
//! hashed into the node ID space; the query walks the suffix levels and,
//! where the desired digit's entry is empty, deterministically falls over
//! to the next cyclically-populated digit. With *consistent* tables
//! (Definition 3.8), entry occupancy at a given level/digit is a global
//! property of the network — false-positive and false-negative freedom —
//! so every source resolves the **same root node** for an object; that
//! uniqueness is exactly why the paper's consistency guarantee matters to
//! applications, and the property tests here verify it on live tables
//! produced by join-protocol runs.
//!
//! The store *borrows* its tables ([`ObjectStore::over`]): routing a
//! lookup clones nothing, so a storm of millions of lookups allocates
//! only when a directory row is touched. After membership changes,
//! [`ObjectStore::retarget`] (or the [`unbind`](ObjectStore::unbind) /
//! [`bind`](UnboundStore::bind) pair, when the new tables are built while
//! the store is set aside) rebinds the directory state to fresh tables
//! and republishes every object to its new root.
//!
//! # Examples
//!
//! ```
//! use hyperring_object::ObjectStore;
//! use hyperring_core::build_consistent_tables;
//! use hyperring_id::IdSpace;
//! use rand::SeedableRng;
//!
//! let space = IdSpace::new(16, 8)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let mut ids = std::collections::BTreeSet::new();
//! while ids.len() < 24 { ids.insert(space.random_id(&mut rng)); }
//! let ids: Vec<_> = ids.into_iter().collect();
//!
//! let tables = build_consistent_tables(space, &ids);
//! let mut store = ObjectStore::over(space, &tables);
//! let receipt = store.publish(ids[0], "skylark.mp3");
//! let hit = store.lookup(ids[5], "skylark.mp3").expect("object published");
//! assert_eq!(hit.root, receipt.root);
//! assert_eq!(hit.homes, vec![ids[0]]);
//! assert!(store.lookup(ids[5], "missing.mp3").is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hyperring_core::NeighborTable;
use hyperring_id::{IdSpace, NodeId};

/// One overlay hop taken by surrogate routing: `from`'s `(level, digit)`
/// entry advanced the query to `to`.
///
/// The digit is the entry actually used — after cyclic fallover — not
/// necessarily the object's own digit at that level. Self-hops (the entry
/// resolving back to `from`) are not reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The forwarding node.
    pub from: NodeId,
    /// The table level whose entry was used.
    pub level: usize,
    /// The digit of the entry used (post-fallover).
    pub digit: u8,
    /// The next node on the path.
    pub to: NodeId,
}

/// Resolves the surrogate root of `object_id` from `start`, reporting
/// every overlay hop to `on_hop` — the allocation-free routing core.
///
/// Walks levels `0..d`; at each level the desired digit is the object's,
/// falling over cyclically (`j, j+1, …, mod b`) to the first populated
/// entry. Given consistent tables every start resolves the same node.
///
/// Returns the root and the number of overlay hops (self-hops excluded).
///
/// # Panics
///
/// Panics if `lookup` cannot resolve a visited node's table, or if a level
/// has no populated entry at all (impossible: self entries are always
/// present).
pub fn surrogate_root_with<'a, F, V>(
    space: IdSpace,
    start: NodeId,
    object_id: &NodeId,
    mut lookup: F,
    mut on_hop: V,
) -> (NodeId, usize)
where
    F: FnMut(&NodeId) -> Option<&'a NeighborTable>,
    V: FnMut(Hop),
{
    let b = space.base() as u8;
    let mut at = start;
    let mut hops = 0;
    for level in 0..space.digit_count() {
        let table = lookup(&at).unwrap_or_else(|| panic!("no table for {at}"));
        let want = object_id.digit(level);
        let (digit, next) = (0..b)
            .map(|delta| (want + delta) % b)
            .find_map(|j| table.get(level, j).map(|e| (j, e.node)))
            .unwrap_or_else(|| panic!("level {level} of {at} has no populated entry"));
        if next != at {
            on_hop(Hop {
                from: at,
                level,
                digit,
                to: next,
            });
            at = next;
            hops += 1;
        }
    }
    (at, hops)
}

/// Resolves the surrogate root of `object_id` from `start` without
/// materializing the path. See [`surrogate_root_with`].
pub fn surrogate_root<'a, F>(
    space: IdSpace,
    start: NodeId,
    object_id: &NodeId,
    lookup: F,
) -> (NodeId, usize)
where
    F: FnMut(&NodeId) -> Option<&'a NeighborTable>,
{
    surrogate_root_with(space, start, object_id, lookup, |_| {})
}

/// Resolves the surrogate root of `object_id` from `start` and returns the
/// overlay path taken (deduplicated self-hops, `start` included). Allocates
/// the path vector; the storm-grade variants are [`surrogate_root`] and
/// [`surrogate_root_with`].
///
/// # Panics
///
/// As [`surrogate_root_with`].
pub fn surrogate_route<'a, F>(
    space: IdSpace,
    start: NodeId,
    object_id: &NodeId,
    lookup: F,
) -> (NodeId, Vec<NodeId>)
where
    F: FnMut(&NodeId) -> Option<&'a NeighborTable>,
{
    let mut path = vec![start];
    let (root, _) = surrogate_root_with(space, start, object_id, lookup, |h| path.push(h.to));
    (root, path)
}

/// Proof of publication: where an object landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The object's hashed identifier.
    pub object_id: NodeId,
    /// The root (directory) node for the object.
    pub root: NodeId,
    /// Overlay hops taken from the publishing home to the root.
    pub hops: usize,
}

/// A successful lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupHit {
    /// The object's hashed identifier.
    pub object_id: NodeId,
    /// The root node that answered.
    pub root: NodeId,
    /// Nodes holding a copy of the object, in publication order.
    pub homes: Vec<NodeId>,
    /// Overlay hops taken from the querier to the root.
    pub hops: usize,
}

/// The store's view of the network: borrowed per-node table references
/// (the normal, zero-clone case) or owned tables (the deprecated shims).
#[derive(Debug)]
enum Tables<'a> {
    Borrowed(HashMap<NodeId, &'a NeighborTable>),
    Owned(HashMap<NodeId, NeighborTable>),
}

impl Tables<'_> {
    fn get(&self, id: &NodeId) -> Option<&NeighborTable> {
        match self {
            Tables::Borrowed(m) => m.get(id).copied(),
            Tables::Owned(m) => m.get(id),
        }
    }

    fn contains(&self, id: &NodeId) -> bool {
        match self {
            Tables::Borrowed(m) => m.contains_key(id),
            Tables::Owned(m) => m.contains_key(id),
        }
    }

    fn len(&self) -> usize {
        match self {
            Tables::Borrowed(m) => m.len(),
            Tables::Owned(m) => m.len(),
        }
    }

    fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        match self {
            Tables::Borrowed(m) => Keys::Borrowed(m.keys()),
            Tables::Owned(m) => Keys::Owned(m.keys()),
        }
    }
}

/// Either-map key iterator backing [`Tables::keys`].
enum Keys<'s, 'a> {
    Borrowed(std::collections::hash_map::Keys<'s, NodeId, &'a NeighborTable>),
    Owned(std::collections::hash_map::Keys<'s, NodeId, NeighborTable>),
}

impl Iterator for Keys<'_, '_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        match self {
            Keys::Borrowed(it) => it.next().copied(),
            Keys::Owned(it) => it.next().copied(),
        }
    }
}

/// A directory service over a set of (consistent) neighbor tables:
/// per-root object directories plus publish/lookup via surrogate routing.
///
/// Construct with [`ObjectStore::over`], borrowing the network's tables
/// directly (e.g. `ObjectStore::over(net.space(), net.tables_iter())`
/// over a `SimNetwork`) — no table is cloned, and routing allocates
/// nothing per lookup. After membership changes, rebind with
/// [`retarget`](Self::retarget) (or [`unbind`](Self::unbind) +
/// [`bind`](UnboundStore::bind) when the store must be set aside while
/// the network mutates) and republished objects move to their new roots
/// (PRR's dynamic root-maintenance machinery is out of the paper's — and
/// this crate's — scope).
#[derive(Debug)]
pub struct ObjectStore<'a> {
    space: IdSpace,
    tables: Tables<'a>,
    /// Directory rows: root -> object id -> homes.
    directories: HashMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>>,
}

impl<'a> ObjectStore<'a> {
    /// Creates a store borrowing the given tables — the primary
    /// constructor; nothing is cloned.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty.
    pub fn over(space: IdSpace, tables: impl IntoIterator<Item = &'a NeighborTable>) -> Self {
        let map: HashMap<NodeId, &'a NeighborTable> =
            tables.into_iter().map(|t| (t.owner(), t)).collect();
        assert!(!map.is_empty(), "store needs at least one node");
        ObjectStore {
            space,
            tables: Tables::Borrowed(map),
            directories: HashMap::new(),
        }
    }

    /// Creates a store owning a snapshot of the given tables.
    #[deprecated(note = "use `ObjectStore::over` with borrowed tables — it clones nothing")]
    pub fn new(space: IdSpace, tables: Vec<NeighborTable>) -> ObjectStore<'static> {
        assert!(!tables.is_empty(), "store needs at least one node");
        ObjectStore {
            space,
            tables: Tables::Owned(tables.into_iter().map(|t| (t.owner(), t)).collect()),
            directories: HashMap::new(),
        }
    }

    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tables.keys()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the store has no nodes (never true: construction requires
    /// at least one).
    pub fn is_empty(&self) -> bool {
        self.tables.len() == 0
    }

    /// Hashes an object name into the node ID space (SHA-1, as the paper
    /// suggests for IDs).
    pub fn object_id(&self, name: &str) -> NodeId {
        self.space.id_from_hash(name.as_bytes())
    }

    /// The surrogate root for an object id, resolved from `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a live node.
    pub fn root_from(&self, start: NodeId, object_id: &NodeId) -> (NodeId, usize) {
        self.root_from_with(start, object_id, |_| {})
    }

    /// As [`root_from`](Self::root_from), reporting every overlay hop to
    /// `on_hop` — the storm workload's per-hop load/demand accounting
    /// hook.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a live node.
    pub fn root_from_with(
        &self,
        start: NodeId,
        object_id: &NodeId,
        on_hop: impl FnMut(Hop),
    ) -> (NodeId, usize) {
        assert!(self.tables.contains(&start), "unknown start {start}");
        surrogate_root_with(
            self.space,
            start,
            object_id,
            |id| self.tables.get(id),
            on_hop,
        )
    }

    /// Publishes `name` from `home`: the object pointer is stored in the
    /// root's directory (the object's bytes stay at `home`, as in PRR).
    ///
    /// # Panics
    ///
    /// Panics if `home` is not a live node.
    pub fn publish(&mut self, home: NodeId, name: &str) -> PublishReceipt {
        let object_id = self.object_id(name);
        let (root, hops) = self.root_from(home, &object_id);
        let homes = self
            .directories
            .entry(root)
            .or_default()
            .entry(object_id)
            .or_default();
        if !homes.contains(&home) {
            homes.push(home);
        }
        PublishReceipt {
            object_id,
            root,
            hops,
        }
    }

    /// Looks `name` up from `from`; `None` if nobody published it.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a live node.
    pub fn lookup(&self, from: NodeId, name: &str) -> Option<LookupHit> {
        let object_id = self.object_id(name);
        let (root, hops) = self.root_from(from, &object_id);
        let homes = self.directories.get(&root)?.get(&object_id)?;
        Some(LookupHit {
            object_id,
            root,
            homes: homes.clone(),
            hops,
        })
    }

    /// Releases the borrowed tables, keeping only the directory state —
    /// use when the network must be mutated while the store survives,
    /// then [`bind`](UnboundStore::bind) to the fresh tables.
    pub fn unbind(self) -> UnboundStore {
        UnboundStore {
            space: self.space,
            directories: self.directories,
        }
    }

    /// Rebinds the store to fresh tables in one step (after
    /// joins/leaves), republishing every directory row from its homes so
    /// objects move to their new roots. Returns the rebound store and the
    /// number of objects whose root changed.
    pub fn retarget<'b>(
        self,
        tables: impl IntoIterator<Item = &'b NeighborTable>,
    ) -> (ObjectStore<'b>, usize) {
        self.unbind().bind(tables)
    }

    /// Replaces the tables with an owned snapshot and republishes every
    /// directory row. Returns the number of objects whose root changed.
    #[deprecated(note = "use `ObjectStore::retarget` (or `unbind` + `bind`) with borrowed tables")]
    pub fn update_tables(&mut self, tables: Vec<NeighborTable>) -> usize {
        self.tables = Tables::Owned(tables.into_iter().map(|t| (t.owner(), t)).collect());
        let old = std::mem::take(&mut self.directories);
        republish(self, old)
    }

    /// Total directory rows currently stored, per node — the paper's P3
    /// (load balance) measured directly.
    pub fn directory_load(&self) -> BTreeMap<NodeId, usize> {
        self.directories
            .iter()
            .map(|(root, dir)| (*root, dir.len()))
            .collect()
    }
}

/// An [`ObjectStore`] with its table borrow released: directory state
/// only, waiting to be [`bind`](Self::bind)ed to fresh tables.
#[derive(Debug)]
pub struct UnboundStore {
    space: IdSpace,
    directories: HashMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>>,
}

impl UnboundStore {
    /// Binds the directory state to fresh tables, republishing every row
    /// from its surviving homes (homes that left the network drop their
    /// copies). Returns the bound store and the number of objects whose
    /// root changed.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty.
    pub fn bind<'b>(
        self,
        tables: impl IntoIterator<Item = &'b NeighborTable>,
    ) -> (ObjectStore<'b>, usize) {
        let mut store = ObjectStore::over(self.space, tables);
        let moved = republish(&mut store, self.directories);
        (store, moved)
    }
}

/// Re-homes every directory row of `old` onto `store`'s current tables.
fn republish(
    store: &mut ObjectStore<'_>,
    old: HashMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>>,
) -> usize {
    let mut moved = 0;
    for (old_root, dir) in old {
        for (oid, homes) in dir {
            // Homes that left the network drop their copies.
            let live_homes: Vec<NodeId> = homes
                .into_iter()
                .filter(|h| store.tables.contains(h))
                .collect();
            if live_homes.is_empty() {
                continue;
            }
            let (root, _) = store.root_from(live_homes[0], &oid);
            if root != old_root {
                moved += 1;
            }
            store
                .directories
                .entry(root)
                .or_default()
                .insert(oid, live_homes);
        }
    }
    moved
}

/// Returns the set of distinct roots observed when resolving `object_id`
/// from every node — a diagnostic for the uniqueness property (singleton
/// iff resolution is consistent).
pub fn roots_from_everywhere(store: &ObjectStore<'_>, object_id: &NodeId) -> BTreeSet<NodeId> {
    store
        .nodes()
        .map(|n| store.root_from(n, object_id).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::build_consistent_tables;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_network(
        b: u16,
        d: usize,
        n: usize,
        seed: u64,
    ) -> (IdSpace, Vec<NodeId>, Vec<NeighborTable>) {
        let space = IdSpace::new(b, d).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < n {
            ids.insert(space.random_id(&mut rng));
        }
        let ids: Vec<NodeId> = ids.into_iter().collect();
        let tables = build_consistent_tables(space, &ids);
        (space, ids, tables)
    }

    #[test]
    fn every_source_resolves_the_same_root() {
        let (space, _ids, tables) = make_network(8, 5, 40, 3);
        let store = ObjectStore::over(space, &tables);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let oid = space.random_id(&mut rng);
            let roots = roots_from_everywhere(&store, &oid);
            assert_eq!(roots.len(), 1, "object {oid} resolved {roots:?}");
        }
    }

    #[test]
    fn exact_owner_is_its_own_root() {
        // An object id equal to a node id must resolve to that node.
        let (space, ids, tables) = make_network(4, 4, 30, 5);
        let store = ObjectStore::over(space, &tables);
        for id in &ids {
            let (root, hops) = store.root_from(ids[0], id);
            assert_eq!(root, *id);
            assert!(hops <= 4);
        }
    }

    #[test]
    fn publish_then_lookup_roundtrip_from_everywhere() {
        let (space, ids, tables) = make_network(16, 6, 32, 7);
        let mut store = ObjectStore::over(space, &tables);
        let names = ["alpha.txt", "beta.bin", "gamma.iso", "delta.tar"];
        for (i, name) in names.iter().enumerate() {
            store.publish(ids[i], name);
        }
        for name in names {
            for from in &ids {
                let hit = store.lookup(*from, name).expect("published object found");
                assert_eq!(hit.homes.len(), 1);
            }
        }
        assert!(store.lookup(ids[0], "nope").is_none());
    }

    #[test]
    fn replicas_accumulate_homes() {
        let (space, ids, tables) = make_network(16, 6, 32, 8);
        let mut store = ObjectStore::over(space, &tables);
        store.publish(ids[1], "popular.mp3");
        store.publish(ids[2], "popular.mp3");
        store.publish(ids[1], "popular.mp3"); // duplicate publish is idempotent
        let hit = store.lookup(ids[3], "popular.mp3").unwrap();
        assert_eq!(hit.homes, vec![ids[1], ids[2]]);
    }

    #[test]
    fn retarget_moves_roots_and_preserves_lookups() {
        let (space, ids, tables) = make_network(16, 6, 24, 11);
        let mut store = ObjectStore::over(space, &tables);
        for (i, name) in ["a", "b", "c", "d", "e", "f", "g", "h"].iter().enumerate() {
            store.publish(ids[i % ids.len()], name);
        }
        // Grow the network: fresh oracle tables over a superset.
        let mut rng = StdRng::seed_from_u64(77);
        let mut all: std::collections::BTreeSet<NodeId> = ids.iter().copied().collect();
        while all.len() < 48 {
            all.insert(space.random_id(&mut rng));
        }
        let all: Vec<NodeId> = all.into_iter().collect();
        let grown = build_consistent_tables(space, &all);
        let (store, _moved) = store.retarget(&grown);
        for name in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            let hit = store
                .lookup(all[0], name)
                .expect("survives membership change");
            assert!(!hit.homes.is_empty());
        }
    }

    #[test]
    fn unbind_bind_drops_departed_homes() {
        let (space, ids, tables) = make_network(16, 5, 20, 21);
        let mut store = ObjectStore::over(space, &tables);
        store.publish(ids[0], "lonely");
        store.publish(ids[1], "shared");
        store.publish(ids[2], "shared");
        let unbound = store.unbind();
        // Shrink the network: ids[0] departs.
        let survivors: Vec<NodeId> = ids[1..].to_vec();
        let shrunk = build_consistent_tables(space, &survivors);
        let (store, _moved) = unbound.bind(&shrunk);
        assert!(store.lookup(ids[1], "lonely").is_none(), "home departed");
        let hit = store.lookup(ids[1], "shared").unwrap();
        assert_eq!(hit.homes, vec![ids[1], ids[2]]);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let (space, ids, tables) = make_network(16, 6, 24, 11);
        let mut store = ObjectStore::new(space, tables);
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            store.publish(ids[i], name);
        }
        let mut rng = StdRng::seed_from_u64(77);
        let mut all: std::collections::BTreeSet<NodeId> = ids.iter().copied().collect();
        while all.len() < 48 {
            all.insert(space.random_id(&mut rng));
        }
        let all: Vec<NodeId> = all.into_iter().collect();
        store.update_tables(build_consistent_tables(space, &all));
        for name in ["a", "b", "c", "d"] {
            assert!(store.lookup(all[0], name).is_some());
        }
    }

    #[test]
    fn route_and_root_agree() {
        let (space, ids, tables) = make_network(8, 5, 40, 19);
        let store = ObjectStore::over(space, &tables);
        let mut rng = StdRng::seed_from_u64(23);
        let by_owner: HashMap<NodeId, &NeighborTable> =
            tables.iter().map(|t| (t.owner(), t)).collect();
        for _ in 0..50 {
            let oid = space.random_id(&mut rng);
            let start = ids[0];
            let (root_a, path) =
                surrogate_route(space, start, &oid, |id| by_owner.get(id).copied());
            let (root_b, hops) = store.root_from(start, &oid);
            assert_eq!(root_a, root_b);
            assert_eq!(path.len() - 1, hops);
            // The hop stream reconstructs the path exactly.
            let mut replayed = vec![start];
            store.root_from_with(start, &oid, |h| {
                assert_eq!(h.from, *replayed.last().unwrap());
                assert!(h.level < space.digit_count());
                replayed.push(h.to);
            });
            assert_eq!(replayed, path);
        }
    }

    #[test]
    fn directory_load_is_spread() {
        // P3 sanity: with many objects, no single node hoards the
        // directory (load is hash-spread).
        let (space, ids, tables) = make_network(16, 6, 64, 13);
        let mut store = ObjectStore::over(space, &tables);
        for i in 0..256 {
            store.publish(ids[i % ids.len()], &format!("file-{i}"));
        }
        let load = store.directory_load();
        let max = load.values().max().copied().unwrap_or(0);
        let total: usize = load.values().sum();
        assert_eq!(total, 256);
        assert!(
            max <= 32,
            "one node holds {max} of 256 directory rows — not balanced"
        );
    }

    #[test]
    #[should_panic(expected = "unknown start")]
    fn lookup_from_stranger_panics() {
        let (space, ids, tables) = make_network(4, 4, 10, 2);
        let store = ObjectStore::over(space, &tables);
        let stranger = (0..space.capacity().unwrap())
            .map(|v| space.id_from_value(v).unwrap())
            .find(|x| !ids.contains(x))
            .unwrap();
        let _ = store.root_from(stranger, &ids[0]);
    }
}
