//! Object location over hypercube routing — the application layer the
//! paper's introduction motivates (PRR's "accessing nearby copies of
//! replicated objects", Napster/Gnutella-style file sharing).
//!
//! The paper itself builds only the routing substrate and notes that the
//! schemes it generalizes (PRR, Tapestry, Pastry) differ in "the technique
//! each uses to resolve the final routing hop". This crate implements the
//! standard resolution: **surrogate routing**. An object's identifier is
//! hashed into the node ID space; the query walks the suffix levels and,
//! where the desired digit's entry is empty, deterministically falls over
//! to the next cyclically-populated digit. With *consistent* tables
//! (Definition 3.8), entry occupancy at a given level/digit is a global
//! property of the network — false-positive and false-negative freedom —
//! so every source resolves the **same root node** for an object; that
//! uniqueness is exactly why the paper's consistency guarantee matters to
//! applications, and the property tests here verify it on live tables
//! produced by join-protocol runs.
//!
//! # Examples
//!
//! ```
//! use hyperring_object::ObjectStore;
//! use hyperring_core::build_consistent_tables;
//! use hyperring_id::IdSpace;
//! use rand::SeedableRng;
//!
//! let space = IdSpace::new(16, 8)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let mut ids = std::collections::BTreeSet::new();
//! while ids.len() < 24 { ids.insert(space.random_id(&mut rng)); }
//! let ids: Vec<_> = ids.into_iter().collect();
//!
//! let mut store = ObjectStore::new(space, build_consistent_tables(space, &ids));
//! let receipt = store.publish(ids[0], "skylark.mp3");
//! let hit = store.lookup(ids[5], "skylark.mp3").expect("object published");
//! assert_eq!(hit.root, receipt.root);
//! assert_eq!(hit.homes, vec![ids[0]]);
//! assert!(store.lookup(ids[5], "missing.mp3").is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hyperring_core::NeighborTable;
use hyperring_id::{IdSpace, NodeId};

/// Resolves the surrogate root of `object_id` starting from `start`.
///
/// Walks levels `0..d`; at each level the desired digit is the object's,
/// falling over cyclically (`j, j+1, …, mod b`) to the first populated
/// entry. Given consistent tables every start resolves the same node.
///
/// Returns the root and the overlay path taken (deduplicated self-hops).
///
/// # Panics
///
/// Panics if `lookup` cannot resolve a visited node's table, or if a level
/// has no populated entry at all (impossible: self entries are always
/// present).
pub fn surrogate_route<'a, F>(
    space: IdSpace,
    start: NodeId,
    object_id: &NodeId,
    mut lookup: F,
) -> (NodeId, Vec<NodeId>)
where
    F: FnMut(&NodeId) -> Option<&'a NeighborTable>,
{
    let b = space.base() as u8;
    let mut at = start;
    let mut path = vec![start];
    for level in 0..space.digit_count() {
        let table = lookup(&at).unwrap_or_else(|| panic!("no table for {at}"));
        let want = object_id.digit(level);
        let next = (0..b)
            .map(|delta| (want + delta) % b)
            .find_map(|j| table.get(level, j))
            .unwrap_or_else(|| panic!("level {level} of {at} has no populated entry"))
            .node;
        if next != at {
            path.push(next);
            at = next;
        }
    }
    (at, path)
}

/// Proof of publication: where an object landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishReceipt {
    /// The object's hashed identifier.
    pub object_id: NodeId,
    /// The root (directory) node for the object.
    pub root: NodeId,
    /// Overlay hops taken from the publishing home to the root.
    pub hops: usize,
}

/// A successful lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupHit {
    /// The object's hashed identifier.
    pub object_id: NodeId,
    /// The root node that answered.
    pub root: NodeId,
    /// Nodes holding a copy of the object, in publication order.
    pub homes: Vec<NodeId>,
    /// Overlay hops taken from the querier to the root.
    pub hops: usize,
}

/// A directory service over a set of (consistent) neighbor tables:
/// per-root object directories plus publish/lookup via surrogate routing.
///
/// The store holds tables by value; refresh them with
/// [`ObjectStore::update_tables`] after membership changes and republished
/// objects move to their new roots (PRR's dynamic root-maintenance
/// machinery is out of the paper's — and this crate's — scope).
#[derive(Debug)]
pub struct ObjectStore {
    space: IdSpace,
    tables: HashMap<NodeId, NeighborTable>,
    /// Directory rows: root -> object id -> homes.
    directories: HashMap<NodeId, BTreeMap<NodeId, Vec<NodeId>>>,
}

impl ObjectStore {
    /// Creates a store over the given tables.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty.
    pub fn new(space: IdSpace, tables: Vec<NeighborTable>) -> Self {
        assert!(!tables.is_empty(), "store needs at least one node");
        ObjectStore {
            space,
            tables: tables.into_iter().map(|t| (t.owner(), t)).collect(),
            directories: HashMap::new(),
        }
    }

    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeId> {
        self.tables.keys()
    }

    /// Hashes an object name into the node ID space (SHA-1, as the paper
    /// suggests for IDs).
    pub fn object_id(&self, name: &str) -> NodeId {
        self.space.id_from_hash(name.as_bytes())
    }

    /// The surrogate root for an object id, resolved from `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a live node.
    pub fn root_from(&self, start: NodeId, object_id: &NodeId) -> (NodeId, usize) {
        assert!(self.tables.contains_key(&start), "unknown start {start}");
        let (root, path) = surrogate_route(self.space, start, object_id, |id| self.tables.get(id));
        (root, path.len() - 1)
    }

    /// Publishes `name` from `home`: the object pointer is stored in the
    /// root's directory (the object's bytes stay at `home`, as in PRR).
    ///
    /// # Panics
    ///
    /// Panics if `home` is not a live node.
    pub fn publish(&mut self, home: NodeId, name: &str) -> PublishReceipt {
        let object_id = self.object_id(name);
        let (root, hops) = self.root_from(home, &object_id);
        let homes = self
            .directories
            .entry(root)
            .or_default()
            .entry(object_id)
            .or_default();
        if !homes.contains(&home) {
            homes.push(home);
        }
        PublishReceipt {
            object_id,
            root,
            hops,
        }
    }

    /// Looks `name` up from `from`; `None` if nobody published it.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a live node.
    pub fn lookup(&self, from: NodeId, name: &str) -> Option<LookupHit> {
        let object_id = self.object_id(name);
        let (root, hops) = self.root_from(from, &object_id);
        let homes = self.directories.get(&root)?.get(&object_id)?;
        Some(LookupHit {
            object_id,
            root,
            homes: homes.clone(),
            hops,
        })
    }

    /// Replaces the tables (after joins/leaves) and republishes every
    /// directory row from its homes, so objects move to their new roots.
    /// Returns the number of objects whose root changed.
    pub fn update_tables(&mut self, tables: Vec<NeighborTable>) -> usize {
        let old: Vec<(NodeId, NodeId, Vec<NodeId>)> = self
            .directories
            .iter()
            .flat_map(|(root, dir)| {
                dir.iter()
                    .map(move |(oid, homes)| (*root, *oid, homes.clone()))
            })
            .collect();
        self.tables = tables.into_iter().map(|t| (t.owner(), t)).collect();
        self.directories.clear();
        let mut moved = 0;
        for (old_root, oid, homes) in old {
            // Homes that left the network drop their copies.
            let live_homes: Vec<NodeId> = homes
                .into_iter()
                .filter(|h| self.tables.contains_key(h))
                .collect();
            if live_homes.is_empty() {
                continue;
            }
            let (root, _) = self.root_from(live_homes[0], &oid);
            if root != old_root {
                moved += 1;
            }
            self.directories
                .entry(root)
                .or_default()
                .insert(oid, live_homes);
        }
        moved
    }

    /// Total directory rows currently stored, per node — the paper's P3
    /// (load balance) measured directly.
    pub fn directory_load(&self) -> BTreeMap<NodeId, usize> {
        self.directories
            .iter()
            .map(|(root, dir)| (*root, dir.len()))
            .collect()
    }
}

/// Returns the set of distinct roots observed when resolving `object_id`
/// from every node — a diagnostic for the uniqueness property (singleton
/// iff resolution is consistent).
pub fn roots_from_everywhere(store: &ObjectStore, object_id: &NodeId) -> BTreeSet<NodeId> {
    store
        .nodes()
        .map(|n| store.root_from(*n, object_id).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperring_core::build_consistent_tables;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_store(b: u16, d: usize, n: usize, seed: u64) -> (IdSpace, Vec<NodeId>, ObjectStore) {
        let space = IdSpace::new(b, d).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < n {
            ids.insert(space.random_id(&mut rng));
        }
        let ids: Vec<NodeId> = ids.into_iter().collect();
        let store = ObjectStore::new(space, build_consistent_tables(space, &ids));
        (space, ids, store)
    }

    #[test]
    fn every_source_resolves_the_same_root() {
        let (space, _ids, store) = make_store(8, 5, 40, 3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let oid = space.random_id(&mut rng);
            let roots = roots_from_everywhere(&store, &oid);
            assert_eq!(roots.len(), 1, "object {oid} resolved {roots:?}");
        }
    }

    #[test]
    fn exact_owner_is_its_own_root() {
        // An object id equal to a node id must resolve to that node.
        let (_space, ids, store) = make_store(4, 4, 30, 5);
        for id in &ids {
            let (root, hops) = store.root_from(ids[0], id);
            assert_eq!(root, *id);
            assert!(hops <= 4);
        }
    }

    #[test]
    fn publish_then_lookup_roundtrip_from_everywhere() {
        let (_space, ids, mut store) = make_store(16, 6, 32, 7);
        let names = ["alpha.txt", "beta.bin", "gamma.iso", "delta.tar"];
        for (i, name) in names.iter().enumerate() {
            store.publish(ids[i], name);
        }
        for name in names {
            for from in &ids {
                let hit = store.lookup(*from, name).expect("published object found");
                assert_eq!(hit.homes.len(), 1);
            }
        }
        assert!(store.lookup(ids[0], "nope").is_none());
    }

    #[test]
    fn replicas_accumulate_homes() {
        let (_space, ids, mut store) = make_store(16, 6, 32, 8);
        store.publish(ids[1], "popular.mp3");
        store.publish(ids[2], "popular.mp3");
        store.publish(ids[1], "popular.mp3"); // duplicate publish is idempotent
        let hit = store.lookup(ids[3], "popular.mp3").unwrap();
        assert_eq!(hit.homes, vec![ids[1], ids[2]]);
    }

    #[test]
    fn update_tables_moves_roots_and_preserves_lookups() {
        let (space, ids, mut store) = make_store(16, 6, 24, 11);
        for (i, name) in ["a", "b", "c", "d", "e", "f", "g", "h"].iter().enumerate() {
            store.publish(ids[i % ids.len()], name);
        }
        // Grow the network: fresh oracle tables over a superset.
        let mut rng = StdRng::seed_from_u64(77);
        let mut all: std::collections::BTreeSet<NodeId> = ids.iter().copied().collect();
        while all.len() < 48 {
            all.insert(space.random_id(&mut rng));
        }
        let all: Vec<NodeId> = all.into_iter().collect();
        store.update_tables(build_consistent_tables(space, &all));
        for name in ["a", "b", "c", "d", "e", "f", "g", "h"] {
            let hit = store
                .lookup(all[0], name)
                .expect("survives membership change");
            assert!(!hit.homes.is_empty());
        }
    }

    #[test]
    fn directory_load_is_spread() {
        // P3 sanity: with many objects, no single node hoards the
        // directory (load is hash-spread).
        let (_space, ids, mut store) = make_store(16, 6, 64, 13);
        for i in 0..256 {
            store.publish(ids[i % ids.len()], &format!("file-{i}"));
        }
        let load = store.directory_load();
        let max = load.values().max().copied().unwrap_or(0);
        let total: usize = load.values().sum();
        assert_eq!(total, 256);
        assert!(
            max <= 32,
            "one node holds {max} of 256 directory rows — not balanced"
        );
    }

    #[test]
    #[should_panic(expected = "unknown start")]
    fn lookup_from_stranger_panics() {
        let (space, ids, store) = make_store(4, 4, 10, 2);
        let stranger = (0..space.capacity().unwrap())
            .map(|v| space.id_from_value(v).unwrap())
            .find(|x| !ids.contains(x))
            .unwrap();
        let _ = store.root_from(stranger, &ids[0]);
    }
}
