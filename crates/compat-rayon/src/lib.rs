//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of rayon's data-parallel API it uses: `par_iter` /
//! `into_par_iter`, `map`, `for_each`, `sum` and `collect`. Work is fanned
//! over `std::thread::scope` with one contiguous, index-ordered chunk per
//! hardware thread, so results come back in input order — every pipeline
//! built on this shim is deterministic regardless of the core count (on a
//! single-core host it degrades to a plain sequential loop with no thread
//! spawned at all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Number of worker threads a parallel pass will use for `n` items.
fn threads_for(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n)
}

/// Applies `f` to every item, in parallel, preserving input order.
fn par_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads_for(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for (input, output) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (i, o) in input.iter_mut().zip(output.iter_mut()) {
                    *o = Some(f(i.take().expect("slot filled exactly once")));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// A parallel iterator: a materialized work list plus a processing stage.
pub trait ParallelIterator: Sized + Send {
    /// Item type produced by this stage.
    type Item: Send;

    /// Materializes the pipeline, running its stages in parallel.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).drive();
    }

    /// Collects the results.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.drive())
    }

    /// Sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }

    /// Number of items (materializes the pipeline).
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: Send + 'data;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel-iterates over references to `self`'s elements.
    fn par_iter(&'data self) -> Self::Iter;
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection from the (already ordered) results.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Source stage: a materialized list of items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Mapping stage.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        par_apply(self.base.drive(), &self.f)
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelIterator for &'data [T] {
    type Item = &'data T;
    type Iter = ParIter<&'data T>;

    fn into_par_iter(self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelIterator for &'data Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<&'data T>;

    fn into_par_iter(self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<&'data T>;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<&'data T>;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().map(|&x| x * x).sum();
        assert_eq!(s, 30);
    }

    #[test]
    fn range_source_and_chained_maps() {
        let out: Vec<String> = (0..10usize)
            .into_par_iter()
            .map(|i| i + 1)
            .map(|i| i.to_string())
            .collect();
        assert_eq!(out[9], "10");
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
