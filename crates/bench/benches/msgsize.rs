//! §6.2 ablation as a benchmark: the three payload modes on the same
//! workload, reporting (via assertions) that savings are real.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperring_core::PayloadMode;
use hyperring_harness::experiments::{run_fig15b, Fig15bConfig};
use std::hint::black_box;

fn bench_msgsize(c: &mut Criterion) {
    let mut g = c.benchmark_group("msgsize_ablation");
    g.sample_size(10);
    for (name, payload) in [
        ("full", PayloadMode::Full),
        ("levels", PayloadMode::Levels),
        ("bitvector", PayloadMode::BitVector),
    ] {
        g.bench_with_input(
            BenchmarkId::new("n192_m64_b16_d16", name),
            &payload,
            |b, &payload| {
                b.iter(|| {
                    let cfg = Fig15bConfig {
                        payload,
                        ..Fig15bConfig::small(16, 5)
                    };
                    let r = run_fig15b(&cfg);
                    assert!(r.consistent);
                    black_box(r.joiner_bytes)
                })
            },
        );
    }
    g.finish();

    // The ablation's headline numbers, checked once.
    let r = hyperring_harness::experiments::run_msgsize_ablation(&Fig15bConfig::small(16, 5));
    assert!(r.all_consistent);
    assert!(r.levels_bytes < r.full_bytes);
    assert!(r.bitvector_bytes < r.full_bytes);
}

criterion_group!(benches, bench_msgsize);
criterion_main!(benches);
