//! Socket-runtime throughput: join waves over real loopback UDP.
//!
//! Measures the non-blocking [`UdpNetwork`] runtime end to end — wire
//! encode, kernel round trip, decode, engine step — at n = 256 and
//! n = 1024 total nodes (3/4 members, 1/4 joining concurrently), and
//! exports messages/sec, mean time per message, and bytes per join to
//! `BENCH_net.json` at the workspace root. Hand-rolled `main`: each wave
//! is one long self-measuring run (the runtime's own [`UdpRunStats`]
//! carry the counters), so Criterion's sampling adds nothing here. Set
//! `BENCH_SMOKE=1` to run one small wave without touching the JSON.

use hyperring_core::{build_consistent_tables, check_consistency, ProtocolOptions, RetryPolicy};
use hyperring_harness::distinct_ids;
use hyperring_harness::metrics::{cores, peak_rss_bytes};
use hyperring_id::{IdSpace, NodeId};
use hyperring_net::{UdpConfig, UdpNetwork, UdpRunStats};
use std::time::Duration;

/// Total population of a wave; 3/4 oracle-built members, 1/4 joiners.
const SIZES: [usize; 2] = [256, 1024];
/// Waves per size; the median-wall run's stats are exported.
const RUNS: usize = 3;

struct Row {
    n: usize,
    joiners: usize,
    stats: UdpRunStats,
}

impl Row {
    fn messages_per_sec(&self) -> f64 {
        self.stats.datagrams_sent as f64 / self.stats.wall.as_secs_f64()
    }
    fn mean_ns_per_message(&self) -> f64 {
        self.stats.wall.as_nanos() as f64 / self.stats.datagrams_sent.max(1) as f64
    }
    fn bytes_per_join(&self) -> f64 {
        self.stats.bytes_sent as f64 / self.joiners as f64
    }
}

fn run_wave(space: IdSpace, n: usize, seed: u64) -> Row {
    let members = n * 3 / 4;
    let ids = distinct_ids(space, n, seed);
    let tables = build_consistent_tables(space, &ids[..members]);
    let joiners: Vec<(NodeId, NodeId)> = ids[members..]
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, ids[i % members]))
        .collect();
    // The retry policy shields the wave from kernel-buffer overload (the
    // only loss source here; no injected drops in a throughput run).
    let opts = ProtocolOptions::new().with_retry(RetryPolicy {
        timeout_us: 100_000,
        max_retries: 20,
        noti_repeats: 6,
        ..RetryPolicy::default()
    });
    let config = UdpConfig {
        settle: Duration::from_millis(100),
        quiesce_timeout: Duration::from_secs(300),
        ..UdpConfig::default()
    };
    let (tables, stats) = UdpNetwork::new(space, opts, tables)
        .with_config(config)
        .run_joins(&joiners)
        .expect("wave quiesces");
    assert!(
        check_consistency(space, &tables).is_consistent(),
        "throughput run must still satisfy Definition 3.8"
    );
    Row {
        n,
        joiners: joiners.len(),
        stats,
    }
}

fn median_wave(space: IdSpace, n: usize, runs: usize) -> Row {
    let mut rows: Vec<Row> = (0..runs as u64)
        .map(|r| run_wave(space, n, 5 + r))
        .collect();
    rows.sort_by_key(|a| a.stats.wall);
    rows.remove(rows.len() / 2)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let space = IdSpace::new(16, 4).unwrap();
    if smoke {
        let row = run_wave(space, 64, 5);
        println!(
            "smoke wave n=64: {} messages, {:.0} msgs/sec; BENCH_net.json left untouched",
            row.stats.datagrams_sent,
            row.messages_per_sec()
        );
        return;
    }

    let rss = peak_rss_bytes().unwrap_or(0);
    let ncores = cores();
    let mut json_rows = Vec::new();
    for &n in &SIZES {
        let row = median_wave(space, n, RUNS);
        println!(
            "netperf n={n}: {} msgs in {:?} → {:.0} msgs/sec, {:.0} ns/msg, {:.0} bytes/join \
             ({} timers, {} backpressure drops)",
            row.stats.datagrams_sent,
            row.stats.wall,
            row.messages_per_sec(),
            row.mean_ns_per_message(),
            row.bytes_per_join(),
            row.stats.timers_fired,
            row.stats.backpressure_drops,
        );
        json_rows.push(format!(
            "  {{\"shape\": \"udp_wave\", \"n\": {}, \"joiners\": {}, \"messages\": {}, \
             \"bytes\": {}, \"wall_ns\": {}, \"messages_per_sec\": {:.1}, \
             \"mean_ns_per_message\": {:.1}, \"bytes_per_join\": {:.1}, \
             \"timers_fired\": {}, \"backpressure_drops\": {}}}",
            row.n,
            row.joiners,
            row.stats.datagrams_sent,
            row.stats.bytes_sent,
            row.stats.wall.as_nanos(),
            row.messages_per_sec(),
            row.mean_ns_per_message(),
            row.bytes_per_join(),
            row.stats.timers_fired,
            row.stats.backpressure_drops,
        ));
    }

    let json = format!(
        "{{\n\"rows\": [\n{}\n],\n\"peak_rss_bytes\": {rss},\n\"cores\": {ncores}\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(path, json).expect("write BENCH_net.json");
    println!("wrote {path}");
}
