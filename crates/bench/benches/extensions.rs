//! Benchmarks of the extension layers: graceful leave, nearest-neighbor
//! table optimization, and surrogate-routing object lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperring_core::{build_consistent_tables, optimize_tables, SimNetworkBuilder};
use hyperring_harness::distinct_ids;
use hyperring_id::IdSpace;
use hyperring_object::ObjectStore;
use hyperring_sim::UniformDelay;
use std::hint::black_box;

fn bench_leave(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let ids = distinct_ids(space, 128, 3);
    let mut g = c.benchmark_group("leave");
    g.sample_size(10);
    g.bench_function("single_graceful_leave_n128", |b| {
        b.iter(|| {
            let mut builder = SimNetworkBuilder::new(space);
            for id in &ids {
                builder.add_member(*id);
            }
            let mut net = builder.build(UniformDelay::new(500, 20_000), 7);
            net.run();
            net.depart(&ids[64]);
            black_box(net.tables_iter().count())
        })
    });
    g.finish();
}

fn bench_optimize(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("optimize");
    g.sample_size(10);
    for n in [128usize, 512] {
        let ids = distinct_ids(space, n, 5);
        let tables = build_consistent_tables(space, &ids);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("two_rounds", n), &n, |b, _| {
            b.iter(|| {
                let mut t = tables.clone();
                let r = optimize_tables(
                    &mut t,
                    |a, b_| {
                        // Cheap synthetic metric.
                        let x = a.digits_lsd()[0] as u64 + 7 * b_.digits_lsd()[0] as u64;
                        1 + (x * 2_654_435_761) % 10_000
                    },
                    2,
                );
                black_box(r.replacements)
            })
        });
    }
    g.finish();
}

fn bench_object_lookup(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let ids = distinct_ids(space, 512, 9);
    let tables = build_consistent_tables(space, &ids);
    let mut store = ObjectStore::over(space, &tables);
    for i in 0..100 {
        store.publish(ids[i % ids.len()], &format!("obj-{i}"));
    }
    let mut g = c.benchmark_group("object");
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup_n512", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let name = format!("obj-{}", i % 100);
            let from = ids[(i * 13) % ids.len()];
            i += 1;
            black_box(store.lookup(from, &name))
        })
    });
    g.bench_function("surrogate_root_n512", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let oid = space.id_from_hash(format!("probe-{i}").as_bytes());
            let from = ids[i % ids.len()];
            i += 1;
            black_box(store.root_from(from, &oid))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_leave, bench_optimize, bench_object_lookup);
criterion_main!(benches);
