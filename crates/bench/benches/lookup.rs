//! Lookup-plane throughput: surrogate routing over borrowed tables.
//!
//! Measures `ObjectStore::root_from` on oracle-built consistent tables —
//! the de-cloned hot path with zero per-lookup allocations — at n = 256,
//! 1024, and 4096, and exports lookups/sec and ns/lookup to
//! `BENCH_lookup.json` at the workspace root. Hand-rolled `main`: the
//! `(source, object)` schedule is precompiled and each size's run is one
//! long timed pass (median of three), so Criterion's sampling adds
//! nothing. Set `BENCH_SMOKE=1` to run one small pass without touching
//! the JSON.

use hyperring_core::build_consistent_tables;
use hyperring_harness::distinct_ids;
use hyperring_harness::metrics::{cores, peak_rss_bytes};
use hyperring_id::{IdSpace, NodeId};
use hyperring_object::ObjectStore;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SIZES: [usize; 3] = [256, 1024, 4096];
/// Timed passes per size; the median-wall pass is exported.
const RUNS: usize = 3;
/// Lookups per timed pass.
const LOOKUPS: usize = 200_000;

struct Row {
    n: usize,
    lookups: usize,
    hops: usize,
    wall: Duration,
}

impl Row {
    fn lookups_per_sec(&self) -> f64 {
        self.lookups as f64 / self.wall.as_secs_f64()
    }
    fn mean_ns_per_lookup(&self) -> f64 {
        self.wall.as_nanos() as f64 / self.lookups.max(1) as f64
    }
    fn mean_hops(&self) -> f64 {
        self.hops as f64 / self.lookups.max(1) as f64
    }
}

fn run_pass(space: IdSpace, n: usize, lookups: usize, seed: u64) -> Row {
    let ids = distinct_ids(space, n, seed);
    let tables = build_consistent_tables(space, &ids);
    let store = ObjectStore::over(space, &tables);
    // Precompile the schedule so the timed loop is routing and nothing
    // else.
    let schedule: Vec<(NodeId, NodeId)> = (0..lookups)
        .map(|i| {
            let src = ids[(i * 2_654_435_761) % n];
            let oid = space.id_from_hash(format!("bench-key-{}", i % 4096).as_bytes());
            (src, oid)
        })
        .collect();
    let start = Instant::now();
    let mut hops = 0usize;
    for (src, oid) in &schedule {
        let (root, h) = store.root_from(*src, oid);
        black_box(root);
        hops += h;
    }
    let wall = start.elapsed();
    Row {
        n,
        lookups,
        hops,
        wall,
    }
}

fn median_pass(space: IdSpace, n: usize, lookups: usize, runs: usize) -> Row {
    let mut rows: Vec<Row> = (0..runs as u64)
        .map(|r| run_pass(space, n, lookups, 9 + r))
        .collect();
    rows.sort_by_key(|a| a.wall);
    rows.remove(rows.len() / 2)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let space = IdSpace::new(16, 8).unwrap();
    if smoke {
        let row = run_pass(space, 128, 20_000, 9);
        println!(
            "smoke pass n=128: {} lookups, {:.0} lookups/sec, {:.2} mean hops; \
             BENCH_lookup.json left untouched",
            row.lookups,
            row.lookups_per_sec(),
            row.mean_hops()
        );
        return;
    }

    let mut json_rows = Vec::new();
    for &n in &SIZES {
        let row = median_pass(space, n, LOOKUPS, RUNS);
        println!(
            "lookup n={n}: {} lookups in {:?} → {:.0} lookups/sec, {:.1} ns/lookup, \
             {:.2} mean hops",
            row.lookups,
            row.wall,
            row.lookups_per_sec(),
            row.mean_ns_per_lookup(),
            row.mean_hops(),
        );
        json_rows.push(format!(
            "  {{\"shape\": \"lookup_storm\", \"n\": {}, \"lookups\": {}, \"wall_ns\": {}, \
             \"lookups_per_sec\": {:.1}, \"mean_ns_per_lookup\": {:.1}, \"mean_hops\": {:.3}}}",
            row.n,
            row.lookups,
            row.wall.as_nanos(),
            row.lookups_per_sec(),
            row.mean_ns_per_lookup(),
            row.mean_hops(),
        ));
    }

    let rss = peak_rss_bytes().unwrap_or(0);
    let ncores = cores();
    let json = format!(
        "{{\n\"rows\": [\n{}\n],\n\"peak_rss_bytes\": {rss},\n\"cores\": {ncores}\n}}\n",
        json_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lookup.json");
    std::fs::write(path, json).expect("write BENCH_lookup.json");
    println!("wrote {path}");
}
