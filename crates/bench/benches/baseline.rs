//! Optimistic-join baseline vs the paper's protocol: run cost on the same
//! workload (the paper's protocol pays messages for its guarantee).

use criterion::{criterion_group, criterion_main, Criterion};
use hyperring_harness::baseline::{run_optimistic, run_paper_protocol};
use hyperring_harness::workload::JoinWorkload;
use hyperring_id::IdSpace;
use std::hint::black_box;

fn bench_baseline(c: &mut Criterion) {
    let space = IdSpace::new(4, 6).unwrap();
    let w = JoinWorkload::generate(space, 16, 32, 3);
    let mut g = c.benchmark_group("baseline");
    g.sample_size(10);
    g.bench_function("optimistic_join_wave", |b| {
        b.iter(|| black_box(run_optimistic(&w, 3, 0).false_negatives))
    });
    g.bench_function("paper_protocol_wave", |b| {
        b.iter(|| {
            let r = run_paper_protocol(&w, 3);
            assert!(r.consistent());
            black_box(r.unreachable_pairs)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
