//! Optimistic-join baseline vs the paper's protocol: run cost on the same
//! workload (the paper's protocol pays messages for its guarantee).

use criterion::{criterion_group, criterion_main, Criterion};
use hyperring_harness::workload::JoinWorkload;
use hyperring_harness::Scenario;
use hyperring_id::IdSpace;
use std::hint::black_box;

fn bench_baseline(c: &mut Criterion) {
    let space = IdSpace::new(4, 6).unwrap();
    let w = JoinWorkload::generate(space, 16, 32, 3);
    let mut g = c.benchmark_group("baseline");
    g.sample_size(10);
    g.bench_function("optimistic_join_wave", |b| {
        b.iter(|| {
            let r = Scenario::new(space)
                .workload(w.clone())
                .seed(3)
                .optimistic()
                .run_sim();
            black_box(r.false_negatives)
        })
    });
    g.bench_function("paper_protocol_wave", |b| {
        b.iter(|| {
            let r = Scenario::new(space).workload(w.clone()).seed(3).run_sim();
            assert!(r.consistent());
            black_box(r.unreachable_pairs)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
