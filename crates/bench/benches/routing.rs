//! Hypercube routing: next-hop lookups and full route resolution over a
//! consistent network (§2.2), plus host-to-host delay lookups on the
//! transit-stub topology — recomputed, row-cached, and full-matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperring_core::{build_consistent_tables, next_hop, route, NeighborTable};
use hyperring_harness::{distinct_ids, SharedTopology, TopologyDelay};
use hyperring_id::{IdSpace, NodeId};
use hyperring_sim::DelayModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    for n in [256usize, 2048] {
        let ids = distinct_ids(space, n, 11);
        let tables: HashMap<NodeId, NeighborTable> = build_consistent_tables(space, &ids)
            .into_iter()
            .map(|t| (t.owner(), t))
            .collect();
        let mut g = c.benchmark_group(format!("routing_n{n}"));
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("route_full", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let s = ids[i % n];
                let t = ids[(i * 7 + 13) % n];
                i += 1;
                black_box(route(s, t, |id| tables.get(id)))
            })
        });
        g.bench_with_input(BenchmarkId::new("next_hop", n), &n, |b, _| {
            let table = &tables[&ids[0]];
            let mut i = 0usize;
            b.iter(|| {
                let t = ids[(i * 7 + 13) % n];
                i += 1;
                black_box(next_hop(table, &t))
            })
        });
        g.finish();
    }
}

fn bench_delay_lookup(c: &mut Criterion) {
    let hosts = 512usize;
    let shared = SharedTopology::test_scale(hosts, 77);
    let mut uncached = TopologyDelay::test_scale(hosts, 77);
    let mut g = c.benchmark_group("delay_lookup");
    g.throughput(Throughput::Elements(1));

    // Same pseudo-random (from, to) stream for all three variants.
    let pair = |i: usize| ((i * 31) % hosts, (i * 7 + 13) % hosts);

    g.bench_function("uncached_host_latency", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut i = 0usize;
        b.iter(|| {
            let (f, t) = pair(i);
            i += 1;
            black_box(uncached.delay(f, t, &mut rng))
        });
    });
    g.bench_function("cached_rows", |b| {
        let mut model = shared.delay_model();
        let mut rng = StdRng::seed_from_u64(1);
        let mut i = 0usize;
        b.iter(|| {
            let (f, t) = pair(i);
            i += 1;
            black_box(model.delay(f, t, &mut rng))
        });
    });
    g.bench_function("full_matrix", |b| {
        let mut model = shared.full_matrix();
        let mut rng = StdRng::seed_from_u64(1);
        let mut i = 0usize;
        b.iter(|| {
            let (f, t) = pair(i);
            i += 1;
            black_box(model.delay(f, t, &mut rng))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_routing, bench_delay_lookup);
criterion_main!(benches);
