//! Cost of the Definition-3.8 consistency checker — the streaming
//! compact-index pass versus the materializing suffix-indexed checker
//! versus the naive O(n²·d·b) scan — plus the quadratic reachability
//! verifier and a phase-attributed peak-RSS comparison of the two
//! realistic pipelines at large n.
//!
//! Runs with a hand-rolled `main` (instead of `criterion_main!`) so the
//! measurements, the speedups, and the peak-RSS rows can be exported to
//! `BENCH_consistency.json` at the workspace root.

use criterion::{BenchmarkId, Criterion, Throughput};
use hyperring_core::{
    build_consistent_tables, check_consistency, check_consistency_naive,
    check_consistency_streaming, check_reachability, NeighborTable,
};
use hyperring_harness::distinct_ids;
use hyperring_harness::metrics::{current_rss_bytes, peak_rss_bytes, reset_peak_rss};
use hyperring_id::IdSpace;
use std::hint::black_box;

const SIZES: [usize; 3] = [256, 1024, 4096];

/// Large-n tier: streaming and indexed are timed here too (the naive scan
/// would take ~40 min at this size and is covered by its trajectory at
/// [`SIZES`]); this is also the size the ≥5x check-phase RSS claim is
/// quoted at.
const BIG_N: usize = 65536;

/// Sizes of the peak-RSS comparison rows.
const RSS_SIZES: [usize; 2] = [16384, BIG_N];

fn bench_consistency(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("consistency");
    g.sample_size(10);
    for n in SIZES {
        let ids = distinct_ids(space, n, 13);
        let tables = build_consistent_tables(space, &ids);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("check_definition_3_8", n), &n, |b, _| {
            b.iter(|| {
                let r = check_consistency(space, black_box(&tables));
                assert!(r.is_consistent());
                black_box(r.entries_checked())
            })
        });
        g.bench_with_input(BenchmarkId::new("check_streaming", n), &n, |b, _| {
            b.iter(|| {
                let r = check_consistency_streaming(space, black_box(&tables).iter());
                assert!(r.is_consistent());
                black_box(r.entries_checked())
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |b, _| {
            b.iter(|| {
                let r = check_consistency_naive(space, black_box(&tables));
                assert!(r.is_consistent());
                black_box(r.entries_checked())
            })
        });
    }
    // Reachability is O(n² d): bench at a smaller size.
    let ids = distinct_ids(space, 128, 13);
    let tables = build_consistent_tables(space, &ids);
    g.throughput(Throughput::Elements(128));
    g.bench_function("check_reachability_n128", |b| {
        b.iter(|| {
            let fails = check_reachability(black_box(&tables));
            assert!(fails.is_empty());
            black_box(fails.len())
        })
    });
    g.finish();
}

fn bench_big(c: &mut Criterion, tables: &[NeighborTable]) {
    let space = IdSpace::new(16, 8).unwrap();
    let n = tables.len();
    let mut g = c.benchmark_group("consistency");
    g.sample_size(3);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_with_input(BenchmarkId::new("check_definition_3_8", n), &n, |b, _| {
        b.iter(|| {
            let r = check_consistency(space, black_box(tables));
            assert!(r.is_consistent());
            black_box(r.entries_checked())
        })
    });
    g.bench_with_input(BenchmarkId::new("check_streaming", n), &n, |b, _| {
        b.iter(|| {
            let r = check_consistency_streaming(space, black_box(tables).iter());
            assert!(r.is_consistent());
            black_box(r.entries_checked())
        })
    });
    g.finish();
}

/// Peak RSS attributable to one closure: reset the kernel high-water
/// mark, note the current RSS, run the phase, and read how far the mark
/// climbed. `None` when `/proc/self/clear_refs` is unavailable.
fn rss_delta(f: impl FnOnce()) -> Option<u64> {
    if !reset_peak_rss() {
        return None;
    }
    let before = current_rss_bytes()?;
    f();
    Some(peak_rss_bytes()?.saturating_sub(before))
}

struct RssRow {
    n: usize,
    materialized: u64,
    streaming: u64,
}

/// Materialized-over-streaming RSS ratio. The streaming delta is floored
/// at 1 MiB before dividing: its true delta is routinely zero pages (the
/// compact index fits in memory the allocator already holds), which would
/// make the honest quotient infinite — the floored ratio is a
/// conservative lower bound on the saving.
fn rss_ratio(r: &RssRow) -> f64 {
    r.materialized as f64 / r.streaming.max(1 << 20) as f64
}

/// Measures the check-phase peak RSS of the streaming pass against the
/// old materializing pipeline over the same tables. Streaming runs first
/// so allocator retention from the clone cannot inflate its baseline.
fn measure_check_rss(space: IdSpace, n: usize, tables: &[NeighborTable]) -> Option<RssRow> {
    let streaming = rss_delta(|| {
        let r = check_consistency_streaming(space, tables.iter());
        assert!(r.is_consistent());
        black_box(r.entries_checked());
    })?;
    let materialized = rss_delta(|| {
        // Emulates the pre-streaming harness path: the `net.tables()` full
        // clone followed by the `SuffixIndex` checker with its per-entry
        // `NodeId`/suffix materialization.
        let cloned: Vec<NeighborTable> = tables.to_vec();
        let r = check_consistency(space, black_box(&cloned));
        assert!(r.is_consistent());
        black_box(r.entries_checked());
    })?;
    Some(RssRow {
        n,
        materialized,
        streaming,
    })
}

fn mean_ns(c: &Criterion, id: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("no result named {id}"))
        .mean_ns
}

fn main() {
    let space = IdSpace::new(16, 8).unwrap();
    let mut c = Criterion::default();
    bench_consistency(&mut c);

    // One table build per RSS size, shared between the BIG_N timing rows
    // and the RSS comparison.
    let mut rss_rows = Vec::new();
    for n in RSS_SIZES {
        println!("building {n} oracle tables for the RSS comparison …");
        let ids = distinct_ids(space, n, 13);
        let tables = build_consistent_tables(space, &ids);
        if n == BIG_N {
            bench_big(&mut c, &tables);
        }
        match measure_check_rss(space, n, &tables) {
            Some(row) => {
                let ratio = rss_ratio(&row);
                println!(
                    "check-phase peak RSS, n={n}: materialized {:.1} MiB, streaming {:.1} MiB ({ratio:.1}x)",
                    row.materialized as f64 / (1024.0 * 1024.0),
                    row.streaming as f64 / (1024.0 * 1024.0),
                );
                rss_rows.push(row);
            }
            None => println!("check-phase peak RSS, n={n}: /proc clear_refs unavailable, skipped"),
        }
    }

    let speedups: Vec<String> = SIZES
        .iter()
        .map(|n| {
            let naive = mean_ns(&c, &format!("consistency/naive_scan/{n}"));
            let indexed = mean_ns(&c, &format!("consistency/check_definition_3_8/{n}"));
            let s = naive / indexed;
            println!("speedup indexed vs naive, n={n}: {s:.1}x");
            format!("  {{\"n\": {n}, \"speedup\": {s:.3}}}")
        })
        .collect();

    let streaming_rows: Vec<String> = SIZES
        .iter()
        .chain(std::iter::once(&BIG_N))
        .map(|n| {
            let indexed = mean_ns(&c, &format!("consistency/check_definition_3_8/{n}"));
            let streaming = mean_ns(&c, &format!("consistency/check_streaming/{n}"));
            let s = indexed / streaming;
            println!("streaming vs indexed, n={n}: {s:.2}x");
            format!("  {{\"n\": {n}, \"indexed_ns\": {indexed:.1}, \"streaming_ns\": {streaming:.1}, \"speedup\": {s:.3}}}")
        })
        .collect();

    let rss_json: Vec<String> = rss_rows
        .iter()
        .map(|r| {
            let ratio = rss_ratio(r);
            format!(
                "  {{\"n\": {}, \"materialized_bytes\": {}, \"streaming_bytes\": {}, \"ratio_floor_1mib\": {ratio:.3}}}",
                r.n, r.materialized, r.streaming
            )
        })
        .collect();

    let json = format!(
        "{{\n\"benches\": {},\n\"indexed_vs_naive_speedup\": [\n{}\n],\n\"streaming_vs_indexed\": [\n{}\n],\n\"check_peak_rss\": [\n{}\n]\n}}\n",
        c.results_json().trim_end(),
        speedups.join(",\n"),
        streaming_rows.join(",\n"),
        rss_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_consistency.json");
    std::fs::write(path, json).expect("write BENCH_consistency.json");
    println!("wrote {path}");
}
