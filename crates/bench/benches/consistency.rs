//! Cost of the Definition-3.8 consistency checker and the quadratic
//! reachability verifier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperring_core::{build_consistent_tables, check_consistency, check_reachability};
use hyperring_harness::distinct_ids;
use hyperring_id::IdSpace;
use std::hint::black_box;

fn bench_consistency(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("consistency");
    g.sample_size(10);
    for n in [256usize, 1024] {
        let ids = distinct_ids(space, n, 13);
        let tables = build_consistent_tables(space, &ids);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("check_definition_3_8", n), &n, |b, _| {
            b.iter(|| {
                let r = check_consistency(space, black_box(&tables));
                assert!(r.is_consistent());
                black_box(r.entries_checked())
            })
        });
    }
    // Reachability is O(n² d): bench at a smaller size.
    let ids = distinct_ids(space, 128, 13);
    let tables = build_consistent_tables(space, &ids);
    g.bench_function("check_reachability_n128", |b| {
        b.iter(|| {
            let fails = check_reachability(black_box(&tables));
            assert!(fails.is_empty());
            black_box(fails.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_consistency);
criterion_main!(benches);
