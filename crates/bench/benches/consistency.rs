//! Cost of the Definition-3.8 consistency checker — suffix-indexed versus
//! the naive O(n²·d·b) scan — plus the quadratic reachability verifier.
//!
//! Runs with a hand-rolled `main` (instead of `criterion_main!`) so the
//! measurements and the indexed-vs-naive speedups can be exported to
//! `BENCH_consistency.json` at the workspace root.

use criterion::{BenchmarkId, Criterion, Throughput};
use hyperring_core::{
    build_consistent_tables, check_consistency, check_consistency_naive, check_reachability,
};
use hyperring_harness::distinct_ids;
use hyperring_id::IdSpace;
use std::hint::black_box;

const SIZES: [usize; 3] = [256, 1024, 4096];

fn bench_consistency(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("consistency");
    g.sample_size(10);
    for n in SIZES {
        let ids = distinct_ids(space, n, 13);
        let tables = build_consistent_tables(space, &ids);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("check_definition_3_8", n), &n, |b, _| {
            b.iter(|| {
                let r = check_consistency(space, black_box(&tables));
                assert!(r.is_consistent());
                black_box(r.entries_checked())
            })
        });
        g.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |b, _| {
            b.iter(|| {
                let r = check_consistency_naive(space, black_box(&tables));
                assert!(r.is_consistent());
                black_box(r.entries_checked())
            })
        });
    }
    // Reachability is O(n² d): bench at a smaller size.
    let ids = distinct_ids(space, 128, 13);
    let tables = build_consistent_tables(space, &ids);
    g.throughput(Throughput::Elements(128));
    g.bench_function("check_reachability_n128", |b| {
        b.iter(|| {
            let fails = check_reachability(black_box(&tables));
            assert!(fails.is_empty());
            black_box(fails.len())
        })
    });
    g.finish();
}

fn mean_ns(c: &Criterion, id: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("no result named {id}"))
        .mean_ns
}

fn main() {
    let mut c = Criterion::default();
    bench_consistency(&mut c);

    let speedups: Vec<String> = SIZES
        .iter()
        .map(|n| {
            let naive = mean_ns(&c, &format!("consistency/naive_scan/{n}"));
            let indexed = mean_ns(&c, &format!("consistency/check_definition_3_8/{n}"));
            let s = naive / indexed;
            println!("speedup indexed vs naive, n={n}: {s:.1}x");
            format!("  {{\"n\": {n}, \"speedup\": {s:.3}}}")
        })
        .collect();

    let json = format!(
        "{{\n\"benches\": {},\n\"indexed_vs_naive_speedup\": [\n{}\n]\n}}\n",
        c.results_json().trim_end(),
        speedups.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_consistency.json");
    std::fs::write(path, json).expect("write BENCH_consistency.json");
    println!("wrote {path}");
}
