//! Join-protocol throughput: complete join waves of varying concurrency,
//! and the engine's raw message-handling rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperring_core::SimNetworkBuilder;
use hyperring_harness::distinct_ids;
use hyperring_id::IdSpace;
use hyperring_sim::UniformDelay;
use std::hint::black_box;

fn bench_join_waves(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("join_waves");
    g.sample_size(10);
    for m in [16usize, 64, 128] {
        let n = 256;
        let ids = distinct_ids(space, n + m, 5);
        g.throughput(Throughput::Elements(m as u64));
        g.bench_with_input(BenchmarkId::new("concurrent_joins_n256", m), &m, |b, &m| {
            b.iter(|| {
                let mut builder = SimNetworkBuilder::new(space);
                for id in &ids[..n] {
                    builder.add_member(*id);
                }
                for (i, id) in ids[n..n + m].iter().enumerate() {
                    builder.add_joiner(*id, ids[i % n], 0);
                }
                let mut net = builder.build(UniformDelay::new(1_000, 60_000), 2);
                net.run();
                assert!(net.all_in_system());
                black_box(net.now())
            })
        });
    }
    g.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("oracle_tables");
    g.sample_size(10);
    for n in [256usize, 1024] {
        let ids = distinct_ids(space, n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("build_consistent", n), &n, |b, _| {
            b.iter(|| black_box(hyperring_core::build_consistent_tables(space, &ids)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join_waves, bench_oracle);
criterion_main!(benches);
