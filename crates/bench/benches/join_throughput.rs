//! Join-protocol throughput trajectory: concurrent-join waves at several
//! network sizes, and §6.1 sequential bootstrap via the incremental
//! single-simulator path versus the original rebuild-per-join baseline.
//!
//! Runs with a hand-rolled `main` (like the consistency bench) so the
//! measurements and the incremental-vs-rebuild speedups can be exported
//! to `BENCH_join.json` at the workspace root. Set `BENCH_SMOKE=1` to run
//! one short iteration of each shape without touching the JSON (the CI
//! smoke step).

use criterion::{BenchmarkId, Criterion, Throughput};
use hyperring_core::{
    bootstrap_batched, bootstrap_sequential, bootstrap_sequential_rebuild, ProtocolOptions,
    SimNetworkBuilder,
};
use hyperring_harness::distinct_ids;
use hyperring_harness::metrics::{cores, peak_rss_bytes};
use hyperring_id::IdSpace;
use hyperring_sim::UniformDelay;
use std::hint::black_box;

/// Total population of a concurrent-join run; 3/4 are oracle-built
/// members, 1/4 join concurrently at t = 0.
const JOIN_SIZES: [usize; 3] = [64, 256, 1024];

/// Population of a sequential-bootstrap run (seed node + n-1 joins).
const BOOTSTRAP_SIZES: [usize; 2] = [256, 1024];

/// Population of the sharded-vs-sequential scaling comparison (batched
/// concurrent bootstrap on the sharded event-queue core).
const SCALE_N: usize = 4096;
/// Joiners per concurrent wave of the scaling comparison.
const SCALE_BATCH: usize = 256;
/// Shard counts compared at [`SCALE_N`]; `1` is the sequential queue.
const SCALE_SHARDS: [usize; 2] = [1, 4];

/// Pre-refactor measurements (ns/iter) of the same shapes, taken from a
/// build of the commit immediately before the zero-copy simulation core
/// landed (snapshot memoization, shared directory snapshots, oracle
/// suffix-row lookups, incremental bootstrap). Concurrent numbers are
/// medians of interleaved before/after runs in one session on one
/// machine, so load drift cancels out. Bootstrap numbers are the
/// rebuild-per-join path timed in the same session — a conservative
/// "before", since the retained [`bootstrap_sequential_rebuild`] also
/// benefits from the per-join engine speedups. Machine-specific; refresh
/// by re-running the interleaved comparison if ever re-measured.
const SEED_CONCURRENT_NS: [(usize, f64); 3] =
    [(64, 898_000.0), (256, 6_131_000.0), (1024, 40_943_000.0)];
const SEED_BOOTSTRAP_NS: [(usize, f64); 2] = [(256, 117_204_000.0), (1024, 2_610_774_000.0)];

fn bench_concurrent_joins(c: &mut Criterion, sizes: &[usize]) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("join_throughput");
    g.sample_size(10);
    for &n in sizes {
        let members = n * 3 / 4;
        let joiners = n - members;
        let ids = distinct_ids(space, n, 5);
        g.throughput(Throughput::Elements(joiners as u64));
        g.bench_with_input(BenchmarkId::new("concurrent", n), &n, |b, _| {
            b.iter(|| {
                let mut builder = SimNetworkBuilder::new(space);
                for id in &ids[..members] {
                    builder.add_member(*id);
                }
                for (i, id) in ids[members..].iter().enumerate() {
                    builder.add_joiner(*id, ids[i % members], 0);
                }
                let mut net = builder.build(UniformDelay::new(1_000, 60_000), 2);
                let report = net.run();
                assert!(net.all_in_system());
                black_box(report.delivered)
            })
        });
    }
    g.finish();
}

fn bench_bootstrap(c: &mut Criterion, sizes: &[usize]) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("join_throughput");
    g.sample_size(3);
    for &n in sizes {
        let ids = distinct_ids(space, n, 11);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("bootstrap_sequential", n), &n, |b, _| {
            b.iter(|| {
                let tables = bootstrap_sequential(space, ProtocolOptions::new(), &ids);
                assert_eq!(tables.len(), n);
                black_box(tables.len())
            })
        });
    }
    g.finish();
}

/// In-binary baseline: the original rebuild-per-join bootstrap, measured
/// live at n=256 so the speedup over it does not depend on the recorded
/// seed numbers. (n=1024 rebuild takes ~5 s/iter; its trajectory is
/// covered by `SEED_BOOTSTRAP_NS`.)
fn bench_bootstrap_rebuild(c: &mut Criterion, n: usize) {
    let space = IdSpace::new(16, 8).unwrap();
    let ids = distinct_ids(space, n, 11);
    let mut g = c.benchmark_group("join_throughput");
    g.sample_size(2);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_with_input(BenchmarkId::new("bootstrap_rebuild", n), &n, |b, _| {
        b.iter(|| {
            let tables = bootstrap_sequential_rebuild(space, ProtocolOptions::new(), &ids);
            assert_eq!(tables.len(), n);
            black_box(tables.len())
        })
    });
    g.finish();
}

/// Batched concurrent bootstrap at `n` on each shard count — the sharded
/// scheduler produces bit-identical tables for every count (digest-pinned
/// in the golden tests), so this isolates pure scheduling cost. Shard
/// speedups are bounded by the core count, exported alongside the rows.
fn bench_scale(c: &mut Criterion, n: usize, batch: usize, shard_counts: &[usize]) {
    let space = IdSpace::new(16, 8).unwrap();
    let ids = distinct_ids(space, n, 13);
    let mut g = c.benchmark_group("join_throughput");
    g.sample_size(2);
    for &shards in shard_counts {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("scale_shards{shards}"), n),
            &n,
            |b, _| {
                b.iter(|| {
                    let tables =
                        bootstrap_batched(space, ProtocolOptions::new(), &ids, batch, shards);
                    assert_eq!(tables.len(), n);
                    black_box(tables.len())
                })
            },
        );
    }
    g.finish();
}

fn mean_ns(c: &Criterion, id: &str) -> Option<f64> {
    c.results().iter().find(|r| r.id == id).map(|r| r.mean_ns)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let mut c = Criterion::default();
    if smoke {
        bench_concurrent_joins(&mut c, &[64]);
        bench_bootstrap(&mut c, &[64]);
        bench_bootstrap_rebuild(&mut c, 64);
        // The scaling comparison keeps its full n even in smoke mode — the
        // point of the CI step is exercising the sharded scheduler at the
        // size the acceptance numbers are quoted at.
        bench_scale(&mut c, SCALE_N, SCALE_BATCH, &SCALE_SHARDS);
        println!("smoke run complete; BENCH_join.json left untouched");
        return;
    }
    bench_concurrent_joins(&mut c, &JOIN_SIZES);
    bench_bootstrap(&mut c, &BOOTSTRAP_SIZES);
    bench_bootstrap_rebuild(&mut c, 256);
    bench_scale(&mut c, SCALE_N, SCALE_BATCH, &SCALE_SHARDS);

    let live_ratio = match (
        mean_ns(&c, "join_throughput/bootstrap_rebuild/256"),
        mean_ns(&c, "join_throughput/bootstrap_sequential/256"),
    ) {
        (Some(rebuild), Some(incremental)) if incremental > 0.0 => {
            let r = rebuild / incremental;
            println!("live rebuild vs incremental, n=256: {r:.1}x");
            r
        }
        _ => 0.0,
    };

    let mut trajectory = Vec::new();
    for (shape, seeds) in [
        ("concurrent", &SEED_CONCURRENT_NS[..]),
        ("bootstrap_sequential", &SEED_BOOTSTRAP_NS[..]),
    ] {
        for &(n, before) in seeds {
            if let Some(after) = mean_ns(&c, &format!("join_throughput/{shape}/{n}")) {
                let speedup = if after > 0.0 { before / after } else { 0.0 };
                println!(
                    "{shape} n={n}: before {before:.0} ns, after {after:.0} ns ({speedup:.2}x)"
                );
                trajectory.push(format!(
                    "  {{\"shape\": \"{shape}\", \"n\": {n}, \"before_ns\": {before:.1}, \"after_ns\": {after:.1}, \"speedup\": {speedup:.3}}}"
                ));
            }
        }
    }

    // Scaling rows: nodes/sec and peak RSS per shard count at SCALE_N,
    // plus the sharded-vs-sequential wall-clock ratio. Peak RSS is the
    // process high-water mark (so an upper bound shared by all rows);
    // `cores` qualifies the ratio — on a single-core host the sharded
    // scheduler degrades to ordered sequential delivery and ≈1x is the
    // honest expectation.
    let rss = peak_rss_bytes().unwrap_or(0);
    let ncores = cores();
    let mut scale_rows = Vec::new();
    let mut scale_ns = Vec::new();
    for &shards in &SCALE_SHARDS {
        if let Some(ns) = mean_ns(
            &c,
            &format!("join_throughput/scale_shards{shards}/{SCALE_N}"),
        ) {
            let nodes_per_sec = SCALE_N as f64 / (ns / 1e9);
            println!(
                "scale n={SCALE_N} shards={shards}: {ns:.0} ns/iter, {nodes_per_sec:.0} nodes/sec, peak RSS {rss} B, {ncores} core(s)"
            );
            scale_rows.push(format!(
                "  {{\"shape\": \"scale_shards{shards}\", \"n\": {SCALE_N}, \"shards\": {shards}, \"mean_ns\": {ns:.1}, \"nodes_per_sec\": {nodes_per_sec:.1}, \"peak_rss_bytes\": {rss}, \"cores\": {ncores}}}"
            ));
            scale_ns.push((shards, ns));
        }
    }
    let sharded_speedup = match (
        scale_ns.iter().find(|&&(s, _)| s == 1),
        scale_ns.iter().find(|&&(s, _)| s > 1),
    ) {
        (Some(&(_, seq)), Some(&(_, sharded))) if sharded > 0.0 => {
            let r = seq / sharded;
            println!("sharded vs sequential queue, n={SCALE_N}: {r:.2}x on {ncores} core(s)");
            r
        }
        _ => 0.0,
    };

    let json = format!(
        "{{\n\"benches\": {},\n\"before_after\": [\n{}\n],\n\"live_rebuild_vs_incremental_n256\": {live_ratio:.3},\n\"scale\": [\n{}\n],\n\"sharded_speedup_n{SCALE_N}\": {sharded_speedup:.3},\n\"cores\": {ncores}\n}}\n",
        c.results_json().trim_end(),
        trajectory.join(",\n"),
        scale_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    std::fs::write(path, json).expect("write BENCH_join.json");
    println!("wrote {path}");
}
