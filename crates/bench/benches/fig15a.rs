//! Figure 15(a): evaluation cost of the Theorem-5 bound (the figure's data
//! is analytic; this bench times the combinatorics and regenerates the
//! series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperring_analysis::{p_vector, upper_bound_join_noti};
use std::hint::black_box;

fn bench_fig15a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15a");
    g.sample_size(10);
    for n in [10_000u64, 50_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("bound_b16_d40_m1000", n), &n, |b, &n| {
            b.iter(|| black_box(upper_bound_join_noti(16, 40, black_box(n), 1000)))
        });
    }
    g.bench_function("p_vector_b16_d8_n3096", |b| {
        b.iter(|| black_box(p_vector(16, 8, black_box(3096))))
    });
    g.finish();

    // Regenerate (and sanity-check) the figure's series once.
    let series = hyperring_harness::experiments::fig15a_series(10_000);
    assert_eq!(series.len(), 10);
    assert!((upper_bound_join_noti(16, 8, 3096, 1000) - 8.001).abs() < 0.01);
}

criterion_group!(benches, bench_fig15a);
criterion_main!(benches);
