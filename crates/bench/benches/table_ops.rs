//! Microbenchmarks of the neighbor-table data structure: snapshotting (the
//! dominant per-message cost), lookups, and the §6.2 bit-vector filters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperring_core::{build_consistent_tables, NeighborTable};
use hyperring_harness::distinct_ids;
use hyperring_id::IdSpace;
use std::hint::black_box;

fn full_table(d: usize) -> NeighborTable {
    let space = IdSpace::new(16, d).unwrap();
    let ids = distinct_ids(space, 512, 3);
    build_consistent_tables(space, &ids).remove(0)
}

fn bench_table_ops(c: &mut Criterion) {
    for d in [8usize, 40] {
        let t = full_table(d);
        let mut g = c.benchmark_group(format!("table_d{d}"));
        g.bench_with_input(BenchmarkId::new("snapshot_full", d), &d, |b, _| {
            b.iter(|| black_box(t.snapshot()))
        });
        g.bench_with_input(BenchmarkId::new("snapshot_levels_half", d), &d, |b, &d| {
            b.iter(|| black_box(t.snapshot_levels(0, d / 2)))
        });
        g.bench_with_input(BenchmarkId::new("filled_bitvec", d), &d, |b, _| {
            b.iter(|| black_box(t.filled_bitvec()))
        });
        let bits = t.filled_bitvec();
        g.bench_with_input(BenchmarkId::new("snapshot_bitvec", d), &d, |b, _| {
            b.iter(|| black_box(t.snapshot_bitvec(2, &bits)))
        });
        let owner = t.owner();
        g.bench_with_input(BenchmarkId::new("get", d), &d, |b, _| {
            b.iter(|| black_box(t.get(black_box(1), owner.digit(1))))
        });
        let snap = t.snapshot();
        g.bench_with_input(BenchmarkId::new("snapshot_clone", d), &d, |b, _| {
            b.iter(|| black_box(snap.clone()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_table_ops);
criterion_main!(benches);
