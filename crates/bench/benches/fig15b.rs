//! Figure 15(b) end-to-end at reduced scale: simulate m concurrent joins
//! on a transit-stub topology and collect the per-join `JoinNotiMsg`
//! distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperring_harness::experiments::{run_fig15b, Fig15bConfig};
use std::hint::black_box;

fn bench_fig15b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15b_small");
    g.sample_size(10);
    for d in [8usize, 40] {
        g.bench_with_input(BenchmarkId::new("n192_m64_b16", d), &d, |b, &d| {
            b.iter(|| {
                let r = run_fig15b(&Fig15bConfig::small(black_box(d), 1));
                assert!(r.consistent);
                black_box(r.average())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig15b);
criterion_main!(benches);
