//! Theorem 4: cost of one complete single-node join (end to end through
//! the simulator) and of the closed-form expectation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperring_analysis::expected_join_noti;
use hyperring_core::SimNetworkBuilder;
use hyperring_harness::distinct_ids;
use hyperring_id::IdSpace;
use hyperring_sim::UniformDelay;
use std::hint::black_box;

fn bench_theorem4(c: &mut Criterion) {
    let space = IdSpace::new(16, 8).unwrap();
    let mut g = c.benchmark_group("theorem4");
    g.sample_size(10);
    for n in [128usize, 512] {
        let ids = distinct_ids(space, n + 1, 3);
        g.bench_with_input(BenchmarkId::new("single_join_sim", n), &n, |b, &n| {
            b.iter(|| {
                let mut builder = SimNetworkBuilder::new(space);
                for id in &ids[..n] {
                    builder.add_member(*id);
                }
                builder.add_joiner(ids[n], ids[0], 0);
                let mut net = builder.build(UniformDelay::new(1_000, 50_000), 9);
                net.run();
                assert!(net.all_in_system());
                let j = net.joiners().next().unwrap().stats().join_noti();
                black_box(j)
            })
        });
    }
    g.bench_function("analytic_E_J_n100k", |b| {
        b.iter(|| black_box(expected_join_noti(16, 8, black_box(100_000))))
    });
    g.finish();
}

criterion_group!(benches, bench_theorem4);
criterion_main!(benches);
