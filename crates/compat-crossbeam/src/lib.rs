//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one crossbeam facility it uses: an unbounded MPMC channel
//! (`crossbeam::channel::{unbounded, Sender, Receiver}`). The
//! implementation is a `Mutex<VecDeque>` with a `Condvar` — not as fast as
//! crossbeam's lock-free queue, but semantically equivalent for the
//! threaded stress-test runtime that consumes it: cloneable senders and
//! receivers, blocking `recv`, and disconnect errors once every peer on
//! the other side has been dropped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(
        /// The message that could not be delivered.
        pub T,
    );

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver.
        ///
        /// Fails only when every [`Receiver`] has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every [`Sender`] is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel lock poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .expect("channel lock poisoned");
            }
        }

        /// Blocks until a message arrives, every [`Sender`] is dropped, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel lock poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel lock poisoned");
                queue = q;
            }
        }

        /// Pops a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel lock poisoned");
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all receivers so they can observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, RecvTimeoutError, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_a_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = unbounded();
        tx.send(1u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn blocking_recv_wakes_on_send_across_threads() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || rx.recv().unwrap());
        tx.send(42u64).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250u32 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
