//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion's API its benches use: [`Criterion`],
//! benchmark groups with `sample_size` / `throughput` / `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up, then
//! timed for `sample_size` samples (bounded by a wall-clock budget), and
//! the mean/min/max nanoseconds per iteration are printed. Results are
//! also collected on the [`Criterion`] value so a bench target with a
//! custom `main` can export them as JSON (see
//! [`Criterion::results`] / [`BenchResult::to_json`]), which this
//! workspace uses to track performance trajectories across PRs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization
/// barrier.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (reported, not measured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Serializes the result as a JSON object (no external deps, so this
    /// is hand-rolled; ids contain no characters needing escapes).
    pub fn to_json(&self) -> String {
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => format!(r#", "throughput_elements": {n}"#),
            Some(Throughput::Bytes(n)) => format!(r#", "throughput_bytes": {n}"#),
            None => String::new(),
        };
        format!(
            r#"{{"id": "{}", "mean_ns": {:.1}, "min_ns": {:.1}, "max_ns": {:.1}, "samples": {}, "iters_per_sample": {}{}}}"#,
            self.id.replace('"', "'"),
            self.mean_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters_per_sample,
            throughput
        )
    }
}

/// Benchmark driver. Collects every measurement it runs.
#[derive(Debug)]
pub struct Criterion {
    results: Vec<BenchResult>,
    default_sample_size: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            default_sample_size: 20,
            sample_budget: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().to_string();
        let sample_size = self.default_sample_size;
        let budget = self.sample_budget;
        self.record(id, None, sample_size, budget, f);
        self
    }

    /// All measurements taken so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes all measurements as a JSON array.
    pub fn results_json(&self) -> String {
        let rows: Vec<String> = self
            .results
            .iter()
            .map(|r| format!("  {}", r.to_json()))
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    fn record<F>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        sample_size: usize,
        budget: Duration,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        // Warm-up & calibration: run once to size the per-sample iteration
        // count so one sample lasts roughly 10 ms (or a single iteration,
        // whichever is longer).
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let once = bencher.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        let mut per_iter_ns = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut bencher = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
            if start.elapsed() > budget {
                break;
            }
        }
        let samples = per_iter_ns.len();
        let mean_ns = per_iter_ns.iter().sum::<f64>() / samples as f64;
        let min_ns = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_ns = per_iter_ns.iter().cloned().fold(0.0, f64::max);
        println!(
            "bench {id:<60} mean {:>12} min {:>12} ({samples} samples x {iters_per_sample} iters)",
            fmt_ns(mean_ns),
            fmt_ns(min_ns),
        );
        self.results.push(BenchResult {
            id,
            mean_ns,
            min_ns,
            max_ns,
            samples,
            iters_per_sample,
            throughput,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named benchmark group; configuration set here applies to the
/// benchmarks registered through it.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let budget = self.criterion.sample_budget;
        self.criterion
            .record(full, self.throughput, sample_size, budget, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; [`iter`](Self::iter) times the payload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function running a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` running benchmark groups, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_collects_results() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.throughput(Throughput::Elements(64));
            g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
            g.finish();
        }
        c.bench_function("top_level", |b| b.iter(|| black_box(2u64) * 3));
        assert_eq!(c.results().len(), 3);
        assert_eq!(c.results()[0].id, "demo/sum/64");
        assert_eq!(c.results()[0].throughput, Some(Throughput::Elements(64)));
        assert!(c.results().iter().all(|r| r.mean_ns > 0.0 && r.samples > 0));
        let json = c.results_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"id\": \"demo/noop\""));
        assert!(json.trim_end().ends_with(']'));
    }
}
