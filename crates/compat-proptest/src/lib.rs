//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`], and the [`proptest!`] / `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a per-test
//! deterministic seed (derived from the test name), so failures reproduce
//! across runs. Shrinking is not implemented — a failing case reports its
//! case number and message instead of a minimized input, which is enough
//! for the deterministic, seed-driven tests in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration of a `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test errors.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; try another input.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (from `prop_assume!`).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure (from `prop_assert*`).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `f` (retrying a bounded number
    /// of times).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(
    /// The value to yield.
    pub T,
);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.lo >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Drives one `#[test]` inside a [`proptest!`] block: draws inputs from
/// `strategy`, runs `case`, and panics on the first failing case.
///
/// Deterministic: the RNG stream depends only on the test name.
pub fn run_proptest<S, F>(name: &str, config: &ProptestConfig, strategy: S, case: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut rng = StdRng::seed_from_u64(seed_from_name(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        assert!(
            rejected <= config.max_global_rejects,
            "{name}: too many prop_assume! rejections ({rejected}) after {passed} cases"
        );
        let case_no = passed + rejected;
        let input = strategy.generate(&mut rng);
        match case(input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {case_no} failed: {msg}")
            }
        }
    }
}

/// Stable, deterministic 64-bit hash of the test name (FNV-1a).
fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// `SeedableRng` is needed by `run_proptest` but the macros below are
// expanded in downstream crates, so re-export what they reference.
pub use rand::SeedableRng as __SeedableRng;

/// Declares property tests. Mirrors proptest's macro of the same name:
/// an optional `#![proptest_config(..)]` attribute followed by `#[test]`
/// functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(
                stringify!($name),
                &config,
                ($($strat,)+),
                |($($pat,)+)| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, $($fmt)*);
    }};
}

/// Rejects the current case (drawing a fresh input) when the assumption
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Everything a test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..=100, 0u32..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((lo, hi) in pair(), k in 0usize..5) {
            prop_assert!(lo <= hi, "{lo} > {hi}");
            prop_assert!(k < 5);
        }

        #[test]
        fn flat_map_dependent_generation(v in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u8..10, n))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::SeedableRng;
        let s = (0u64..1000, 0u64..1000);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "case 0 failed")]
    fn failures_panic_with_case_number() {
        crate::run_proptest(
            "failures_panic_with_case_number",
            &ProptestConfig {
                cases: 1,
                ..ProptestConfig::default()
            },
            (0u32..10,),
            |(_x,)| -> TestCaseResult { Err(TestCaseError::fail("boom")) },
        );
    }
}
