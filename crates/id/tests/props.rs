//! Property-based tests for identifier and suffix arithmetic.

use hyperring_id::{IdSpace, NodeId, Suffix};
use proptest::prelude::*;

/// Strategy producing a space plus digit vectors valid in it.
fn space_and_digits() -> impl Strategy<Value = (IdSpace, Vec<u8>, Vec<u8>)> {
    (2u16..=36, 1usize..=24).prop_flat_map(|(b, d)| {
        let space = IdSpace::new(b, d).unwrap();
        let digit = 0u8..(b as u8);
        (
            Just(space),
            proptest::collection::vec(digit.clone(), d),
            proptest::collection::vec(digit, d),
        )
    })
}

proptest! {
    #[test]
    fn csuf_is_symmetric_and_bounded((space, xs, ys) in space_and_digits()) {
        let x = space.id_from_digits(&xs).unwrap();
        let y = space.id_from_digits(&ys).unwrap();
        let k = x.csuf_len(&y);
        prop_assert_eq!(k, y.csuf_len(&x));
        prop_assert!(k <= space.digit_count());
        // csuf equals d iff equal ids.
        prop_assert_eq!(k == space.digit_count(), x == y);
        // The digits below k match; digit k (if any) differs.
        for i in 0..k {
            prop_assert_eq!(x.digit(i), y.digit(i));
        }
        if k < space.digit_count() {
            prop_assert_ne!(x.digit(k), y.digit(k));
        }
    }

    #[test]
    fn csuf_triangle_property((space, xs, ys) in space_and_digits(), zs in proptest::collection::vec(0u8..36, 1..=24)) {
        // |csuf(x,z)| >= min(|csuf(x,y)|, |csuf(y,z)|): suffix matching is an
        // ultrametric-like relation.
        let zs: Vec<u8> = zs
            .iter()
            .take(space.digit_count())
            .map(|&v| v % space.base() as u8)
            .collect();
        prop_assume!(zs.len() == space.digit_count());
        let x = space.id_from_digits(&xs).unwrap();
        let y = space.id_from_digits(&ys).unwrap();
        let z = space.id_from_digits(&zs).unwrap();
        let xy = x.csuf_len(&y);
        let yz = y.csuf_len(&z);
        let xz = x.csuf_len(&z);
        prop_assert!(xz >= usize::min(xy, yz));
    }

    #[test]
    fn parse_display_roundtrip((space, xs, _) in space_and_digits()) {
        let x = space.id_from_digits(&xs).unwrap();
        let s = x.to_string();
        prop_assert_eq!(space.parse_id(&s).unwrap(), x);
    }

    #[test]
    fn suffix_extend_left_then_parent((space, xs, _) in space_and_digits(), j in 0u8..36) {
        let j = j % space.base() as u8;
        let x = space.id_from_digits(&xs).unwrap();
        for k in 0..space.digit_count() {
            let s = x.suffix(k);
            prop_assert!(x.has_suffix(&s));
            let ext = s.extend_left(j);
            prop_assert_eq!(ext.parent(), Some(s));
            prop_assert_eq!(ext.len(), k + 1);
            // x has suffix ext iff x's k-th digit is j.
            prop_assert_eq!(x.has_suffix(&ext), x.digit(k) == j);
        }
    }

    #[test]
    fn suffix_of_id_matches_all_sharers((space, xs, ys) in space_and_digits()) {
        let x = space.id_from_digits(&xs).unwrap();
        let y = space.id_from_digits(&ys).unwrap();
        let k = x.csuf_len(&y);
        let s = x.suffix(k);
        prop_assert!(s.matches(&x));
        prop_assert!(s.matches(&y));
        prop_assert_eq!(x.csuf(&y), s);
    }

    #[test]
    fn value_roundtrip_small_spaces(b in 2u16..=16, d in 1usize..=8, raw in 0u128..1_000_000) {
        let space = IdSpace::new(b, d).unwrap();
        let cap = space.capacity().unwrap();
        let v = raw % cap;
        let id = space.id_from_value(v).unwrap();
        prop_assert_eq!(id.to_value(b), Some(v));
        prop_assert!(space.contains(&id));
    }

    #[test]
    fn ordering_matches_value_order(b in 2u16..=16, d in 1usize..=8, a in 0u128..10_000, c in 0u128..10_000) {
        let space = IdSpace::new(b, d).unwrap();
        let cap = space.capacity().unwrap();
        let (a, c) = (a % cap, c % cap);
        let ia = space.id_from_value(a).unwrap();
        let ic = space.id_from_value(c).unwrap();
        prop_assert_eq!(ia.cmp(&ic), a.cmp(&c));
    }

    #[test]
    fn suffix_ends_with_transitive((space, xs, _) in space_and_digits()) {
        let x = space.id_from_digits(&xs).unwrap();
        let d = space.digit_count();
        for k in 0..=d {
            for k2 in 0..=k {
                prop_assert!(x.suffix(k).ends_with(&x.suffix(k2)));
            }
        }
    }
}

#[test]
fn node_id_is_send_sync_copy() {
    fn assert_traits<T: Send + Sync + Copy + 'static>() {}
    assert_traits::<NodeId>();
    assert_traits::<Suffix>();
    assert_traits::<IdSpace>();
}
