//! Identifier space for hypercube (suffix) routing.
//!
//! This crate implements the identifier machinery of the PRR-style hypercube
//! routing scheme used by Liu & Lam's join protocol (ICDCS 2003): fixed-length
//! identifiers of `d` digits in base `b`, *suffix* arithmetic (digits are
//! counted from the right, the 0th digit being the rightmost), longest common
//! suffix computation, and deterministic or hash-based identifier generation.
//!
//! # Examples
//!
//! ```
//! use hyperring_id::{IdSpace, NodeId};
//!
//! let space = IdSpace::new(4, 5)?; // base 4, 5 digits — the paper's Figure 1
//! let x: NodeId = space.parse_id("21233")?;
//! let y: NodeId = space.parse_id("31033")?;
//! // 21233 and 31033 share the suffix "33" (2 digits).
//! assert_eq!(x.csuf_len(&y), 2);
//! assert_eq!(x.digit(0), 3); // rightmost digit
//! assert_eq!(x.digit(4), 2); // leftmost digit
//! # Ok::<(), hyperring_id::IdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod id;
mod sha1;
mod space;
mod suffix;

pub use error::IdError;
pub use id::{NodeId, MAX_DIGITS};
pub use sha1::{sha1, Sha1};
pub use space::IdSpace;
pub use suffix::Suffix;
